//! Seeded synthetic graph generators.
//!
//! Every generator takes an explicit seed so the benchmark harness is fully
//! deterministic. These generators serve as laptop-scale stand-ins for the
//! evaluation datasets of the paper (see `DESIGN.md`, "Substitutions"):
//!
//! * [`barabasi_albert`] / [`powerlaw_cluster`] — scale-free social networks
//!   (DBLP, Astrophysics, Facebook, Deezer, Enron, Epinions stand-ins).
//! * [`hub_and_spoke`] — airline-style route networks (OpenFlights).
//! * [`planted_partition`] — community-structured graphs.
//! * `grid_flow_network` (in `qsc-flow`) builds on [`grid`] — stereo-vision
//!   max-flow instances (Tsukuba, Venus, Sawtooth, Cells).
//! * [`colored_regular`] — the synthetic 1000-node graph of Fig. 2 whose
//!   stable coloring has exactly `k` colors, used in the robustness
//!   experiment.
//! * [`karate_club`] — Zachary's karate club (Fig. 1), embedded verbatim.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Erdős–Rényi `G(n, p)` random undirected graph.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(u as NodeId, v as NodeId, 1.0);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)` with exactly `m` distinct undirected edges.
pub fn erdos_renyi_nm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m <= n * (n - 1) / 2, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    while chosen.len() < m {
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        chosen.insert(key);
    }
    let mut b = GraphBuilder::new_undirected(n);
    // qsc-audit: allow(hash-iter-determinism) -- drained into a Vec and sorted on the next line; the hash order never reaches the builder
    let mut edges: Vec<(NodeId, NodeId)> = chosen.into_iter().collect();
    edges.sort_unstable();
    for (u, v) in edges {
        b.add_edge(u, v, 1.0);
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m0 = m` nodes, each new node attaches to `m` existing nodes chosen with
/// probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    // Repeated-node list for preferential attachment sampling.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique on m+1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_edge(u as NodeId, v as NodeId, 1.0);
            targets.push(u as NodeId);
            targets.push(v as NodeId);
        }
    }
    for new in (m + 1)..n {
        // Order-preserving dedup (m is small): iterating a HashSet here
        // would append to `targets` in per-process hash order and make the
        // "seeded" graph differ between runs.
        let mut picked: Vec<NodeId> = Vec::with_capacity(m);
        while picked.len() < m {
            let t = targets[rng.random_range(0..targets.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(new as NodeId, t, 1.0);
            targets.push(new as NodeId);
            targets.push(t);
        }
    }
    b.build()
}

/// Holme–Kim style power-law graph with tunable clustering: like
/// Barabási–Albert but after each preferential attachment, with probability
/// `p_triangle` the next edge closes a triangle with a neighbour of the
/// previous target. Produces scale-free graphs with community-like local
/// structure, a better stand-in for social networks.
pub fn powerlaw_cluster(n: usize, m: usize, p_triangle: f64, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut targets: Vec<NodeId> = Vec::new();
    let add = |b: &mut GraphBuilder,
               adj: &mut Vec<Vec<NodeId>>,
               targets: &mut Vec<NodeId>,
               u: NodeId,
               v: NodeId| {
        if u == v || adj[u as usize].contains(&v) {
            return false;
        }
        b.add_edge(u, v, 1.0);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        targets.push(u);
        targets.push(v);
        true
    };
    for u in 0..=m {
        for v in (u + 1)..=m {
            add(&mut b, &mut adj, &mut targets, u as NodeId, v as NodeId);
        }
    }
    for new in (m + 1)..n {
        let mut added = 0usize;
        let mut last_target: Option<NodeId> = None;
        let mut guard = 0usize;
        while added < m && guard < 50 * m {
            guard += 1;
            let do_triangle = last_target.is_some() && rng.random::<f64>() < p_triangle;
            let t = if do_triangle {
                let lt = last_target.unwrap();
                let nbrs = &adj[lt as usize];
                if nbrs.is_empty() {
                    targets[rng.random_range(0..targets.len())]
                } else {
                    nbrs[rng.random_range(0..nbrs.len())]
                }
            } else {
                targets[rng.random_range(0..targets.len())]
            };
            if add(&mut b, &mut adj, &mut targets, new as NodeId, t) {
                added += 1;
                last_target = Some(t);
            }
        }
    }
    b.build()
}

/// Planted-partition (stochastic block model with equal-sized blocks):
/// `k` communities of `n / k` nodes; intra-community edge probability
/// `p_in`, inter-community probability `p_out`.
pub fn planted_partition(n: usize, k: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(k >= 1 && n >= k);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    let block = |v: usize| v * k / n; // balanced blocks
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block(u) == block(v) { p_in } else { p_out };
            if rng.random::<f64>() < p {
                b.add_edge(u as NodeId, v as NodeId, 1.0);
            }
        }
    }
    b.build()
}

/// Hub-and-spoke network resembling an airline route map (OpenFlights
/// stand-in): `hubs` highly connected hub nodes forming a dense core, each of
/// the remaining nodes connects to `spokes_per_node` hubs chosen by a skewed
/// (Zipf-like) distribution, plus a few random point-to-point routes.
pub fn hub_and_spoke(n: usize, hubs: usize, spokes_per_node: usize, seed: u64) -> Graph {
    assert!(hubs >= 2 && n > hubs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    // Dense hub core.
    for u in 0..hubs {
        for v in (u + 1)..hubs {
            if rng.random::<f64>() < 0.5 {
                b.add_edge(u as NodeId, v as NodeId, 1.0);
            }
        }
    }
    // Zipf-ish hub popularity: hub h gets weight 1/(h+1).
    let weights: Vec<f64> = (0..hubs).map(|h| 1.0 / (h as f64 + 1.0)).collect();
    // qsc-audit: allow(canonical-float-sum) -- one-shot serial sum over a tiny fixed-order Vec at graph-generation time; qsc-graph sits below qsc-linalg in the crate DAG so lanes::sum is unreachable here
    let total: f64 = weights.iter().sum();
    let pick_hub = |rng: &mut StdRng| -> NodeId {
        let mut x = rng.random::<f64>() * total;
        for (h, &w) in weights.iter().enumerate() {
            if x < w {
                return h as NodeId;
            }
            x -= w;
        }
        (hubs - 1) as NodeId
    };
    for v in hubs..n {
        let mut seen = std::collections::HashSet::new();
        while seen.len() < spokes_per_node.min(hubs) {
            seen.insert(pick_hub(&mut rng));
        }
        // qsc-audit: allow(hash-iter-determinism) -- drained into a Vec and sorted before any edge is added; the hash order never reaches the builder
        let mut picked: Vec<NodeId> = seen.into_iter().collect();
        picked.sort_unstable();
        for h in picked {
            b.add_edge(v as NodeId, h, 1.0);
        }
        // Occasional point-to-point route.
        if rng.random::<f64>() < 0.1 && v > hubs + 1 {
            let other = rng.random_range(hubs..v) as NodeId;
            if other != v as NodeId {
                b.add_edge(v as NodeId, other, 1.0);
            }
        }
    }
    b.build()
}

/// `width x height` 4-connected grid graph (undirected, unit weights).
/// Node `(r, c)` has id `r * width + c`.
pub fn grid(width: usize, height: usize) -> Graph {
    let n = width * height;
    let mut b = GraphBuilder::new_undirected(n);
    let id = |r: usize, c: usize| (r * width + c) as NodeId;
    for r in 0..height {
        for c in 0..width {
            if c + 1 < width {
                b.add_edge(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < height {
                b.add_edge(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    b.build()
}

/// The synthetic "artificially regular" graph of Fig. 2: `groups` groups of
/// `group_size` nodes each; a random `blueprint_degree`-regular blueprint
/// over the groups; between two blueprint-adjacent groups every node connects
/// to exactly `intra_degree` nodes of the other group in a circulant pattern.
///
/// By construction the partition into groups is an exact stable coloring, so
/// the stable coloring of the graph has at most `groups` colors. Adding a few
/// random edges (see [`perturb_add_edges`]) destroys that property for the
/// stable coloring but barely affects q-stable colorings — the robustness
/// experiment.
pub fn colored_regular(
    groups: usize,
    group_size: usize,
    blueprint_degree: usize,
    intra_degree: usize,
    seed: u64,
) -> Graph {
    assert!(blueprint_degree < groups);
    assert!(intra_degree <= group_size);
    let n = groups * group_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    // Random near-regular blueprint: a union of `blueprint_degree / 2`
    // random perfect matchings over a cyclic arrangement (shifted cycles),
    // which guarantees regularity when `groups` allows it. We use shifted
    // cycles: blueprint edge {g, (g + s) mod groups} for s in a random set of
    // shifts. Each shift contributes degree 2 (or 1 if s == groups/2).
    let mut shifts: Vec<usize> = (1..groups).collect();
    shifts.shuffle(&mut rng);
    let mut chosen_shifts = Vec::new();
    let mut degree = 0usize;
    for s in shifts {
        if degree >= blueprint_degree {
            break;
        }
        // Skip complementary shifts already chosen (they give the same edges).
        if chosen_shifts.contains(&(groups - s)) || chosen_shifts.contains(&s) {
            continue;
        }
        let contribution = if 2 * s == groups { 1 } else { 2 };
        if degree + contribution > blueprint_degree {
            continue;
        }
        chosen_shifts.push(s);
        degree += contribution;
    }
    let node = |g: usize, i: usize| (g * group_size + i) as NodeId;
    for g in 0..groups {
        for &s in &chosen_shifts {
            let h = (g + s) % groups;
            // Add the biregular bipartite circulant between group g and h.
            // To avoid adding each group pair twice, only add when the edge
            // (g, h) has not been covered from the other side: shifted-cycle
            // edges are generated once per ordered pair (g, g+s), which is
            // exactly once per unordered pair unless 2s == groups, where we
            // restrict to g < h.
            if 2 * s == groups && g > h {
                continue;
            }
            for i in 0..group_size {
                for d in 0..intra_degree {
                    let j = (i + d) % group_size;
                    b.add_edge(node(g, i), node(h, j), 1.0);
                }
            }
        }
    }
    b.build()
}

/// The Fig. 2 robustness graph: `groups` groups of `group_size` nodes whose
/// *stable* coloring is (essentially) the group partition.
///
/// A random Erdős–Rényi blueprint over the groups decides which groups are
/// connected; between two connected groups every node is matched to exactly
/// `intra_degree` nodes of the other group in a circulant pattern, so the
/// bipartite graph between any two groups is biregular and the group
/// partition is a stable coloring. Because the blueprint is a random graph,
/// its own stable coloring is (with high probability) discrete, so the
/// expanded graph's coarsest stable coloring has close to `groups` colors —
/// unlike [`colored_regular`], whose total regularity collapses 1-WL to a
/// single color.
///
/// With `groups = 100`, `group_size = 10`, `blueprint_p ≈ 0.44` and
/// `intra_degree = 1` this reproduces the scale of the paper's synthetic
/// robustness graph (|V| = 1000, |E| ≈ 21 600, 100 stable colors).
pub fn stable_blueprint_graph(
    groups: usize,
    group_size: usize,
    blueprint_p: f64,
    intra_degree: usize,
    seed: u64,
) -> Graph {
    assert!(groups >= 2 && group_size >= 1);
    assert!(intra_degree <= group_size);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = groups * group_size;
    let mut b = GraphBuilder::new_undirected(n);
    let node = |g: usize, i: usize| (g * group_size + i) as NodeId;
    for g in 0..groups {
        for h in (g + 1)..groups {
            if rng.random::<f64>() < blueprint_p {
                for i in 0..group_size {
                    for d in 0..intra_degree {
                        let j = (i + d) % group_size;
                        b.add_edge(node(g, i), node(h, j), 1.0);
                    }
                }
            }
        }
    }
    b.build()
}

/// Add `extra` random edges (not already present, no self-loops) to a graph,
/// returning a new graph. Used by the Fig. 2 robustness experiment.
pub fn perturb_add_edges(g: &Graph, extra: usize, seed: u64) -> Graph {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let directed = g.is_directed();
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for (u, v, w) in g.edges() {
        b.add_edge(u, v, w);
    }
    let mut added = 0usize;
    let mut guard = 0usize;
    while added < extra && guard < extra * 100 + 1000 {
        guard += 1;
        let u = rng.random_range(0..n) as NodeId;
        let v = rng.random_range(0..n) as NodeId;
        if u == v || g.has_edge(u, v) {
            continue;
        }
        b.add_edge(u, v, 1.0);
        added += 1;
    }
    b.build()
}

/// Zachary's karate club graph (Zachary 1977): 34 nodes, 78 edges, the
/// running example of Fig. 1. Node ids are the usual 1..34 labels minus one.
pub fn karate_club() -> Graph {
    // Standard edge list (0-indexed).
    const EDGES: &[(u32, u32)] = &[
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (0, 7),
        (0, 8),
        (0, 10),
        (0, 11),
        (0, 12),
        (0, 13),
        (0, 17),
        (0, 19),
        (0, 21),
        (0, 31),
        (1, 2),
        (1, 3),
        (1, 7),
        (1, 13),
        (1, 17),
        (1, 19),
        (1, 21),
        (1, 30),
        (2, 3),
        (2, 7),
        (2, 8),
        (2, 9),
        (2, 13),
        (2, 27),
        (2, 28),
        (2, 32),
        (3, 7),
        (3, 12),
        (3, 13),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 10),
        (5, 16),
        (6, 16),
        (8, 30),
        (8, 32),
        (8, 33),
        (9, 33),
        (13, 33),
        (14, 32),
        (14, 33),
        (15, 32),
        (15, 33),
        (18, 32),
        (18, 33),
        (19, 33),
        (20, 32),
        (20, 33),
        (22, 32),
        (22, 33),
        (23, 25),
        (23, 27),
        (23, 29),
        (23, 32),
        (23, 33),
        (24, 25),
        (24, 27),
        (24, 31),
        (25, 31),
        (26, 29),
        (26, 33),
        (27, 33),
        (28, 31),
        (28, 33),
        (29, 32),
        (29, 33),
        (30, 32),
        (30, 33),
        (31, 32),
        (31, 33),
        (32, 33),
    ];
    let mut b = GraphBuilder::new_undirected(34);
    for &(u, v) in EDGES {
        b.add_edge(u, v, 1.0);
    }
    b.build()
}

/// A layered "pathological" network in the spirit of Fig. 4 / Example 7 of
/// the paper: `layers` layers of `layer_size` nodes each plus a source and a
/// target. Between consecutive layers the edges form a *staircase*:
/// node 0 connects to nodes 0 and 1 of the next layer, node `i` (for
/// `0 < i < layer_size-1`) connects to node `i+1`, and the last node connects
/// to the last node. All capacities are 1, the source feeds every node of
/// the first layer and every node of the last layer feeds the target.
///
/// The partition {s}, layer 1, ..., layer k, {t} is a 1-stable coloring
/// (degrees between consecutive layers differ by at most 1), yet:
/// * the maximum *uniform* flow between consecutive layers is 0, so the
///   lower-bound capacities ĉ₁ of Theorem 6 are all 0, and
/// * the total capacities ĉ₂ are `layer_size + 1`, so the reduced graph
///   overestimates the true max-flow (which decays with the number of
///   layers because each staircase transition strands one unit of flow).
///
/// Returns `(graph, source, target)`.
pub fn pathological_flow_layers(layers: usize, layer_size: usize) -> (Graph, NodeId, NodeId) {
    assert!(layers >= 2 && layer_size >= 3);
    let n = layers * layer_size + 2;
    let s = (n - 2) as NodeId;
    let t = (n - 1) as NodeId;
    let node = |layer: usize, i: usize| (layer * layer_size + i) as NodeId;
    let mut b = GraphBuilder::new_directed(n);
    for i in 0..layer_size {
        b.add_edge(s, node(0, i), 1.0);
        b.add_edge(node(layers - 1, i), t, 1.0);
    }
    for l in 0..layers - 1 {
        // Staircase: 0 -> {0, 1}; i -> i+1 for 0 < i < layer_size - 1;
        // last -> last.
        b.add_edge(node(l, 0), node(l + 1, 0), 1.0);
        b.add_edge(node(l, 0), node(l + 1, 1), 1.0);
        for i in 1..layer_size - 1 {
            b.add_edge(node(l, i), node(l + 1, i + 1), 1.0);
        }
        b.add_edge(node(l, layer_size - 1), node(l + 1, layer_size - 1), 1.0);
    }
    (b.build(), s, t)
}

/// The staircase bipartite pattern used between consecutive layers of
/// [`pathological_flow_layers`], as an `n x n` bipartite graph with `n + 1`
/// unit-capacity edges. Its only uniform flow is the zero flow (the paper's
/// Example 7), while its total capacity is `n + 1`.
pub fn staircase_bipartite(n: usize) -> Vec<(u32, u32, f64)> {
    assert!(n >= 3);
    let mut edges = Vec::with_capacity(n + 1);
    edges.push((0, 0, 1.0));
    edges.push((0, 1, 1.0));
    for i in 1..n - 1 {
        edges.push((i as u32, (i + 1) as u32, 1.0));
    }
    edges.push(((n - 1) as u32, (n - 1) as u32, 1.0));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_deterministic() {
        let a = erdos_renyi(50, 0.1, 7);
        let b = erdos_renyi(50, 0.1, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = erdos_renyi(50, 0.1, 8);
        // Overwhelmingly likely to differ.
        assert!(a.num_edges() != c.num_edges() || a.edges() != c.edges());
    }

    #[test]
    fn erdos_renyi_nm_exact_edges() {
        let g = erdos_renyi_nm(100, 250, 3);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 11);
        // Seed clique C(m+1, 2) edges + (n - m - 1) * m.
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected);
        assert_eq!(g.num_nodes(), n);
        // Scale-free: max degree should be well above m.
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(
            max_deg > 3 * m,
            "max degree {max_deg} too small for BA graph"
        );
    }

    #[test]
    fn powerlaw_cluster_reasonable() {
        let g = powerlaw_cluster(300, 4, 0.5, 5);
        assert_eq!(g.num_nodes(), 300);
        assert!(g.num_edges() > 300);
    }

    #[test]
    fn planted_partition_community_density() {
        let g = planted_partition(120, 3, 0.3, 0.01, 9);
        assert_eq!(g.num_nodes(), 120);
        // Count intra vs inter block edges.
        let block = |v: u32| (v as usize) * 3 / 120;
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v, _) in g.edges() {
            if block(u) == block(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} should dominate inter {inter}");
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.num_nodes(), 12);
        // Edges: 3 * 3 horizontal rows? width-1 per row * height + height-1 per col * width
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        // Corner has degree 2, middle has degree 4.
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(5), 4);
    }

    #[test]
    fn hub_and_spoke_hubs_dominate() {
        let g = hub_and_spoke(500, 20, 2, 13);
        assert_eq!(g.num_nodes(), 500);
        let hub_deg: usize = (0..20).map(|h| g.out_degree(h)).sum();
        let avg_hub = hub_deg as f64 / 20.0;
        let spoke_deg: usize = (20..500).map(|v| g.out_degree(v as u32)).sum();
        let avg_spoke = spoke_deg as f64 / 480.0;
        assert!(
            avg_hub > 5.0 * avg_spoke,
            "hubs {avg_hub} vs spokes {avg_spoke}"
        );
    }

    #[test]
    fn colored_regular_is_group_regular() {
        let groups = 20;
        let gs = 10;
        let g = colored_regular(groups, gs, 4, 3, 1);
        assert_eq!(g.num_nodes(), groups * gs);
        // Every node within a group must have identical degree (stable
        // coloring refines the group partition to itself).
        for grp in 0..groups {
            let d0 = g.out_degree((grp * gs) as u32);
            for i in 1..gs {
                assert_eq!(
                    g.out_degree((grp * gs + i) as u32),
                    d0,
                    "group {grp} irregular"
                );
            }
        }
    }

    #[test]
    fn stable_blueprint_graph_is_group_regular() {
        let g = stable_blueprint_graph(30, 8, 0.4, 1, 5);
        assert_eq!(g.num_nodes(), 240);
        // Within every group all nodes have the same degree.
        for grp in 0..30 {
            let d0 = g.out_degree((grp * 8) as u32);
            for i in 1..8 {
                assert_eq!(g.out_degree((grp * 8 + i) as u32), d0);
            }
        }
        // Groups do not all share the same degree (1-WL can tell them apart).
        let distinct: std::collections::HashSet<usize> =
            (0..30).map(|grp| g.out_degree((grp * 8) as u32)).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    fn fig2_robustness_graph_scale() {
        // The paper's robustness graph: |V| = 1000, |E| ≈ 21 600.
        let g = stable_blueprint_graph(100, 10, 0.44, 1, 42);
        assert_eq!(g.num_nodes(), 1000);
        assert!(
            g.num_edges() > 18_000 && g.num_edges() < 26_000,
            "edges = {}",
            g.num_edges()
        );
    }

    #[test]
    fn fig2_scale_graph() {
        // The paper's robustness graph: |V| = 1000, |E| ~ 21600.
        let g = colored_regular(100, 10, 9, 5, 42);
        assert_eq!(g.num_nodes(), 1000);
        assert!(
            g.num_edges() > 15_000 && g.num_edges() < 30_000,
            "edges = {}",
            g.num_edges()
        );
    }

    #[test]
    fn perturb_adds_requested_edges() {
        let g = grid(10, 10);
        let m0 = g.num_edges();
        let p = perturb_add_edges(&g, 25, 3);
        assert_eq!(p.num_edges(), m0 + 25);
        assert_eq!(p.num_nodes(), g.num_nodes());
    }

    #[test]
    fn karate_club_dimensions() {
        let g = karate_club();
        assert_eq!(g.num_nodes(), 34);
        assert_eq!(g.num_edges(), 78);
        // The two "club leaders" 1 and 34 (0-indexed 0 and 33) have the
        // highest degrees.
        let mut degs: Vec<(usize, u32)> = g.nodes().map(|v| (g.out_degree(v), v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top2: Vec<u32> = degs.iter().take(2).map(|&(_, v)| v).collect();
        assert!(top2.contains(&0) && top2.contains(&33));
    }

    #[test]
    fn pathological_layers_builds() {
        let (g, s, t) = pathological_flow_layers(5, 6);
        assert_eq!(g.num_nodes(), 32);
        assert_eq!(g.out_degree(s), 6);
        assert_eq!(g.in_degree(t), 6);
        // Between consecutive layers there are layer_size + 1 edges.
        let inter_layer_edges = g.num_edges() - 12;
        assert_eq!(inter_layer_edges, 4 * 7);
    }

    #[test]
    fn staircase_bipartite_structure() {
        let edges = staircase_bipartite(5);
        assert_eq!(edges.len(), 6);
        // Left degrees: node 0 has 2, the rest have 1.
        let deg0 = edges.iter().filter(|&&(x, _, _)| x == 0).count();
        assert_eq!(deg0, 2);
        // Right degrees: the last node has 2, the rest have 1.
        let deg_last = edges.iter().filter(|&&(_, y, _)| y == 4).count();
        assert_eq!(deg_last, 2);
    }
}
