//! # qsc-graph
//!
//! Graph substrate for the quasi-stable coloring reproduction.
//!
//! Provides:
//!
//! * [`Graph`]: an immutable, CSR-backed, weighted directed graph with both
//!   out- and in-adjacency (undirected graphs are stored as symmetric
//!   directed graphs).
//! * [`GraphBuilder`]: incremental construction from edge lists, with
//!   duplicate-edge merging.
//! * [`delta::GraphDelta`]: a mutable batched delta layer over the CSR for
//!   dynamic graphs — edge insert/delete/reweight with [`delta::EdgeEvent`]
//!   batches for incremental consumers, and periodic compaction back into
//!   CSR.
//! * [`bipartite::Bipartite`]: explicit weighted bipartite graphs, used by
//!   the maximum-uniform-flow computation and by LP constraint matrices.
//! * [`generators`]: seeded synthetic graph generators (Erdős–Rényi,
//!   Barabási–Albert, grids, planted partitions, hub-and-spoke, the Zachary
//!   karate club, and the regular graph family used in the robustness
//!   experiment of Fig. 2).
//! * [`io`]: edge-list and DIMACS max-flow readers/writers.
//! * [`traversal`]: BFS, connected components, shortest-path counting.
//!
//! All node identifiers are dense `u32` indices in `0..n`.

#![forbid(unsafe_code)]

pub mod bipartite;
pub mod builder;
pub mod column;
pub mod csr;
pub mod delta;
pub mod generators;
pub mod io;
pub mod stats;
pub mod traversal;

pub use bipartite::Bipartite;
pub use builder::GraphBuilder;
pub use column::{ColumnAdvice, ColumnBuf, SharedColumn};
pub use csr::{Graph, NodeId};
pub use delta::{DeltaError, EdgeEvent, GraphDelta, NodeEvent, NodeRemap};

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= n`.
    NodeOutOfRange { node: u32, n: usize },
    /// An edge weight was not finite or was negative where a capacity was
    /// expected.
    InvalidWeight { weight: f64 },
    /// CSR columns handed to [`csr::Graph::from_mapped_columns`] violated
    /// a structural invariant (offset monotonicity / span, row sortedness,
    /// or parallel-array length mismatch).
    InvalidCsr { message: String },
    /// Parsing a textual graph format failed.
    Parse { line: usize, message: String },
    /// An IO error while reading or writing a graph file.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            GraphError::InvalidWeight { weight } => write!(f, "invalid edge weight {weight}"),
            GraphError::InvalidCsr { message } => write!(f, "invalid CSR columns: {message}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
