//! Borrowed-or-owned column storage for CSR arrays.
//!
//! [`ColumnBuf<T>`] is the storage behind every [`crate::Graph`] column and
//! the engine's persisted accumulator planes: either a plain owned
//! `Vec<T>`, or a shared reference-counted view into memory owned by
//! someone else — in practice a checkpoint file mapped by
//! `qsc_core::mmap::MappedFile` and sliced by `qsc-persist`. The mapped
//! slice's lifetime is carried by the `Arc` inside the trait object, so a
//! `Graph` built over mapped columns is `'static` and freely clonable
//! while the file stays mapped exactly as long as any column references
//! it.
//!
//! This crate sits *below* `qsc-core` in the dependency order, so it
//! cannot name the concrete mapped type. Instead the provider implements
//! [`SharedColumn`] — an object-safe slice-plus-advice trait — and hands
//! the column in as `Arc<dyn SharedColumn<T>>`. Everything downstream
//! (the engine's kernels, the persist encoder) sees only `&[T]` via
//! `Deref`, so owned and mapped stacks run byte-identical code paths.
//!
//! Mutation never happens through a `ColumnBuf`: `Graph` is immutable and
//! all write paths (delta compaction, builders) construct fresh owned
//! vectors. [`ColumnBuf::make_owned`] is the explicit copy-on-write
//! escape hatch for callers that need a `Vec<T>` back.

use std::ops::Deref;
use std::sync::Arc;

/// Paging advice for a shared (typically memory-mapped) column, forwarded
/// to `madvise` by providers that map files. Owned columns ignore advice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnAdvice {
    /// Reset to the default paging behavior.
    Normal,
    /// The column is about to be scanned front to back: read ahead
    /// aggressively and drop pages behind the scan.
    Sequential,
    /// The range will be needed soon: start faulting it in now.
    WillNeed,
}

/// An immutable shared column: a typed slice whose backing memory is owned
/// elsewhere (a mapped checkpoint file), plus optional paging advice.
///
/// Implementations must return the *same* slice for the lifetime of the
/// object — `ColumnBuf` exposes it through `Deref` and equality /
/// encoding assume a stable view.
pub trait SharedColumn<T>: Send + Sync {
    /// The column contents.
    fn as_slice(&self) -> &[T];

    /// Advise the OS about the upcoming access pattern for the whole
    /// column. Best-effort; the default does nothing.
    fn advise(&self, advice: ColumnAdvice) {
        let _ = advice;
    }

    /// Advise for `lo..hi` (element indices) only. Best-effort; the
    /// default does nothing.
    fn advise_range(&self, advice: ColumnAdvice, lo: usize, hi: usize) {
        let _ = (advice, lo, hi);
    }
}

/// A column that is either owned (`Vec<T>`) or a shared view into memory
/// owned elsewhere (see module docs). Dereferences to `&[T]` either way.
pub enum ColumnBuf<T: 'static> {
    /// Plain owned storage — the default for every built graph.
    Owned(Vec<T>),
    /// Shared storage; the `Arc` keeps the backing (e.g. a mapped file)
    /// alive for as long as this column exists.
    Shared(Arc<dyn SharedColumn<T>>),
}

impl<T> ColumnBuf<T> {
    /// The column as a slice (same as `Deref`, usable in const-generic or
    /// method-chain positions where auto-deref does not fire).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            ColumnBuf::Owned(v) => v,
            ColumnBuf::Shared(s) => s.as_slice(),
        }
    }

    /// Whether this column borrows shared (mapped) memory.
    #[inline]
    pub fn is_shared(&self) -> bool {
        matches!(self, ColumnBuf::Shared(_))
    }

    /// Forward paging advice to the provider (no-op for owned columns).
    #[inline]
    pub fn advise(&self, advice: ColumnAdvice) {
        if let ColumnBuf::Shared(s) = self {
            s.advise(advice);
        }
    }

    /// Forward paging advice for the element range `lo..hi` (no-op for
    /// owned columns). Out-of-range bounds are clamped by the provider.
    #[inline]
    pub fn advise_range(&self, advice: ColumnAdvice, lo: usize, hi: usize) {
        if let ColumnBuf::Shared(s) = self {
            s.advise_range(advice, lo, hi);
        }
    }
}

impl<T: Clone> ColumnBuf<T> {
    /// Copy-on-write: ensure the column is owned, copying shared contents
    /// out of the backing memory if necessary, and return the vector.
    pub fn make_owned(&mut self) -> &mut Vec<T> {
        if let ColumnBuf::Shared(s) = self {
            *self = ColumnBuf::Owned(s.as_slice().to_vec());
        }
        match self {
            ColumnBuf::Owned(v) => v,
            ColumnBuf::Shared(_) => unreachable!("just converted to owned"),
        }
    }

    /// The column contents as a fresh owned vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T> Deref for ColumnBuf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for ColumnBuf<T> {
    #[inline]
    fn from(v: Vec<T>) -> Self {
        ColumnBuf::Owned(v)
    }
}

impl<T> From<Arc<dyn SharedColumn<T>>> for ColumnBuf<T> {
    #[inline]
    fn from(s: Arc<dyn SharedColumn<T>>) -> Self {
        ColumnBuf::Shared(s)
    }
}

impl<T> Default for ColumnBuf<T> {
    fn default() -> Self {
        ColumnBuf::Owned(Vec::new())
    }
}

impl<T: Clone> Clone for ColumnBuf<T> {
    fn clone(&self) -> Self {
        match self {
            ColumnBuf::Owned(v) => ColumnBuf::Owned(v.clone()),
            ColumnBuf::Shared(s) => ColumnBuf::Shared(Arc::clone(s)),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ColumnBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = if self.is_shared() { "Shared" } else { "Owned" };
        f.debug_tuple(tag).field(&self.as_slice()).finish()
    }
}

impl<T: PartialEq> PartialEq for ColumnBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for ColumnBuf<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<[T]> for ColumnBuf<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StaticCol(&'static [u64]);
    impl SharedColumn<u64> for StaticCol {
        fn as_slice(&self) -> &[u64] {
            self.0
        }
    }

    #[test]
    fn owned_roundtrip() {
        let c: ColumnBuf<u64> = vec![1, 2, 3].into();
        assert_eq!(&c[..], &[1, 2, 3]);
        assert!(!c.is_shared());
        c.advise(ColumnAdvice::Sequential); // no-op, must not panic
    }

    #[test]
    fn shared_view_and_cow() {
        static DATA: [u64; 4] = [9, 8, 7, 6];
        let shared: Arc<dyn SharedColumn<u64>> = Arc::new(StaticCol(&DATA));
        let mut c: ColumnBuf<u64> = shared.into();
        assert!(c.is_shared());
        assert_eq!(&c[..], &[9, 8, 7, 6]);
        let c2 = c.clone();
        assert_eq!(c, c2);
        c.make_owned().push(5);
        assert!(!c.is_shared());
        assert_eq!(&c[..], &[9, 8, 7, 6, 5]);
        assert!(c2.is_shared());
        assert_eq!(&c2[..], &[9, 8, 7, 6]);
    }

    #[test]
    fn equality_across_variants() {
        static DATA: [u64; 2] = [1, 2];
        let shared: Arc<dyn SharedColumn<u64>> = Arc::new(StaticCol(&DATA));
        let a: ColumnBuf<u64> = shared.into();
        let b: ColumnBuf<u64> = vec![1u64, 2].into();
        assert_eq!(a, b);
        assert_eq!(a, vec![1u64, 2]);
    }
}
