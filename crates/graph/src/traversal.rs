//! Basic traversals: BFS distances, connected components, shortest-path
//! counting (the sigma values used by betweenness centrality).

use crate::csr::{Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source` following out-edges; unreachable nodes get
/// `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for (v, _) in g.out_edges(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected components (treating arcs as undirected).
/// Returns `(component id per node, number of components)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(start as NodeId);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.out_edges(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
            for (v, _) in g.in_edges(u) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Largest weakly connected component as a node list (ids in the original
/// graph), sorted ascending.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    let (comp, k) = connected_components(g);
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    (0..g.num_nodes() as NodeId)
        .filter(|&v| comp[v as usize] == best)
        .collect()
}

/// Result of a single-source shortest-path (BFS) pass with path counting, as
/// used by Brandes' algorithm.
#[derive(Clone, Debug)]
pub struct ShortestPathDag {
    /// BFS distance per node (`usize::MAX` if unreachable).
    pub dist: Vec<usize>,
    /// Number of shortest paths from the source to each node.
    pub sigma: Vec<f64>,
    /// Predecessors of each node on shortest paths.
    pub preds: Vec<Vec<NodeId>>,
    /// Nodes in non-decreasing order of distance (only reachable ones).
    pub order: Vec<NodeId>,
}

/// Single-source BFS with shortest-path counting over out-edges (unweighted).
pub fn shortest_path_dag(g: &Graph, source: NodeId) -> ShortestPathDag {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1.0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let du = dist[u as usize];
        for (v, _) in g.out_edges(u) {
            let dv = &mut dist[v as usize];
            if *dv == usize::MAX {
                *dv = du + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == du + 1 {
                sigma[v as usize] += sigma[u as usize];
                preds[v as usize].push(u);
            }
        }
    }
    ShortestPathDag {
        dist,
        sigma,
        preds,
        order,
    }
}

/// Number of shortest paths between `s` and `t` (0 if unreachable).
pub fn count_shortest_paths(g: &Graph, s: NodeId, t: NodeId) -> f64 {
    shortest_path_dag(g, s).sigma[t as usize]
}

/// Graph diameter approximation via double-sweep BFS (lower bound on the true
/// diameter); used for the Riondato–Kornaropoulos sample-size bound.
pub fn approx_diameter(g: &Graph) -> usize {
    if g.num_nodes() == 0 {
        return 0;
    }
    let d0 = bfs_distances(g, 0);
    let far = d0
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != usize::MAX)
        .max_by_key(|&(_, &d)| d)
        .map(|(i, _)| i as NodeId)
        .unwrap_or(0);
    let d1 = bfs_distances(g, far);
    d1.iter()
        .filter(|&&d| d != usize::MAX)
        .max()
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new_undirected(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId, 1.0);
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn components_counts() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 4, 1.0);
        let g = b.build();
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[5], comp[0]);
        let lc = largest_component(&g);
        assert_eq!(lc, vec![2, 3, 4]);
    }

    #[test]
    fn sigma_counts_paths() {
        // Diamond: 0 -> {1,2} -> 3: two shortest paths from 0 to 3.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        assert_eq!(count_shortest_paths(&g, 0, 3), 2.0);
        let dag = shortest_path_dag(&g, 0);
        assert_eq!(dag.dist[3], 2);
        assert_eq!(dag.preds[3].len(), 2);
        assert_eq!(dag.order[0], 0);
    }

    #[test]
    fn diameter_of_path() {
        let g = path_graph(10);
        assert_eq!(approx_diameter(&g), 9);
    }

    #[test]
    fn karate_is_connected() {
        let g = generators::karate_club();
        let (_, k) = connected_components(&g);
        assert_eq!(k, 1);
        assert!(approx_diameter(&g) >= 4);
    }
}
