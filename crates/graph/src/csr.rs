//! Immutable CSR (compressed sparse row) weighted directed graph.
//!
//! The graph stores both the out-adjacency and the in-adjacency so that the
//! coloring algorithms can inspect incoming and outgoing weights of a node in
//! O(deg) time. Undirected graphs are represented as symmetric directed
//! graphs (each undirected edge becomes two arcs); [`Graph::is_directed`]
//! records which convention was used so that edge counts and generators can
//! report logical edge counts.

use crate::builder::GraphBuilder;
use crate::column::{ColumnAdvice, ColumnBuf};
use crate::GraphError;

/// Dense node identifier. All nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// An immutable weighted directed graph in CSR form.
///
/// Construct via [`GraphBuilder`] or one of the [`crate::generators`].
/// Columns are [`ColumnBuf`]s: owned vectors for every built graph, or
/// shared views into a memory-mapped checkpoint when constructed through
/// [`Graph::from_mapped_columns`] — the read paths are identical either
/// way, and mutation always goes through delta compaction into fresh
/// owned columns (copy-on-write at the compaction boundary).
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    /// Number of *logical* edges: arcs for directed graphs, undirected edges
    /// for undirected graphs.
    m: usize,
    directed: bool,
    out_offsets: ColumnBuf<usize>,
    out_targets: ColumnBuf<NodeId>,
    out_weights: ColumnBuf<f64>,
    in_offsets: ColumnBuf<usize>,
    in_sources: ColumnBuf<NodeId>,
    in_weights: ColumnBuf<f64>,
}

impl Graph {
    /// Build a graph from raw parts. Intended for use by [`GraphBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        m: usize,
        directed: bool,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        in_weights: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_weights.len());
        debug_assert_eq!(in_sources.len(), in_weights.len());
        Graph {
            n,
            m,
            directed,
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            out_weights: out_weights.into(),
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
            in_weights: in_weights.into(),
        }
    }

    /// Build a graph directly from per-node out-adjacency rows, each sorted
    /// by target with at most one entry per target (i.e. already merged).
    /// For undirected graphs every edge `{u, v}` must appear in both rows
    /// (self-loops once), exactly as the CSR stores it.
    ///
    /// `O(n + arcs)` with no sorting — this is the fast path for callers
    /// that maintain merged adjacency themselves ([`crate::delta::GraphDelta`]
    /// compaction, the patched reduced-graph emission) and it produces
    /// bit-identical CSR arrays to a [`GraphBuilder`] fed the same arcs.
    pub fn from_row_adjacency(n: usize, directed: bool, rows: &[Vec<(NodeId, f64)>]) -> Self {
        assert_eq!(rows.len(), n, "one adjacency row per node");
        let arcs: usize = rows.iter().map(|r| r.len()).sum();
        let mut out_offsets = vec![0usize; n + 1];
        let mut out_targets = Vec::with_capacity(arcs);
        let mut out_weights = Vec::with_capacity(arcs);
        let mut in_offsets = vec![0usize; n + 1];
        let mut m = 0usize;
        for (u, row) in rows.iter().enumerate() {
            out_offsets[u + 1] = out_offsets[u] + row.len();
            for (idx, &(v, w)) in row.iter().enumerate() {
                debug_assert!((v as usize) < n, "target {v} out of range");
                debug_assert!(
                    idx == 0 || row[idx - 1].0 < v,
                    "row {u} not strictly sorted by target"
                );
                out_targets.push(v);
                out_weights.push(w);
                in_offsets[v as usize + 1] += 1;
                if directed || u as NodeId <= v {
                    m += 1;
                }
            }
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; arcs];
        let mut in_weights = vec![0f64; arcs];
        for (u, row) in rows.iter().enumerate() {
            for &(v, w) in row {
                let pos = cursor[v as usize];
                in_sources[pos] = u as NodeId;
                in_weights[pos] = w;
                cursor[v as usize] += 1;
            }
        }
        Graph {
            n,
            m,
            directed,
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            out_weights: out_weights.into(),
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
            in_weights: in_weights.into(),
        }
    }

    /// Rebuild a graph from its out-CSR arrays alone (the checkpoint
    /// restore path — a checkpoint stores only the out direction because
    /// the in direction is derivable). The arcs of node `v` must occupy
    /// `out_offsets[v]..out_offsets[v+1]` of the parallel
    /// `out_targets`/`out_weights` arrays, sorted strictly ascending by
    /// target within each row, and for undirected graphs every edge
    /// `{u, v}` must appear in both rows — exactly the invariants the CSR
    /// maintains, so feeding back [`Self::out_adjacency`] round-trips.
    ///
    /// The in-adjacency is reconstructed deterministically: undirected
    /// graphs copy the out arrays verbatim (symmetric storage with
    /// ascending neighbors makes the two directions bit-identical), and
    /// directed graphs run the same counting sort by target as
    /// [`Self::from_row_adjacency`], so the rebuilt graph's arrays are
    /// bit-identical to the writer's. `O(n + arcs)`.
    pub fn from_out_csr(
        n: usize,
        directed: bool,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
    ) -> Self {
        assert_eq!(out_offsets.len(), n + 1, "offsets must have n + 1 entries");
        assert_eq!(out_targets.len(), out_weights.len());
        assert_eq!(*out_offsets.last().expect("n + 1 >= 1"), out_targets.len());
        let mut m = 0usize;
        for u in 0..n {
            debug_assert!(out_offsets[u] <= out_offsets[u + 1], "offsets not monotone");
            for e in out_offsets[u]..out_offsets[u + 1] {
                let v = out_targets[e];
                debug_assert!((v as usize) < n, "target {v} out of range");
                debug_assert!(
                    e == out_offsets[u] || out_targets[e - 1] < v,
                    "row {u} not strictly sorted by target"
                );
                if directed || u as NodeId <= v {
                    m += 1;
                }
            }
        }
        Self::from_out_columns(
            n,
            m,
            directed,
            out_offsets.into(),
            out_targets.into(),
            out_weights.into(),
        )
    }

    /// Build a graph over already-shared (typically memory-mapped) out-CSR
    /// columns **without copying them**. Same CSR invariants as
    /// [`Self::from_out_csr`], but validated with typed errors instead of
    /// panics — this is the checkpoint zero-copy restore entry point, and
    /// the columns come from an untrusted file.
    ///
    /// The validation pass touches only `out_offsets` plus one sequential
    /// scan of `out_targets` (range + row-sortedness + logical edge
    /// count); shared columns are advised [`ColumnAdvice::Sequential`]
    /// first so the faults stream. For undirected graphs the in-columns
    /// are the out-columns again (an `Arc` clone — still zero-copy); for
    /// directed graphs the in-adjacency is rebuilt owned by the same
    /// counting sort as [`Self::from_out_csr`], bit-identical to the
    /// writer's arrays. `out_weights` is never read here; weight pages
    /// fault in lazily on first use.
    pub fn from_mapped_columns(
        n: usize,
        directed: bool,
        out_offsets: ColumnBuf<usize>,
        out_targets: ColumnBuf<NodeId>,
        out_weights: ColumnBuf<f64>,
    ) -> Result<Self, GraphError> {
        fn bad(message: impl Into<String>) -> GraphError {
            GraphError::InvalidCsr {
                message: message.into(),
            }
        }
        if out_offsets.len() != n + 1 {
            return Err(bad(format!(
                "offsets must have n + 1 = {} entries, got {}",
                n + 1,
                out_offsets.len()
            )));
        }
        if out_targets.len() != out_weights.len() {
            return Err(bad(format!(
                "targets/weights length mismatch: {} vs {}",
                out_targets.len(),
                out_weights.len()
            )));
        }
        out_offsets.advise(ColumnAdvice::Sequential);
        out_targets.advise(ColumnAdvice::Sequential);
        let offsets = out_offsets.as_slice();
        let targets = out_targets.as_slice();
        if offsets[0] != 0 || offsets[n] != targets.len() {
            return Err(bad(format!(
                "offsets must span 0..{} (arcs), got {}..{}",
                targets.len(),
                offsets[0],
                offsets[n]
            )));
        }
        let mut m = 0usize;
        for u in 0..n {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            if lo > hi {
                return Err(bad(format!("offsets not monotone at node {u}")));
            }
            for e in lo..hi {
                let v = targets[e];
                if v as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if e > lo && targets[e - 1] >= v {
                    return Err(bad(format!("row {u} not strictly sorted by target")));
                }
                if directed || u as NodeId <= v {
                    m += 1;
                }
            }
        }
        Ok(Self::from_out_columns(
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
        ))
    }

    /// Shared construction tail: derive the in-adjacency from validated
    /// out-columns. Undirected graphs reuse the out-columns (symmetric
    /// storage with ascending neighbors makes the directions
    /// bit-identical — for shared columns this is an `Arc` clone, not a
    /// copy); directed graphs counting-sort into owned in-columns.
    fn from_out_columns(
        n: usize,
        m: usize,
        directed: bool,
        out_offsets: ColumnBuf<usize>,
        out_targets: ColumnBuf<NodeId>,
        out_weights: ColumnBuf<f64>,
    ) -> Self {
        let arcs = out_targets.len();
        let (in_offsets, in_sources, in_weights) = if directed {
            // Counting sort by target: sources within a row come out
            // ascending, matching `from_row_adjacency` exactly.
            let mut in_offsets = vec![0usize; n + 1];
            for &v in out_targets.iter() {
                in_offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                in_offsets[i + 1] += in_offsets[i];
            }
            let mut cursor = in_offsets.clone();
            let mut in_sources = vec![0 as NodeId; arcs];
            let mut in_weights = vec![0f64; arcs];
            for u in 0..n {
                for e in out_offsets[u]..out_offsets[u + 1] {
                    let pos = cursor[out_targets[e] as usize];
                    in_sources[pos] = u as NodeId;
                    in_weights[pos] = out_weights[e];
                    cursor[out_targets[e] as usize] += 1;
                }
            }
            (in_offsets.into(), in_sources.into(), in_weights.into())
        } else {
            (
                out_offsets.clone(),
                out_targets.clone(),
                out_weights.clone(),
            )
        };
        Graph {
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Create an empty graph with `n` isolated nodes.
    pub fn empty(n: usize, directed: bool) -> Self {
        Graph {
            n,
            m: 0,
            directed,
            out_offsets: vec![0; n + 1].into(),
            out_targets: ColumnBuf::default(),
            out_weights: ColumnBuf::default(),
            in_offsets: vec![0; n + 1].into(),
            in_sources: ColumnBuf::default(),
            in_weights: ColumnBuf::default(),
        }
    }

    /// Whether any column borrows shared (mapped) memory. Owned graphs
    /// skip the paging-advice bookkeeping entirely via this check.
    #[inline]
    pub fn has_shared_columns(&self) -> bool {
        self.out_offsets.is_shared()
            || self.out_targets.is_shared()
            || self.out_weights.is_shared()
            || self.in_offsets.is_shared()
            || self.in_sources.is_shared()
            || self.in_weights.is_shared()
    }

    /// Forward paging advice to every shared column (no-op for owned
    /// graphs). Call with [`ColumnAdvice::Sequential`] before a
    /// whole-graph sweep so cold page faults stream instead of thrashing.
    pub fn advise(&self, advice: ColumnAdvice) {
        if !self.has_shared_columns() {
            return;
        }
        self.out_offsets.advise(advice);
        self.out_targets.advise(advice);
        self.out_weights.advise(advice);
        self.in_offsets.advise(advice);
        self.in_sources.advise(advice);
        self.in_weights.advise(advice);
    }

    /// Hint that the out- and in-arcs of `nodes` will be read soon: one
    /// [`ColumnAdvice::WillNeed`] per direction over the arc span
    /// `min..max` of the listed nodes. Cheap (two `madvise` calls over a
    /// contiguous range, `O(|nodes|)` to find the span) and a no-op for
    /// owned graphs, so callers can hint unconditionally ahead of batched
    /// touched-list scans.
    pub fn advise_arcs_will_need(&self, nodes: &[NodeId]) {
        if nodes.is_empty() || !self.has_shared_columns() {
            return;
        }
        let (mut out_lo, mut out_hi) = (usize::MAX, 0usize);
        let (mut in_lo, mut in_hi) = (usize::MAX, 0usize);
        for &v in nodes {
            let u = v as usize;
            out_lo = out_lo.min(self.out_offsets[u]);
            out_hi = out_hi.max(self.out_offsets[u + 1]);
            in_lo = in_lo.min(self.in_offsets[u]);
            in_hi = in_hi.max(self.in_offsets[u + 1]);
        }
        if out_lo < out_hi {
            self.out_targets
                .advise_range(ColumnAdvice::WillNeed, out_lo, out_hi);
            self.out_weights
                .advise_range(ColumnAdvice::WillNeed, out_lo, out_hi);
        }
        if in_lo < in_hi {
            self.in_sources
                .advise_range(ColumnAdvice::WillNeed, in_lo, in_hi);
            self.in_weights
                .advise_range(ColumnAdvice::WillNeed, in_lo, in_hi);
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of logical edges (arcs for directed graphs, edges for
    /// undirected graphs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of stored arcs (twice `num_edges` for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether this graph was built as a directed graph.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Outgoing arcs of `v` as parallel slices `(targets, weights)`.
    #[inline]
    pub fn out_arcs(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.out_offsets[v as usize];
        let hi = self.out_offsets[v as usize + 1];
        (&self.out_targets[lo..hi], &self.out_weights[lo..hi])
    }

    /// Incoming arcs of `v` as parallel slices `(sources, weights)`.
    #[inline]
    pub fn in_arcs(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.in_offsets[v as usize];
        let hi = self.in_offsets[v as usize + 1];
        (&self.in_sources[lo..hi], &self.in_weights[lo..hi])
    }

    /// The raw out-CSR arrays `(offsets, targets, weights)`: the arcs of `v`
    /// occupy `offsets[v]..offsets[v+1]` in the parallel `targets`/`weights`
    /// slices. Used by batch passes (e.g. the incremental refinement
    /// engine's O(m) initialization) that want to sweep all arcs without
    /// per-node accessor calls.
    #[inline]
    pub fn out_adjacency(&self) -> (&[usize], &[NodeId], &[f64]) {
        (
            self.out_offsets.as_slice(),
            self.out_targets.as_slice(),
            self.out_weights.as_slice(),
        )
    }

    /// The raw in-CSR arrays `(offsets, sources, weights)`; see
    /// [`Self::out_adjacency`].
    #[inline]
    pub fn in_adjacency(&self) -> (&[usize], &[NodeId], &[f64]) {
        (
            self.in_offsets.as_slice(),
            self.in_sources.as_slice(),
            self.in_weights.as_slice(),
        )
    }

    /// Iterate the outgoing arcs `(target, weight)` of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (t, w) = self.out_arcs(v);
        t.iter().copied().zip(w.iter().copied())
    }

    /// Iterate the incoming arcs `(source, weight)` of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (s, w) = self.in_arcs(v);
        s.iter().copied().zip(w.iter().copied())
    }

    /// Out-degree (number of outgoing arcs) of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree (number of incoming arcs) of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// Total outgoing weight `w(v, X)` of `v`.
    #[inline]
    pub fn out_weight(&self, v: NodeId) -> f64 {
        let (_, w) = self.out_arcs(v);
        w.iter().sum()
    }

    /// Total incoming weight `w(X, v)` of `v`.
    #[inline]
    pub fn in_weight(&self, v: NodeId) -> f64 {
        let (_, w) = self.in_arcs(v);
        w.iter().sum()
    }

    /// Weight of the arc `(u, v)`, or `0.0` if absent. O(log deg(u)).
    pub fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        let (targets, weights) = self.out_arcs(u);
        match targets.binary_search(&v) {
            Ok(i) => weights[i],
            Err(_) => 0.0,
        }
    }

    /// Whether the arc `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (targets, _) = self.out_arcs(u);
        targets.binary_search(&v).is_ok()
    }

    /// Iterate all node ids.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n as NodeId
    }

    /// Iterate all stored arcs as `(source, target, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Iterate all logical edges; for undirected graphs each edge `{u,v}` is
    /// reported once with `u <= v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        if self.directed {
            self.arcs().collect()
        } else {
            self.arcs().filter(|&(u, v, _)| u <= v).collect()
        }
    }

    /// Total weight from a set `U` to a set `V`: `w(U, V)` of Eq. (1).
    ///
    /// Runs in `O(sum_{u in U} deg(u))` time; `in_v` must be a boolean mask
    /// over nodes marking membership in `V`.
    pub fn weight_between_masked(&self, us: &[NodeId], in_v: &[bool]) -> f64 {
        let mut total = 0.0;
        for &u in us {
            for (t, w) in self.out_edges(u) {
                if in_v[t as usize] {
                    total += w;
                }
            }
        }
        total
    }

    /// Total weight from a set `U` to a set `V` (both given as node lists).
    pub fn weight_between(&self, us: &[NodeId], vs: &[NodeId]) -> f64 {
        let mut mask = vec![false; self.n];
        for &v in vs {
            mask[v as usize] = true;
        }
        self.weight_between_masked(us, &mask)
    }

    /// Sum of all edge weights (over stored arcs).
    pub fn total_weight(&self) -> f64 {
        self.out_weights.iter().sum()
    }

    /// Return the transpose graph (all arcs reversed). The transpose of an
    /// undirected graph is itself (a copy).
    pub fn transpose(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut b = GraphBuilder::new_directed(self.n);
        for (u, v, w) in self.arcs() {
            b.add_edge(v, u, w);
        }
        b.build()
    }

    /// Build the induced subgraph on `nodes`, relabelling them `0..nodes.len()`
    /// in the given order. Returns the subgraph and the mapping
    /// `new id -> old id`.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.n];
        for (i, &v) in nodes.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut b = if self.directed {
            GraphBuilder::new_directed(nodes.len())
        } else {
            GraphBuilder::new_undirected(nodes.len())
        };
        for &u in nodes {
            for (v, w) in self.out_edges(u) {
                let nu = new_id[u as usize];
                let nv = new_id[v as usize];
                if nv != u32::MAX && (self.directed || nu <= nv) {
                    b.add_edge(nu, nv, w);
                }
            }
        }
        (b.build(), nodes.to_vec())
    }

    /// Convert an undirected graph into an explicitly directed one with an
    /// arc in each direction (weights preserved). Directed graphs are
    /// returned unchanged.
    pub fn to_directed(&self) -> Graph {
        if self.directed {
            return self.clone();
        }
        let mut g = self.clone();
        g.directed = true;
        g.m = g.out_targets.len();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5, true);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn triangle_basic() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_directed());
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.weight(1, 2), 2.0);
        assert_eq!(g.weight(2, 1), 2.0);
        assert_eq!(g.weight(0, 2), 3.0);
        assert_eq!(g.weight(2, 2), 0.0);
    }

    #[test]
    fn directed_graph_in_out() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(3, 0, 5.0);
        let g = b.build();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.in_weight(0), 5.0);
        assert_eq!(g.out_weight(0), 2.0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn raw_adjacency_matches_iterators() {
        let g = triangle();
        let (offs, tgts, wts) = g.out_adjacency();
        assert_eq!(offs.len(), g.num_nodes() + 1);
        assert_eq!(tgts.len(), g.num_arcs());
        for v in g.nodes() {
            let from_iter: Vec<(NodeId, f64)> = g.out_edges(v).collect();
            let lo = offs[v as usize];
            let hi = offs[v as usize + 1];
            let from_raw: Vec<(NodeId, f64)> = tgts[lo..hi]
                .iter()
                .copied()
                .zip(wts[lo..hi].iter().copied())
                .collect();
            assert_eq!(from_iter, from_raw);
        }
        let (ioffs, isrcs, iwts) = g.in_adjacency();
        assert_eq!(ioffs.len(), g.num_nodes() + 1);
        assert_eq!(isrcs.len(), iwts.len());
    }

    #[test]
    fn weight_between_sets() {
        let g = triangle();
        assert_eq!(g.weight_between(&[0], &[1, 2]), 4.0);
        assert_eq!(g.weight_between(&[0, 1], &[2]), 5.0);
        assert_eq!(g.weight_between(&[], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn transpose_directed() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        let g = b.build();
        let t = g.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.weight(2, 1), 2.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[1, 2]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.weight(0, 1), 2.0);
    }

    #[test]
    fn edges_undirected_reported_once() {
        let g = triangle();
        let e = g.edges();
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn from_out_csr_roundtrips_both_directions() {
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.5);
        b.add_edge(3, 0, 5.0);
        b.add_edge(4, 4, -1.5);
        for g in [triangle(), b.build()] {
            let (offs, tgts, wts) = g.out_adjacency();
            let r = Graph::from_out_csr(
                g.num_nodes(),
                g.is_directed(),
                offs.to_vec(),
                tgts.to_vec(),
                wts.to_vec(),
            );
            assert_eq!(r.num_nodes(), g.num_nodes());
            assert_eq!(r.num_edges(), g.num_edges());
            assert_eq!(r.is_directed(), g.is_directed());
            assert_eq!(r.out_adjacency(), g.out_adjacency());
            assert_eq!(r.in_adjacency(), g.in_adjacency());
        }
    }

    #[test]
    fn from_mapped_columns_shares_undirected_in_adjacency() {
        use crate::column::SharedColumn;
        use std::sync::Arc;

        struct Col<T: Send + Sync + 'static>(Vec<T>);
        impl<T: Send + Sync> SharedColumn<T> for Col<T> {
            fn as_slice(&self) -> &[T] {
                &self.0
            }
        }
        fn shared<T: Send + Sync + Clone>(v: &[T]) -> ColumnBuf<T> {
            ColumnBuf::Shared(Arc::new(Col(v.to_vec())) as Arc<dyn SharedColumn<T>>)
        }

        let g = triangle();
        let (offs, tgts, wts) = g.out_adjacency();
        let r = Graph::from_mapped_columns(
            g.num_nodes(),
            g.is_directed(),
            shared(offs),
            shared(tgts),
            shared(wts),
        )
        .unwrap();
        assert!(r.has_shared_columns());
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.out_adjacency(), g.out_adjacency());
        assert_eq!(r.in_adjacency(), g.in_adjacency());
        r.advise(ColumnAdvice::Sequential);
        r.advise_arcs_will_need(&[0, 2]);

        // Invalid columns must surface typed errors, never panic.
        assert!(Graph::from_mapped_columns(
            3,
            false,
            shared(&[0usize, 1]), // wrong offsets length
            shared(tgts),
            shared(wts),
        )
        .is_err());
        assert!(Graph::from_mapped_columns(
            2,
            true,
            shared(&[0usize, 1, 2]),
            shared(&[5u32, 0]), // target out of range
            shared(&[1.0f64, 1.0]),
        )
        .is_err());
        assert!(Graph::from_mapped_columns(
            1,
            true,
            shared(&[0usize, 2]),
            shared(&[0u32, 0]), // row not strictly sorted
            shared(&[1.0f64, 1.0]),
        )
        .is_err());
    }

    #[test]
    fn to_directed_doubles_edges() {
        let g = triangle();
        let d = g.to_directed();
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), 6);
        assert_eq!(d.num_arcs(), 6);
    }
}
