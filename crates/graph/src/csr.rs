//! Immutable CSR (compressed sparse row) weighted directed graph.
//!
//! The graph stores both the out-adjacency and the in-adjacency so that the
//! coloring algorithms can inspect incoming and outgoing weights of a node in
//! O(deg) time. Undirected graphs are represented as symmetric directed
//! graphs (each undirected edge becomes two arcs); [`Graph::is_directed`]
//! records which convention was used so that edge counts and generators can
//! report logical edge counts.

use crate::builder::GraphBuilder;

/// Dense node identifier. All nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = u32;

/// An immutable weighted directed graph in CSR form.
///
/// Construct via [`GraphBuilder`] or one of the [`crate::generators`].
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    /// Number of *logical* edges: arcs for directed graphs, undirected edges
    /// for undirected graphs.
    m: usize,
    directed: bool,
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<f64>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<f64>,
}

impl Graph {
    /// Build a graph from raw parts. Intended for use by [`GraphBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        m: usize,
        directed: bool,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
        in_offsets: Vec<usize>,
        in_sources: Vec<NodeId>,
        in_weights: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_weights.len());
        debug_assert_eq!(in_sources.len(), in_weights.len());
        Graph {
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Build a graph directly from per-node out-adjacency rows, each sorted
    /// by target with at most one entry per target (i.e. already merged).
    /// For undirected graphs every edge `{u, v}` must appear in both rows
    /// (self-loops once), exactly as the CSR stores it.
    ///
    /// `O(n + arcs)` with no sorting — this is the fast path for callers
    /// that maintain merged adjacency themselves ([`crate::delta::GraphDelta`]
    /// compaction, the patched reduced-graph emission) and it produces
    /// bit-identical CSR arrays to a [`GraphBuilder`] fed the same arcs.
    pub fn from_row_adjacency(n: usize, directed: bool, rows: &[Vec<(NodeId, f64)>]) -> Self {
        assert_eq!(rows.len(), n, "one adjacency row per node");
        let arcs: usize = rows.iter().map(|r| r.len()).sum();
        let mut out_offsets = vec![0usize; n + 1];
        let mut out_targets = Vec::with_capacity(arcs);
        let mut out_weights = Vec::with_capacity(arcs);
        let mut in_offsets = vec![0usize; n + 1];
        let mut m = 0usize;
        for (u, row) in rows.iter().enumerate() {
            out_offsets[u + 1] = out_offsets[u] + row.len();
            for (idx, &(v, w)) in row.iter().enumerate() {
                debug_assert!((v as usize) < n, "target {v} out of range");
                debug_assert!(
                    idx == 0 || row[idx - 1].0 < v,
                    "row {u} not strictly sorted by target"
                );
                out_targets.push(v);
                out_weights.push(w);
                in_offsets[v as usize + 1] += 1;
                if directed || u as NodeId <= v {
                    m += 1;
                }
            }
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; arcs];
        let mut in_weights = vec![0f64; arcs];
        for (u, row) in rows.iter().enumerate() {
            for &(v, w) in row {
                let pos = cursor[v as usize];
                in_sources[pos] = u as NodeId;
                in_weights[pos] = w;
                cursor[v as usize] += 1;
            }
        }
        Graph {
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Rebuild a graph from its out-CSR arrays alone (the checkpoint
    /// restore path — a checkpoint stores only the out direction because
    /// the in direction is derivable). The arcs of node `v` must occupy
    /// `out_offsets[v]..out_offsets[v+1]` of the parallel
    /// `out_targets`/`out_weights` arrays, sorted strictly ascending by
    /// target within each row, and for undirected graphs every edge
    /// `{u, v}` must appear in both rows — exactly the invariants the CSR
    /// maintains, so feeding back [`Self::out_adjacency`] round-trips.
    ///
    /// The in-adjacency is reconstructed deterministically: undirected
    /// graphs copy the out arrays verbatim (symmetric storage with
    /// ascending neighbors makes the two directions bit-identical), and
    /// directed graphs run the same counting sort by target as
    /// [`Self::from_row_adjacency`], so the rebuilt graph's arrays are
    /// bit-identical to the writer's. `O(n + arcs)`.
    pub fn from_out_csr(
        n: usize,
        directed: bool,
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        out_weights: Vec<f64>,
    ) -> Self {
        assert_eq!(out_offsets.len(), n + 1, "offsets must have n + 1 entries");
        assert_eq!(out_targets.len(), out_weights.len());
        assert_eq!(*out_offsets.last().expect("n + 1 >= 1"), out_targets.len());
        let arcs = out_targets.len();
        let mut m = 0usize;
        for u in 0..n {
            debug_assert!(out_offsets[u] <= out_offsets[u + 1], "offsets not monotone");
            for e in out_offsets[u]..out_offsets[u + 1] {
                let v = out_targets[e];
                debug_assert!((v as usize) < n, "target {v} out of range");
                debug_assert!(
                    e == out_offsets[u] || out_targets[e - 1] < v,
                    "row {u} not strictly sorted by target"
                );
                if directed || u as NodeId <= v {
                    m += 1;
                }
            }
        }
        let (in_offsets, in_sources, in_weights) = if directed {
            // Counting sort by target: sources within a row come out
            // ascending, matching `from_row_adjacency` exactly.
            let mut in_offsets = vec![0usize; n + 1];
            for &v in &out_targets {
                in_offsets[v as usize + 1] += 1;
            }
            for i in 0..n {
                in_offsets[i + 1] += in_offsets[i];
            }
            let mut cursor = in_offsets.clone();
            let mut in_sources = vec![0 as NodeId; arcs];
            let mut in_weights = vec![0f64; arcs];
            for u in 0..n {
                for e in out_offsets[u]..out_offsets[u + 1] {
                    let pos = cursor[out_targets[e] as usize];
                    in_sources[pos] = u as NodeId;
                    in_weights[pos] = out_weights[e];
                    cursor[out_targets[e] as usize] += 1;
                }
            }
            (in_offsets, in_sources, in_weights)
        } else {
            // Symmetric storage: the in-adjacency of `v` is its neighbor
            // set again, ascending — the exact arrays the counting sort
            // would produce, without the random-access pass.
            (
                out_offsets.clone(),
                out_targets.clone(),
                out_weights.clone(),
            )
        };
        Graph {
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Create an empty graph with `n` isolated nodes.
    pub fn empty(n: usize, directed: bool) -> Self {
        Graph {
            n,
            m: 0,
            directed,
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            out_weights: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
            in_weights: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of logical edges (arcs for directed graphs, edges for
    /// undirected graphs).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of stored arcs (twice `num_edges` for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether this graph was built as a directed graph.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Outgoing arcs of `v` as parallel slices `(targets, weights)`.
    #[inline]
    pub fn out_arcs(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.out_offsets[v as usize];
        let hi = self.out_offsets[v as usize + 1];
        (&self.out_targets[lo..hi], &self.out_weights[lo..hi])
    }

    /// Incoming arcs of `v` as parallel slices `(sources, weights)`.
    #[inline]
    pub fn in_arcs(&self, v: NodeId) -> (&[NodeId], &[f64]) {
        let lo = self.in_offsets[v as usize];
        let hi = self.in_offsets[v as usize + 1];
        (&self.in_sources[lo..hi], &self.in_weights[lo..hi])
    }

    /// The raw out-CSR arrays `(offsets, targets, weights)`: the arcs of `v`
    /// occupy `offsets[v]..offsets[v+1]` in the parallel `targets`/`weights`
    /// slices. Used by batch passes (e.g. the incremental refinement
    /// engine's O(m) initialization) that want to sweep all arcs without
    /// per-node accessor calls.
    #[inline]
    pub fn out_adjacency(&self) -> (&[usize], &[NodeId], &[f64]) {
        (&self.out_offsets, &self.out_targets, &self.out_weights)
    }

    /// The raw in-CSR arrays `(offsets, sources, weights)`; see
    /// [`Self::out_adjacency`].
    #[inline]
    pub fn in_adjacency(&self) -> (&[usize], &[NodeId], &[f64]) {
        (&self.in_offsets, &self.in_sources, &self.in_weights)
    }

    /// Iterate the outgoing arcs `(target, weight)` of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (t, w) = self.out_arcs(v);
        t.iter().copied().zip(w.iter().copied())
    }

    /// Iterate the incoming arcs `(source, weight)` of `v`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let (s, w) = self.in_arcs(v);
        s.iter().copied().zip(w.iter().copied())
    }

    /// Out-degree (number of outgoing arcs) of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree (number of incoming arcs) of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
    }

    /// Total outgoing weight `w(v, X)` of `v`.
    #[inline]
    pub fn out_weight(&self, v: NodeId) -> f64 {
        let (_, w) = self.out_arcs(v);
        w.iter().sum()
    }

    /// Total incoming weight `w(X, v)` of `v`.
    #[inline]
    pub fn in_weight(&self, v: NodeId) -> f64 {
        let (_, w) = self.in_arcs(v);
        w.iter().sum()
    }

    /// Weight of the arc `(u, v)`, or `0.0` if absent. O(log deg(u)).
    pub fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        let (targets, weights) = self.out_arcs(u);
        match targets.binary_search(&v) {
            Ok(i) => weights[i],
            Err(_) => 0.0,
        }
    }

    /// Whether the arc `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (targets, _) = self.out_arcs(u);
        targets.binary_search(&v).is_ok()
    }

    /// Iterate all node ids.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n as NodeId
    }

    /// Iterate all stored arcs as `(source, target, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |(v, w)| (u, v, w)))
    }

    /// Iterate all logical edges; for undirected graphs each edge `{u,v}` is
    /// reported once with `u <= v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        if self.directed {
            self.arcs().collect()
        } else {
            self.arcs().filter(|&(u, v, _)| u <= v).collect()
        }
    }

    /// Total weight from a set `U` to a set `V`: `w(U, V)` of Eq. (1).
    ///
    /// Runs in `O(sum_{u in U} deg(u))` time; `in_v` must be a boolean mask
    /// over nodes marking membership in `V`.
    pub fn weight_between_masked(&self, us: &[NodeId], in_v: &[bool]) -> f64 {
        let mut total = 0.0;
        for &u in us {
            for (t, w) in self.out_edges(u) {
                if in_v[t as usize] {
                    total += w;
                }
            }
        }
        total
    }

    /// Total weight from a set `U` to a set `V` (both given as node lists).
    pub fn weight_between(&self, us: &[NodeId], vs: &[NodeId]) -> f64 {
        let mut mask = vec![false; self.n];
        for &v in vs {
            mask[v as usize] = true;
        }
        self.weight_between_masked(us, &mask)
    }

    /// Sum of all edge weights (over stored arcs).
    pub fn total_weight(&self) -> f64 {
        self.out_weights.iter().sum()
    }

    /// Return the transpose graph (all arcs reversed). The transpose of an
    /// undirected graph is itself (a copy).
    pub fn transpose(&self) -> Graph {
        if !self.directed {
            return self.clone();
        }
        let mut b = GraphBuilder::new_directed(self.n);
        for (u, v, w) in self.arcs() {
            b.add_edge(v, u, w);
        }
        b.build()
    }

    /// Build the induced subgraph on `nodes`, relabelling them `0..nodes.len()`
    /// in the given order. Returns the subgraph and the mapping
    /// `new id -> old id`.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut new_id = vec![u32::MAX; self.n];
        for (i, &v) in nodes.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut b = if self.directed {
            GraphBuilder::new_directed(nodes.len())
        } else {
            GraphBuilder::new_undirected(nodes.len())
        };
        for &u in nodes {
            for (v, w) in self.out_edges(u) {
                let nu = new_id[u as usize];
                let nv = new_id[v as usize];
                if nv != u32::MAX && (self.directed || nu <= nv) {
                    b.add_edge(nu, nv, w);
                }
            }
        }
        (b.build(), nodes.to_vec())
    }

    /// Convert an undirected graph into an explicitly directed one with an
    /// arc in each direction (weights preserved). Directed graphs are
    /// returned unchanged.
    pub fn to_directed(&self) -> Graph {
        if self.directed {
            return self.clone();
        }
        let mut g = self.clone();
        g.directed = true;
        g.m = g.out_targets.len();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5, true);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn triangle_basic() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_directed());
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.weight(1, 2), 2.0);
        assert_eq!(g.weight(2, 1), 2.0);
        assert_eq!(g.weight(0, 2), 3.0);
        assert_eq!(g.weight(2, 2), 0.0);
    }

    #[test]
    fn directed_graph_in_out() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(3, 0, 5.0);
        let g = b.build();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.in_weight(0), 5.0);
        assert_eq!(g.out_weight(0), 2.0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn raw_adjacency_matches_iterators() {
        let g = triangle();
        let (offs, tgts, wts) = g.out_adjacency();
        assert_eq!(offs.len(), g.num_nodes() + 1);
        assert_eq!(tgts.len(), g.num_arcs());
        for v in g.nodes() {
            let from_iter: Vec<(NodeId, f64)> = g.out_edges(v).collect();
            let lo = offs[v as usize];
            let hi = offs[v as usize + 1];
            let from_raw: Vec<(NodeId, f64)> = tgts[lo..hi]
                .iter()
                .copied()
                .zip(wts[lo..hi].iter().copied())
                .collect();
            assert_eq!(from_iter, from_raw);
        }
        let (ioffs, isrcs, iwts) = g.in_adjacency();
        assert_eq!(ioffs.len(), g.num_nodes() + 1);
        assert_eq!(isrcs.len(), iwts.len());
    }

    #[test]
    fn weight_between_sets() {
        let g = triangle();
        assert_eq!(g.weight_between(&[0], &[1, 2]), 4.0);
        assert_eq!(g.weight_between(&[0, 1], &[2]), 5.0);
        assert_eq!(g.weight_between(&[], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn transpose_directed() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        let g = b.build();
        let t = g.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert!(!t.has_edge(0, 1));
        assert_eq!(t.weight(2, 1), 2.0);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[1, 2]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(map, vec![1, 2]);
        assert_eq!(sub.weight(0, 1), 2.0);
    }

    #[test]
    fn edges_undirected_reported_once() {
        let g = triangle();
        let e = g.edges();
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn from_out_csr_roundtrips_both_directions() {
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.5);
        b.add_edge(3, 0, 5.0);
        b.add_edge(4, 4, -1.5);
        for g in [triangle(), b.build()] {
            let (offs, tgts, wts) = g.out_adjacency();
            let r = Graph::from_out_csr(
                g.num_nodes(),
                g.is_directed(),
                offs.to_vec(),
                tgts.to_vec(),
                wts.to_vec(),
            );
            assert_eq!(r.num_nodes(), g.num_nodes());
            assert_eq!(r.num_edges(), g.num_edges());
            assert_eq!(r.is_directed(), g.is_directed());
            assert_eq!(r.out_adjacency(), g.out_adjacency());
            assert_eq!(r.in_adjacency(), g.in_adjacency());
        }
    }

    #[test]
    fn to_directed_doubles_edges() {
        let g = triangle();
        let d = g.to_directed();
        assert!(d.is_directed());
        assert_eq!(d.num_edges(), 6);
        assert_eq!(d.num_arcs(), 6);
    }
}
