//! Weighted bipartite graphs `(X, Y, w)`.
//!
//! Bipartite graphs appear in two places in the paper:
//!
//! * Definition 1 checks, for every pair of colors `(P_i, P_j)`, whether the
//!   induced bipartite graph is `∼`-regular.
//! * Theorem 6 / Lemma 8 need the *maximum uniform flow* of the bipartite
//!   graph between two colors, which is computed in `qsc-flow`.
//!
//! The type stores a dense list of weighted edges from left nodes `0..nx` to
//! right nodes `0..ny`, in CSR form over the left side.

/// A weighted bipartite graph with `nx` left nodes and `ny` right nodes.
#[derive(Clone, Debug)]
pub struct Bipartite {
    nx: usize,
    ny: usize,
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl Bipartite {
    /// Build from an edge list `(x, y, w)`. Duplicate `(x, y)` pairs are
    /// merged by summing weights.
    pub fn from_edges(nx: usize, ny: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut es: Vec<(u32, u32, f64)> = edges.to_vec();
        es.sort_unstable_by_key(|&(x, y, _)| (x, y));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(es.len());
        for (x, y, w) in es {
            assert!((x as usize) < nx, "left node {x} out of range");
            assert!((y as usize) < ny, "right node {y} out of range");
            match merged.last_mut() {
                Some(last) if last.0 == x && last.1 == y => last.2 += w,
                _ => merged.push((x, y, w)),
            }
        }
        let mut offsets = vec![0usize; nx + 1];
        for &(x, _, _) in &merged {
            offsets[x as usize + 1] += 1;
        }
        for i in 0..nx {
            offsets[i + 1] += offsets[i];
        }
        let targets = merged.iter().map(|&(_, y, _)| y).collect();
        let weights = merged.iter().map(|&(_, _, w)| w).collect();
        Bipartite {
            nx,
            ny,
            offsets,
            targets,
            weights,
        }
    }

    /// Build from a dense `nx x ny` matrix of weights (zero entries are
    /// omitted).
    pub fn from_dense(matrix: &[Vec<f64>]) -> Self {
        let nx = matrix.len();
        let ny = matrix.first().map_or(0, |r| r.len());
        let mut edges = Vec::new();
        for (x, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), ny, "ragged matrix");
            for (y, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    edges.push((x as u32, y as u32, w));
                }
            }
        }
        Self::from_edges(nx, ny, &edges)
    }

    /// Number of left nodes.
    #[inline]
    pub fn num_left(&self) -> usize {
        self.nx
    }

    /// Number of right nodes.
    #[inline]
    pub fn num_right(&self) -> usize {
        self.ny
    }

    /// Number of stored (non-zero) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Iterate edges `(y, w)` leaving left node `x`.
    #[inline]
    pub fn edges_of(&self, x: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[x as usize];
        let hi = self.offsets[x as usize + 1];
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Iterate all edges `(x, y, w)`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.nx as u32).flat_map(move |x| self.edges_of(x).map(move |(y, w)| (x, y, w)))
    }

    /// Total outgoing weight `w(x, Y)` of left node `x`.
    pub fn left_weight(&self, x: u32) -> f64 {
        self.edges_of(x).map(|(_, w)| w).sum()
    }

    /// Total incoming weight `w(X, y)` of right node `y`. O(#edges).
    pub fn right_weight(&self, y: u32) -> f64 {
        self.edges()
            .filter(|&(_, t, _)| t == y)
            .map(|(_, _, w)| w)
            .sum()
    }

    /// All right-weights at once in O(#edges).
    pub fn right_weights(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.ny];
        for (_, y, w) in self.edges() {
            acc[y as usize] += w;
        }
        acc
    }

    /// All left-weights at once in O(#edges).
    pub fn left_weights(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.nx];
        for (x, _, w) in self.edges() {
            acc[x as usize] += w;
        }
        acc
    }

    /// Total weight `w(X, Y)` of the bipartite graph.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Whether the graph is `(a, b)`-biregular within tolerance `tol`:
    /// every left node has out-weight `a` and every right node in-weight `b`.
    pub fn is_biregular(&self, tol: f64) -> Option<(f64, f64)> {
        if self.nx == 0 || self.ny == 0 {
            return Some((0.0, 0.0));
        }
        let lw = self.left_weights();
        let rw = self.right_weights();
        let a = lw[0];
        let b = rw[0];
        if lw.iter().all(|&x| (x - a).abs() <= tol) && rw.iter().all(|&x| (x - b).abs() <= tol) {
            Some((a, b))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_merges_duplicates() {
        let b = Bipartite::from_edges(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(b.num_edges(), 2);
        assert_eq!(b.left_weight(0), 3.0);
        assert_eq!(b.right_weight(1), 3.0);
    }

    #[test]
    fn from_dense_drops_zeros() {
        let b = Bipartite::from_dense(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        assert_eq!(b.num_edges(), 2);
        assert_eq!(b.total_weight(), 3.0);
    }

    #[test]
    fn biregular_detection() {
        // Complete bipartite K_{2,2} with unit weights: (2,2)-biregular.
        let b = Bipartite::from_dense(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(b.is_biregular(1e-12), Some((2.0, 2.0)));
        let c = Bipartite::from_dense(&[vec![1.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(c.is_biregular(1e-12), None);
    }

    #[test]
    fn weights_sums() {
        let b = Bipartite::from_dense(&[vec![1.0, 2.0, 0.0], vec![0.0, 4.0, 8.0]]);
        assert_eq!(b.left_weights(), vec![3.0, 12.0]);
        assert_eq!(b.right_weights(), vec![1.0, 6.0, 8.0]);
        assert_eq!(b.num_left(), 2);
        assert_eq!(b.num_right(), 3);
    }
}
