//! Incremental graph construction.

use crate::csr::{Graph, NodeId};

/// Builds a [`Graph`] from an edge list.
///
/// Duplicate arcs between the same ordered pair of nodes are merged by
/// summing their weights (multigraph edges collapse into weighted edges,
/// matching the weighted-graph view of Sec. 3 of the paper).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    directed: bool,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// New builder for a directed graph on `n` nodes.
    pub fn new_directed(n: usize) -> Self {
        GraphBuilder {
            n,
            directed: true,
            edges: Vec::new(),
        }
    }

    /// New builder for an undirected graph on `n` nodes.
    pub fn new_undirected(n: usize) -> Self {
        GraphBuilder {
            n,
            directed: false,
            edges: Vec::new(),
        }
    }

    /// Number of nodes currently declared.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before duplicate merging).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensure the graph has at least `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Add a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.n as NodeId;
        self.n += 1;
        id
    }

    /// Add an edge with weight 1.0.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v, 1.0);
    }

    /// Add an edge `(u, v)` with the given weight. For undirected builders
    /// the edge is stored once and expanded to two arcs when building.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if the weight is not finite.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) {
        assert!(
            (u as usize) < self.n,
            "node {u} out of range (n = {})",
            self.n
        );
        assert!(
            (v as usize) < self.n,
            "node {v} out of range (n = {})",
            self.n
        );
        assert!(
            weight.is_finite(),
            "edge weight must be finite, got {weight}"
        );
        self.edges.push((u, v, weight));
    }

    /// Whether an edge (in either orientation for undirected builders) has
    /// already been added. O(#edges); intended for generators that need to
    /// avoid duplicates on small graphs.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges
            .iter()
            .any(|&(a, b, _)| (a == u && b == v) || (!self.directed && a == v && b == u))
    }

    /// Finalize into a CSR [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let directed = self.directed;

        // Expand undirected edges into symmetric arcs. Self-loops are kept as
        // a single arc in both cases.
        let mut arcs: Vec<(NodeId, NodeId, f64)> = if directed {
            self.edges
        } else {
            let mut a = Vec::with_capacity(self.edges.len() * 2);
            for &(u, v, w) in &self.edges {
                a.push((u, v, w));
                if u != v {
                    a.push((v, u, w));
                }
            }
            a
        };

        // Sort by (source, target) and merge duplicates by summing weights.
        arcs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut merged: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(arcs.len());
        for (u, v, w) in arcs {
            match merged.last_mut() {
                Some(last) if last.0 == u && last.1 == v => last.2 += w,
                _ => merged.push((u, v, w)),
            }
        }

        // Logical edge count.
        let m = if directed {
            merged.len()
        } else {
            // Count undirected edges once: arcs with u < v, plus self loops.
            merged.iter().filter(|&&(u, v, _)| u <= v).count()
        };

        // Out CSR.
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &merged {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(merged.len());
        let mut out_weights = Vec::with_capacity(merged.len());
        for &(_, v, w) in &merged {
            out_targets.push(v);
            out_weights.push(w);
        }

        // In CSR.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &merged {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as NodeId; merged.len()];
        let mut in_weights = vec![0f64; merged.len()];
        for &(u, v, w) in &merged {
            let pos = cursor[v as usize];
            in_sources[pos] = u;
            in_weights[pos] = w;
            cursor[v as usize] += 1;
        }

        Graph::from_parts(
            n,
            m,
            directed,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_merge() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, 2.5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0, 1), 3.5);
    }

    #[test]
    fn undirected_expansion() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn self_loop_stored_once() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 0, 2.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.weight(0, 0), 2.0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 3);
    }

    #[test]
    fn add_node_grows() {
        let mut b = GraphBuilder::new_directed(0);
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c, 1.0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut b = GraphBuilder::new_directed(1);
        b.add_edge(0, 1, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_weight_panics() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn contains_edge_undirected() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 1.0);
        assert!(b.contains_edge(0, 1));
        assert!(b.contains_edge(1, 0));
        assert!(!b.contains_edge(1, 2));
    }
}
