//! A mutable delta layer over the immutable CSR [`Graph`].
//!
//! The coloring pipeline's graphs are CSR-immutable by design (every hot
//! loop reads raw adjacency arrays), but the dynamic-graph maintenance path
//! needs edge churn: live traffic inserts, deletes and reweights edges while
//! downstream consumers ([`qsc_core`]'s incremental engine, the reduced
//! quotient matrix, a running `RothkoRun`) patch their state per batch
//! instead of rebuilding. [`GraphDelta`] provides that layer:
//!
//! * **Batched mutations.** [`GraphDelta::insert_edge`],
//!   [`GraphDelta::delete_edge`] and [`GraphDelta::reweight_edge`] record a
//!   per-node sorted *overlay* over the base CSR (current-weight overrides,
//!   `O(log deg)` per lookup) and append one [`EdgeEvent`] per logical edge
//!   change to the pending batch. Point queries ([`GraphDelta::weight`],
//!   [`GraphDelta::has_edge`], [`GraphDelta::num_edges`]) see the merged
//!   view immediately.
//! * **Event hand-off.** [`GraphDelta::drain_events`] takes the pending
//!   batch. An [`EdgeEvent`] is a *signed weight change* of one logical
//!   edge — `+w` for an insert, `-w_old` for a delete, `new − old` for a
//!   reweight — which is exactly the currency the incremental consumers
//!   patch their accumulators with (`IncrementalDegrees::apply_edge_batch`,
//!   `ReducedDelta::apply_edge_batch`).
//! * **Periodic compaction.** [`GraphDelta::compact`] folds the overlay
//!   back into a fresh CSR [`Graph`] in `O(n + m + overlay)` (no sort — the
//!   overlay is kept in neighbor order) and resets the overlay. Callers
//!   compact when they need raw adjacency again (the refinement engine's
//!   split path scans CSR arrays) or when the overlay grows past a
//!   fraction of the arc count ([`GraphDelta::overlay_arcs`]).
//!
//! # Edge policy
//!
//! The delta layer is stricter than [`crate::GraphBuilder`] (which merges
//! duplicates by summing): inserting an edge that already exists is an
//! error ([`DeltaError::EdgeExists`]) — use
//! [`GraphDelta::reweight_edge`] — and deleting or reweighting an absent
//! edge is an error ([`DeltaError::NoSuchEdge`]). Self-loops are legal and
//! count as one logical edge (stored as a single arc, exactly like the CSR
//! convention). On undirected graphs an edge `{u, v}` is one logical edge;
//! its event carries the endpoints once and consumers apply it to both arc
//! directions. Weights must be finite ([`DeltaError::InvalidWeight`]);
//! inserting with weight `0.0` is rejected (a zero-weight edge is
//! indistinguishable from an absent one for every consumer), while
//! reweighting *to* `0.0` is expressed as a delete.

use crate::csr::{Graph, NodeId};

/// One logical-edge weight change: the currency of the dynamic-graph
/// maintenance path. `delta` is the signed change (`new − old`), so
/// inserts carry `+w`, deletes `-w_old`, and reweights the difference.
///
/// For undirected graphs the event names the endpoints once (in the order
/// the mutation was issued); consumers apply it to both stored arc
/// directions themselves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeEvent {
    /// Arc source (one endpoint for undirected graphs).
    pub source: NodeId,
    /// Arc target (the other endpoint for undirected graphs).
    pub target: NodeId,
    /// Signed weight change of the logical edge.
    pub delta: f64,
}

/// Errors from delta-layer mutations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaError {
    /// An endpoint was `>= num_nodes()`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// `insert_edge` on an edge that already exists (use `reweight_edge`).
    EdgeExists { source: NodeId, target: NodeId },
    /// `delete_edge`/`reweight_edge` on an edge that does not exist.
    NoSuchEdge { source: NodeId, target: NodeId },
    /// A non-finite weight, or an insert/reweight to exactly `0.0`.
    InvalidWeight { weight: f64 },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            DeltaError::EdgeExists { source, target } => {
                write!(f, "edge ({source}, {target}) already exists")
            }
            DeltaError::NoSuchEdge { source, target } => {
                write!(f, "edge ({source}, {target}) does not exist")
            }
            DeltaError::InvalidWeight { weight } => {
                write!(f, "invalid edge weight {weight}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Current state of one overlaid arc: a weight override or an explicit
/// deletion of a base arc.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ArcState {
    Present(f64),
    Absent,
}

/// A mutable batched delta over an immutable CSR base graph. See the
/// module docs for the design and the edge policy.
#[derive(Clone, Debug)]
pub struct GraphDelta {
    base: Graph,
    /// Per-node overlay of `(neighbor, state)` overrides of the base
    /// out-adjacency, sorted by neighbor. Undirected edges keep an entry in
    /// both endpoints' rows (one for self-loops), mirroring the CSR's
    /// symmetric-arc storage.
    overlay: Vec<Vec<(NodeId, ArcState)>>,
    /// Pending logical-edge events since the last [`Self::drain_events`].
    events: Vec<EdgeEvent>,
    /// Current logical edge count (arcs for directed, edges for
    /// undirected).
    num_edges: usize,
    /// Number of overlay entries (compaction-policy signal).
    overlay_arcs: usize,
}

impl GraphDelta {
    /// Wrap a base graph with an empty overlay.
    pub fn new(base: Graph) -> Self {
        let n = base.num_nodes();
        let num_edges = base.num_edges();
        GraphDelta {
            base,
            overlay: vec![Vec::new(); n],
            events: Vec::new(),
            num_edges,
            overlay_arcs: 0,
        }
    }

    /// Number of nodes (fixed; the delta layer does not add nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Current number of logical edges (insertions minus deletions applied
    /// to the base count).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the base graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// The base graph the overlay applies to (the state as of the last
    /// compaction).
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Number of overlay entries not yet folded into the CSR. Callers use
    /// this to decide when a [`Self::compact`] pays for itself.
    #[inline]
    pub fn overlay_arcs(&self) -> usize {
        self.overlay_arcs
    }

    /// Number of pending (undrained) events.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Current weight of the arc `(u, v)` (`0.0` when absent), overlay
    /// included. `O(log deg)`.
    pub fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        match self.overlay_state(u, v) {
            Some(ArcState::Present(w)) => w,
            Some(ArcState::Absent) => 0.0,
            None => self.base.weight(u, v),
        }
    }

    /// Whether the arc `(u, v)` currently exists, overlay included.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.overlay_state(u, v) {
            Some(ArcState::Present(_)) => true,
            Some(ArcState::Absent) => false,
            None => self.base.has_edge(u, v),
        }
    }

    /// Insert the edge `(u, v)` with the given weight. Errors if the edge
    /// already exists, an endpoint is out of range, or the weight is
    /// non-finite or exactly zero. Records one [`EdgeEvent`] with
    /// `delta = weight`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !weight.is_finite() || weight == 0.0 {
            return Err(DeltaError::InvalidWeight { weight });
        }
        if self.has_edge(u, v) {
            return Err(DeltaError::EdgeExists {
                source: u,
                target: v,
            });
        }
        self.set_state(u, v, ArcState::Present(weight));
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Present(weight));
        }
        self.num_edges += 1;
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: weight,
        });
        Ok(())
    }

    /// Delete the edge `(u, v)`. Errors if it does not exist. Records one
    /// [`EdgeEvent`] with `delta = -old_weight`.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !self.has_edge(u, v) {
            return Err(DeltaError::NoSuchEdge {
                source: u,
                target: v,
            });
        }
        let old = self.weight(u, v);
        self.set_state(u, v, ArcState::Absent);
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Absent);
        }
        self.num_edges -= 1;
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: -old,
        });
        Ok(())
    }

    /// Change the weight of the existing edge `(u, v)` to `weight`. Errors
    /// if the edge does not exist or the weight is non-finite or exactly
    /// zero (delete instead). Records one [`EdgeEvent`] with
    /// `delta = weight - old` (skipped entirely when the weight is
    /// unchanged).
    pub fn reweight_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !weight.is_finite() || weight == 0.0 {
            return Err(DeltaError::InvalidWeight { weight });
        }
        if !self.has_edge(u, v) {
            return Err(DeltaError::NoSuchEdge {
                source: u,
                target: v,
            });
        }
        let old = self.weight(u, v);
        if old == weight {
            return Ok(());
        }
        self.set_state(u, v, ArcState::Present(weight));
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Present(weight));
        }
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: weight - old,
        });
        Ok(())
    }

    /// Take the pending event batch (in mutation order), leaving the delta
    /// ready to accumulate the next one.
    pub fn drain_events(&mut self) -> Vec<EdgeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Fold the overlay into a fresh CSR graph, reset the overlay, and
    /// return a clone of the new base (the delta keeps the other copy and
    /// stays usable for further batches). `O(n + m + overlay)`; no sorting
    /// — both the base arcs and the overlay rows are in neighbor order.
    ///
    /// Pending events are *not* drained: compaction changes the
    /// representation, not the mutation history.
    pub fn compact(&mut self) -> Graph {
        if self.overlay_arcs > 0 {
            let n = self.num_nodes();
            let mut rows: Vec<Vec<(NodeId, f64)>> = Vec::with_capacity(n);
            for u in 0..n as NodeId {
                let (targets, weights) = self.base.out_arcs(u);
                let over = &self.overlay[u as usize];
                let mut row = Vec::with_capacity(targets.len() + over.len());
                let mut oi = 0usize;
                for (idx, &t) in targets.iter().enumerate() {
                    while oi < over.len() && over[oi].0 < t {
                        if let (v, ArcState::Present(w)) = over[oi] {
                            row.push((v, w));
                        }
                        oi += 1;
                    }
                    if oi < over.len() && over[oi].0 == t {
                        if let (v, ArcState::Present(w)) = over[oi] {
                            row.push((v, w));
                        }
                        oi += 1;
                    } else {
                        row.push((t, weights[idx]));
                    }
                }
                while oi < over.len() {
                    if let (v, ArcState::Present(w)) = over[oi] {
                        row.push((v, w));
                    }
                    oi += 1;
                }
                rows.push(row);
            }
            self.base = Graph::from_row_adjacency(n, self.is_directed(), &rows);
            for row in &mut self.overlay {
                row.clear();
            }
            self.overlay_arcs = 0;
        }
        debug_assert_eq!(self.base.num_edges(), self.num_edges);
        self.base.clone()
    }

    // ---- internals ----

    fn check_nodes(&self, u: NodeId, v: NodeId) -> Result<(), DeltaError> {
        let n = self.num_nodes();
        for node in [u, v] {
            if node as usize >= n {
                return Err(DeltaError::NodeOutOfRange { node, n });
            }
        }
        Ok(())
    }

    fn overlay_state(&self, u: NodeId, v: NodeId) -> Option<ArcState> {
        let row = &self.overlay[u as usize];
        row.binary_search_by_key(&v, |&(t, _)| t)
            .ok()
            .map(|i| row[i].1)
    }

    fn set_state(&mut self, u: NodeId, v: NodeId, state: ArcState) {
        let base_has = self.base.has_edge(u, v);
        let row = &mut self.overlay[u as usize];
        match row.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(i) => {
                // A no-op override (deleting an arc the base lacks, or
                // restoring a base arc's own weight) could be dropped, but
                // keeping it is simpler and compaction handles both.
                if !base_has && state == ArcState::Absent {
                    row.remove(i);
                    self.overlay_arcs -= 1;
                } else {
                    row[i].1 = state;
                }
            }
            Err(i) => {
                if state != ArcState::Absent || base_has {
                    row.insert(i, (v, state));
                    self.overlay_arcs += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Rebuild a graph equal to `delta`'s current state from scratch via
    /// [`GraphBuilder`] — the slow O(n²) reference path pinning
    /// [`GraphDelta::compact`].
    fn rebuild_reference(delta: &GraphDelta) -> Graph {
        let n = delta.num_nodes();
        let mut b = if delta.is_directed() {
            GraphBuilder::new_directed(n)
        } else {
            GraphBuilder::new_undirected(n)
        };
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if delta.is_directed() || u <= v {
                    let w = delta.weight(u, v);
                    if delta.has_edge(u, v) {
                        b.add_edge(u, v, w);
                    }
                }
            }
        }
        b.build()
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn insert_delete_reweight_round_trip() {
        let mut d = GraphDelta::new(triangle());
        assert_eq!(d.num_edges(), 3);
        d.insert_edge(0, 3, 4.0).unwrap();
        assert!(d.has_edge(0, 3));
        assert!(d.has_edge(3, 0), "undirected insert mirrors");
        assert_eq!(d.weight(3, 0), 4.0);
        assert_eq!(d.num_edges(), 4);
        d.reweight_edge(1, 2, 5.0).unwrap();
        assert_eq!(d.weight(2, 1), 5.0);
        d.delete_edge(0, 1).unwrap();
        assert!(!d.has_edge(1, 0));
        assert_eq!(d.num_edges(), 3);
        let events = d.drain_events();
        assert_eq!(
            events,
            vec![
                EdgeEvent {
                    source: 0,
                    target: 3,
                    delta: 4.0
                },
                EdgeEvent {
                    source: 1,
                    target: 2,
                    delta: 3.0
                },
                EdgeEvent {
                    source: 0,
                    target: 1,
                    delta: -1.0
                },
            ]
        );
        assert_eq!(d.pending_events(), 0);
    }

    #[test]
    fn policy_errors() {
        let mut d = GraphDelta::new(triangle());
        assert_eq!(
            d.insert_edge(0, 1, 1.0),
            Err(DeltaError::EdgeExists {
                source: 0,
                target: 1
            })
        );
        assert_eq!(
            d.delete_edge(0, 3),
            Err(DeltaError::NoSuchEdge {
                source: 0,
                target: 3
            })
        );
        assert_eq!(
            d.reweight_edge(0, 3, 2.0),
            Err(DeltaError::NoSuchEdge {
                source: 0,
                target: 3
            })
        );
        assert_eq!(
            d.insert_edge(0, 3, 0.0),
            Err(DeltaError::InvalidWeight { weight: 0.0 })
        );
        assert!(matches!(
            d.insert_edge(0, 3, f64::NAN),
            Err(DeltaError::InvalidWeight { .. })
        ));
        assert_eq!(
            d.insert_edge(0, 9, 1.0),
            Err(DeltaError::NodeOutOfRange { node: 9, n: 4 })
        );
        assert!(
            d.drain_events().is_empty(),
            "failed mutations record nothing"
        );
    }

    #[test]
    fn reweight_to_same_value_records_no_event() {
        let mut d = GraphDelta::new(triangle());
        d.reweight_edge(0, 1, 1.0).unwrap();
        assert!(d.drain_events().is_empty());
    }

    #[test]
    fn compact_matches_reference_rebuild() {
        let mut d = GraphDelta::new(triangle());
        d.insert_edge(3, 1, 2.5).unwrap();
        d.delete_edge(2, 0).unwrap();
        d.reweight_edge(0, 1, 7.0).unwrap();
        d.insert_edge(3, 3, 1.5).unwrap(); // self-loop
        let reference = rebuild_reference(&d);
        let compacted = d.compact();
        assert_eq!(d.overlay_arcs(), 0);
        assert_eq!(compacted.num_nodes(), reference.num_nodes());
        assert_eq!(compacted.num_edges(), reference.num_edges());
        assert_eq!(compacted.num_arcs(), reference.num_arcs());
        let a: Vec<_> = compacted.arcs().collect();
        let b: Vec<_> = reference.arcs().collect();
        assert_eq!(a, b);
        // In-adjacency too (from_row_adjacency builds it independently).
        for v in compacted.nodes() {
            let ca: Vec<_> = compacted.in_edges(v).collect();
            let ra: Vec<_> = reference.in_edges(v).collect();
            assert_eq!(ca, ra, "in-arcs of {v}");
        }
        // The delta stays usable after compaction.
        d.insert_edge(2, 0, 1.0).unwrap();
        assert!(d.has_edge(0, 2));
    }

    #[test]
    fn insert_after_delete_of_base_arc() {
        let mut d = GraphDelta::new(triangle());
        d.delete_edge(0, 1).unwrap();
        d.insert_edge(0, 1, 9.0).unwrap();
        assert_eq!(d.weight(0, 1), 9.0);
        assert_eq!(d.num_edges(), 3);
        let g = d.compact();
        assert_eq!(g.weight(1, 0), 9.0);
    }

    #[test]
    fn directed_delta_does_not_mirror() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        let mut d = GraphDelta::new(b.build());
        d.insert_edge(1, 2, 2.0).unwrap();
        assert!(d.has_edge(1, 2));
        assert!(!d.has_edge(2, 1));
        d.delete_edge(0, 1).unwrap();
        assert_eq!(d.num_edges(), 1);
        let g = d.compact();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(1, 2), 2.0);
    }

    #[test]
    fn compact_without_changes_is_identity() {
        let g = triangle();
        let mut d = GraphDelta::new(g.clone());
        let c = d.compact();
        assert_eq!(c.num_edges(), g.num_edges());
        let a: Vec<_> = c.arcs().collect();
        let b: Vec<_> = g.arcs().collect();
        assert_eq!(a, b);
    }
}
