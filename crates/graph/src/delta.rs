//! A mutable delta layer over the immutable CSR [`Graph`].
//!
//! The coloring pipeline's graphs are CSR-immutable by design (every hot
//! loop reads raw adjacency arrays), but the dynamic-graph maintenance path
//! needs edge churn: live traffic inserts, deletes and reweights edges while
//! downstream consumers (`qsc_core`'s incremental engine, the reduced
//! quotient matrix, a running `RothkoRun`) patch their state per batch
//! instead of rebuilding. [`GraphDelta`] provides that layer:
//!
//! * **Batched mutations.** [`GraphDelta::insert_edge`],
//!   [`GraphDelta::delete_edge`] and [`GraphDelta::reweight_edge`] record a
//!   per-node sorted *overlay* over the base CSR (current-weight overrides,
//!   `O(log deg)` per lookup) and append one [`EdgeEvent`] per logical edge
//!   change to the pending batch. Point queries ([`GraphDelta::weight`],
//!   [`GraphDelta::has_edge`], [`GraphDelta::num_edges`]) see the merged
//!   view immediately.
//! * **Event hand-off.** [`GraphDelta::drain_events`] takes the pending
//!   batch. An [`EdgeEvent`] is a *signed weight change* of one logical
//!   edge — `+w` for an insert, `-w_old` for a delete, `new − old` for a
//!   reweight — which is exactly the currency the incremental consumers
//!   patch their accumulators with (`IncrementalDegrees::apply_edge_batch`,
//!   `ReducedDelta::apply_edge_batch`).
//! * **Periodic compaction.** [`GraphDelta::compact`] folds the overlay
//!   back into a fresh CSR [`Graph`] in `O(n + m + overlay)` (no sort — the
//!   overlay is kept in neighbor order) and resets the overlay. Callers
//!   compact when they need raw adjacency again (the refinement engine's
//!   split path scans CSR arrays) or when the overlay grows past a
//!   fraction of the arc count ([`GraphDelta::overlay_arcs`]).
//!
//! # Edge policy
//!
//! The delta layer is stricter than [`crate::GraphBuilder`] (which merges
//! duplicates by summing): inserting an edge that already exists is an
//! error ([`DeltaError::EdgeExists`]) — use
//! [`GraphDelta::reweight_edge`] — and deleting or reweighting an absent
//! edge is an error ([`DeltaError::NoSuchEdge`]). Self-loops are legal and
//! count as one logical edge (stored as a single arc, exactly like the CSR
//! convention). On undirected graphs an edge `{u, v}` is one logical edge;
//! its event carries the endpoints once and consumers apply it to both arc
//! directions. Weights must be finite ([`DeltaError::InvalidWeight`]);
//! inserting with weight `0.0` is rejected (a zero-weight edge is
//! indistinguishable from an absent one for every consumer), while
//! reweighting *to* `0.0` is expressed as a delete.
//!
//! # Node churn
//!
//! The delta layer also absorbs *node* insertions and removals — the other
//! half of the bidirectional event vocabulary:
//!
//! * [`GraphDelta::insert_node`] appends a fresh isolated node at the next
//!   id (`num_nodes()` grows; the node has no arcs until edges are
//!   inserted) and records a [`NodeEvent::Insert`].
//! * [`GraphDelta::remove_node`] first deletes every live incident edge —
//!   each emitting its ordinary [`EdgeEvent`] delete, a self-loop exactly
//!   once — then marks the node dead and records a [`NodeEvent::Remove`].
//!   Dead ids stay allocated (queries treat them as isolated and further
//!   mutations on them error with [`DeltaError::NodeRemoved`]) until the
//!   next compaction.
//! * [`GraphDelta::compact_renumber`] folds the overlay into a fresh CSR
//!   *and* renumbers: dead ids are dropped, survivors keep their relative
//!   order, and the returned [`NodeRemap`] maps old ids to new ones so
//!   consumers (partitions, accumulator engines) can compact their own
//!   node-indexed state in lockstep. [`GraphDelta::compact`] keeps its
//!   original contract — it panics if node churn is pending, directing
//!   callers to the renumbering variant.
//!
//! The event ordering contract consumers rely on: within one batch, node
//! inserts land first (they only grow the id space), edge events apply in
//! mutation order over the grown pre-compaction id space, and node
//! removals land last (by then their incident edges are already deleted,
//! so only isolated nodes are ever removed).

use crate::csr::{Graph, NodeId};

/// One logical node change, the node-axis companion of [`EdgeEvent`].
/// Removals are always preceded (in the edge-event stream) by deletes of
/// the node's incident edges, so consumers only ever remove isolated
/// nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeEvent {
    /// A fresh isolated node appended at this id.
    Insert {
        /// The new node's (pre-compaction) id.
        node: NodeId,
    },
    /// This node was removed (after its incident edges were deleted).
    Remove {
        /// The removed node's (pre-compaction) id.
        node: NodeId,
    },
}

/// The old-id → new-id mapping produced by [`GraphDelta::compact_renumber`]:
/// dead ids are dropped, survivors keep their relative order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeRemap {
    /// `old_to_new[v] == NodeId::MAX` iff `v` was removed.
    old_to_new: Vec<NodeId>,
    new_len: usize,
}

impl NodeRemap {
    /// Identity remap over `n` nodes (no removals, no renumbering).
    pub fn identity(n: usize) -> Self {
        NodeRemap {
            old_to_new: (0..n as NodeId).collect(),
            new_len: n,
        }
    }

    /// Number of node ids before the renumbering.
    #[inline]
    pub fn old_len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Number of node ids after the renumbering.
    #[inline]
    pub fn new_len(&self) -> usize {
        self.new_len
    }

    /// The new id of old node `v`, or `None` if it was removed.
    #[inline]
    pub fn map(&self, v: NodeId) -> Option<NodeId> {
        let m = self.old_to_new[v as usize];
        (m != NodeId::MAX).then_some(m)
    }

    /// Whether old node `v` was removed.
    #[inline]
    pub fn is_removed(&self, v: NodeId) -> bool {
        self.old_to_new[v as usize] == NodeId::MAX
    }

    /// Whether the remap is the identity (no removals and no growth — the
    /// "compacting an unchanged node set" fast path).
    pub fn is_identity(&self) -> bool {
        self.new_len == self.old_to_new.len()
    }

    /// The removed old ids, ascending.
    pub fn removed_old_ids(&self) -> Vec<NodeId> {
        self.old_to_new
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == NodeId::MAX)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// One logical-edge weight change: the currency of the dynamic-graph
/// maintenance path. `delta` is the signed change (`new − old`), so
/// inserts carry `+w`, deletes `-w_old`, and reweights the difference.
///
/// For undirected graphs the event names the endpoints once (in the order
/// the mutation was issued); consumers apply it to both stored arc
/// directions themselves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeEvent {
    /// Arc source (one endpoint for undirected graphs).
    pub source: NodeId,
    /// Arc target (the other endpoint for undirected graphs).
    pub target: NodeId,
    /// Signed weight change of the logical edge.
    pub delta: f64,
}

/// Errors from delta-layer mutations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaError {
    /// An endpoint was `>= num_nodes()`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// `insert_edge` on an edge that already exists (use `reweight_edge`).
    EdgeExists { source: NodeId, target: NodeId },
    /// `delete_edge`/`reweight_edge` on an edge that does not exist.
    NoSuchEdge { source: NodeId, target: NodeId },
    /// A non-finite weight, or an insert/reweight to exactly `0.0`.
    InvalidWeight { weight: f64 },
    /// An operation referenced a node already removed in this delta (dead
    /// ids stay allocated until the next [`GraphDelta::compact_renumber`]).
    NodeRemoved { node: NodeId },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::NodeOutOfRange { node, n } => {
                write!(f, "node id {node} out of range for graph with {n} nodes")
            }
            DeltaError::EdgeExists { source, target } => {
                write!(f, "edge ({source}, {target}) already exists")
            }
            DeltaError::NoSuchEdge { source, target } => {
                write!(f, "edge ({source}, {target}) does not exist")
            }
            DeltaError::InvalidWeight { weight } => {
                write!(f, "invalid edge weight {weight}")
            }
            DeltaError::NodeRemoved { node } => {
                write!(f, "node id {node} was removed in this delta")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Current state of one overlaid arc: a weight override or an explicit
/// deletion of a base arc.
#[derive(Clone, Copy, Debug, PartialEq)]
enum ArcState {
    Present(f64),
    Absent,
}

/// A mutable batched delta over an immutable CSR base graph. See the
/// module docs for the design and the edge policy.
#[derive(Clone, Debug)]
pub struct GraphDelta {
    base: Graph,
    /// Per-node overlay of `(neighbor, state)` overrides of the base
    /// out-adjacency, sorted by neighbor. Undirected edges keep an entry in
    /// both endpoints' rows (one for self-loops), mirroring the CSR's
    /// symmetric-arc storage. Rows beyond the base node count belong to
    /// nodes inserted since the last compaction (their whole adjacency
    /// lives in the overlay).
    overlay: Vec<Vec<(NodeId, ArcState)>>,
    /// Per-node dead flag: removed ids stay allocated until the next
    /// [`Self::compact_renumber`].
    dead: Vec<bool>,
    /// Number of dead ids (node-churn signal for the compaction policy).
    removed_nodes: usize,
    /// Nodes appended since the last compaction.
    inserted_nodes: usize,
    /// Pending logical-edge events since the last [`Self::drain_events`].
    events: Vec<EdgeEvent>,
    /// Pending node events since the last [`Self::drain_node_events`].
    node_events: Vec<NodeEvent>,
    /// Current logical edge count (arcs for directed, edges for
    /// undirected).
    num_edges: usize,
    /// Number of overlay entries (compaction-policy signal).
    overlay_arcs: usize,
}

impl GraphDelta {
    /// Wrap a base graph with an empty overlay.
    pub fn new(base: Graph) -> Self {
        let n = base.num_nodes();
        let num_edges = base.num_edges();
        GraphDelta {
            base,
            overlay: vec![Vec::new(); n],
            dead: vec![false; n],
            removed_nodes: 0,
            inserted_nodes: 0,
            events: Vec::new(),
            node_events: Vec::new(),
            num_edges,
            overlay_arcs: 0,
        }
    }

    /// Size of the node *id space*: every id in `0..num_nodes()` is
    /// addressable, including ids removed since the last compaction (those
    /// behave as isolated nodes for queries and reject mutations). Use
    /// [`Self::num_live_nodes`] for the live count.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.overlay.len()
    }

    /// Number of live (non-removed) nodes.
    #[inline]
    pub fn num_live_nodes(&self) -> usize {
        self.overlay.len() - self.removed_nodes
    }

    /// Whether node id `v` is live (in range and not removed).
    #[inline]
    pub fn is_live(&self, v: NodeId) -> bool {
        (v as usize) < self.overlay.len() && !self.dead[v as usize]
    }

    /// Whether any node insertions or removals are pending (requiring
    /// [`Self::compact_renumber`] rather than [`Self::compact`]).
    #[inline]
    pub fn node_churn_pending(&self) -> bool {
        self.inserted_nodes > 0 || self.removed_nodes > 0
    }

    /// Current number of logical edges (insertions minus deletions applied
    /// to the base count).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the base graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.base.is_directed()
    }

    /// The base graph the overlay applies to (the state as of the last
    /// compaction).
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Number of overlay entries not yet folded into the CSR. Callers use
    /// this to decide when a [`Self::compact`] pays for itself.
    #[inline]
    pub fn overlay_arcs(&self) -> usize {
        self.overlay_arcs
    }

    /// Number of pending (undrained) events.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Current weight of the arc `(u, v)` (`0.0` when absent), overlay
    /// included. `O(log deg)`.
    pub fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        match self.overlay_state(u, v) {
            Some(ArcState::Present(w)) => w,
            Some(ArcState::Absent) => 0.0,
            None => self.base_weight(u, v),
        }
    }

    /// Whether the arc `(u, v)` currently exists, overlay included.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.overlay_state(u, v) {
            Some(ArcState::Present(_)) => true,
            Some(ArcState::Absent) => false,
            None => self.base_has(u, v),
        }
    }

    /// Insert the edge `(u, v)` with the given weight. Errors if the edge
    /// already exists, an endpoint is out of range, or the weight is
    /// non-finite or exactly zero. Records one [`EdgeEvent`] with
    /// `delta = weight`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !weight.is_finite() || weight == 0.0 {
            return Err(DeltaError::InvalidWeight { weight });
        }
        if self.has_edge(u, v) {
            return Err(DeltaError::EdgeExists {
                source: u,
                target: v,
            });
        }
        self.set_state(u, v, ArcState::Present(weight));
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Present(weight));
        }
        self.num_edges += 1;
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: weight,
        });
        Ok(())
    }

    /// Delete the edge `(u, v)`. Errors if it does not exist. Records one
    /// [`EdgeEvent`] with `delta = -old_weight`.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !self.has_edge(u, v) {
            return Err(DeltaError::NoSuchEdge {
                source: u,
                target: v,
            });
        }
        let old = self.weight(u, v);
        self.set_state(u, v, ArcState::Absent);
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Absent);
        }
        self.num_edges -= 1;
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: -old,
        });
        Ok(())
    }

    /// Change the weight of the existing edge `(u, v)` to `weight`. Errors
    /// if the edge does not exist or the weight is non-finite or exactly
    /// zero (delete instead). Records one [`EdgeEvent`] with
    /// `delta = weight - old` (skipped entirely when the weight is
    /// unchanged).
    pub fn reweight_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> Result<(), DeltaError> {
        self.check_nodes(u, v)?;
        if !weight.is_finite() || weight == 0.0 {
            return Err(DeltaError::InvalidWeight { weight });
        }
        if !self.has_edge(u, v) {
            return Err(DeltaError::NoSuchEdge {
                source: u,
                target: v,
            });
        }
        let old = self.weight(u, v);
        if old == weight {
            return Ok(());
        }
        self.set_state(u, v, ArcState::Present(weight));
        if !self.is_directed() && u != v {
            self.set_state(v, u, ArcState::Present(weight));
        }
        self.events.push(EdgeEvent {
            source: u,
            target: v,
            delta: weight - old,
        });
        Ok(())
    }

    /// Append a fresh isolated node at the next id and return it. The node
    /// has no arcs until edges are inserted; records one
    /// [`NodeEvent::Insert`].
    pub fn insert_node(&mut self) -> NodeId {
        let id = self.overlay.len() as NodeId;
        self.overlay.push(Vec::new());
        self.dead.push(false);
        self.inserted_nodes += 1;
        self.node_events.push(NodeEvent::Insert { node: id });
        id
    }

    /// Remove node `v`: delete every live incident edge (each emitting its
    /// ordinary [`EdgeEvent`] delete — a self-loop exactly once), then mark
    /// the id dead and record a [`NodeEvent::Remove`]. The id stays
    /// allocated (isolated, rejecting further mutations) until the next
    /// [`Self::compact_renumber`].
    pub fn remove_node(&mut self, v: NodeId) -> Result<(), DeltaError> {
        self.check_node(v)?;
        // Outgoing (for undirected graphs this covers every incident edge:
        // the mirror arcs live in v's own row).
        let out: Vec<NodeId> = self.live_out_neighbors(v);
        for t in out {
            self.delete_edge(v, t)?;
        }
        if self.is_directed() {
            let inc: Vec<NodeId> = self.live_in_neighbors(v);
            for s in inc {
                if s != v {
                    self.delete_edge(s, v)?;
                }
            }
        }
        self.dead[v as usize] = true;
        self.removed_nodes += 1;
        self.node_events.push(NodeEvent::Remove { node: v });
        Ok(())
    }

    /// Take the pending event batch (in mutation order), leaving the delta
    /// ready to accumulate the next one.
    pub fn drain_events(&mut self) -> Vec<EdgeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Take the pending node-event batch (in mutation order).
    pub fn drain_node_events(&mut self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.node_events)
    }

    /// Number of pending (undrained) node events.
    #[inline]
    pub fn pending_node_events(&self) -> usize {
        self.node_events.len()
    }

    /// Fold the overlay into a fresh CSR graph, reset the overlay, and
    /// return a clone of the new base (the delta keeps the other copy and
    /// stays usable for further batches). `O(n + m + overlay)`; no sorting
    /// — both the base arcs and the overlay rows are in neighbor order.
    ///
    /// Pending events are *not* drained: compaction changes the
    /// representation, not the mutation history. Panics if node churn is
    /// pending — use [`Self::compact_renumber`], which also renumbers the
    /// node ids.
    pub fn compact(&mut self) -> Graph {
        assert!(
            !self.node_churn_pending(),
            "node insertions/removals pending; use compact_renumber"
        );
        if self.overlay_arcs > 0 {
            // Build the new out-CSR directly: rows without overlay entries
            // (the overwhelming majority after a small batch) are bulk
            // span copies from the old CSR; only touched rows pay the
            // merge. `Graph::from_out_csr` then derives the in direction
            // bit-identically to the row-by-row reference rebuild.
            let n = self.num_nodes();
            let arc_cap = self.base.num_arcs() + self.overlay_arcs;
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut targets: Vec<NodeId> = Vec::with_capacity(arc_cap);
            let mut weights: Vec<f64> = Vec::with_capacity(arc_cap);
            for u in 0..n {
                let (base_ts, base_ws) = self.base.out_arcs(u as NodeId);
                let over = &self.overlay[u];
                if over.is_empty() {
                    targets.extend_from_slice(base_ts);
                    weights.extend_from_slice(base_ws);
                } else {
                    // Same merge as `live_row`, writing in place.
                    let mut oi = 0usize;
                    let push_over =
                        |targets: &mut Vec<NodeId>, weights: &mut Vec<f64>, oi: &mut usize| {
                            if let (v, ArcState::Present(w)) = over[*oi] {
                                targets.push(v);
                                weights.push(w);
                            }
                            *oi += 1;
                        };
                    for (idx, &t) in base_ts.iter().enumerate() {
                        while oi < over.len() && over[oi].0 < t {
                            push_over(&mut targets, &mut weights, &mut oi);
                        }
                        if oi < over.len() && over[oi].0 == t {
                            push_over(&mut targets, &mut weights, &mut oi);
                        } else {
                            targets.push(t);
                            weights.push(base_ws[idx]);
                        }
                    }
                    while oi < over.len() {
                        push_over(&mut targets, &mut weights, &mut oi);
                    }
                }
                offsets.push(targets.len());
            }
            self.base = Graph::from_out_csr(n, self.is_directed(), offsets, targets, weights);
            for row in &mut self.overlay {
                row.clear();
            }
            self.overlay_arcs = 0;
        }
        debug_assert_eq!(self.base.num_edges(), self.num_edges);
        self.base.clone()
    }

    /// Fold the overlay into a fresh CSR graph *renumbering the node ids*:
    /// dead ids are dropped, survivors keep their relative order (and new
    /// nodes their appended positions). Returns the compacted graph and the
    /// [`NodeRemap`] consumers need to compact their own node-indexed
    /// state. The delta continues from the new id space. `O(n + m +
    /// overlay)`; with no node churn pending this equals [`Self::compact`]
    /// plus an identity remap.
    pub fn compact_renumber(&mut self) -> (Graph, NodeRemap) {
        let total = self.num_nodes();
        let mut old_to_new = vec![NodeId::MAX; total];
        let mut next = 0u32;
        for (v, &dead) in self.dead.iter().enumerate() {
            if !dead {
                old_to_new[v] = next;
                next += 1;
            }
        }
        let new_n = next as usize;
        let remap = NodeRemap {
            old_to_new,
            new_len: new_n,
        };
        if self.node_churn_pending() || self.overlay_arcs > 0 {
            let mut rows: Vec<Vec<(NodeId, f64)>> = Vec::with_capacity(new_n);
            for u in 0..total as NodeId {
                if self.dead[u as usize] {
                    continue;
                }
                rows.push(self.live_row(u, Some(&remap)));
            }
            self.base = Graph::from_row_adjacency(new_n, self.is_directed(), &rows);
            self.overlay.clear();
            self.overlay.resize(new_n, Vec::new());
            self.dead.clear();
            self.dead.resize(new_n, false);
            self.overlay_arcs = 0;
            self.inserted_nodes = 0;
            self.removed_nodes = 0;
        }
        debug_assert_eq!(self.base.num_edges(), self.num_edges);
        (self.base.clone(), remap)
    }

    // ---- internals ----

    /// Guarded base-arc weight: nodes appended since the last compaction
    /// have no base arcs.
    #[inline]
    fn base_weight(&self, u: NodeId, v: NodeId) -> f64 {
        let n = self.base.num_nodes();
        if (u as usize) < n && (v as usize) < n {
            self.base.weight(u, v)
        } else {
            0.0
        }
    }

    /// Guarded base-arc membership; see [`Self::base_weight`].
    #[inline]
    fn base_has(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.base.num_nodes();
        (u as usize) < n && (v as usize) < n && self.base.has_edge(u, v)
    }

    /// The merged (base + overlay) out-row of live node `u`, in neighbor
    /// order, optionally renumbered through `remap` (which must keep every
    /// live target; relative order is preserved, so the row stays sorted).
    fn live_row(&self, u: NodeId, remap: Option<&NodeRemap>) -> Vec<(NodeId, f64)> {
        let (targets, weights) = if (u as usize) < self.base.num_nodes() {
            self.base.out_arcs(u)
        } else {
            (&[][..], &[][..])
        };
        let over = &self.overlay[u as usize];
        let mut row = Vec::with_capacity(targets.len() + over.len());
        let mut push = |v: NodeId, w: f64| {
            let v = match remap {
                Some(r) => r.map(v).expect("live row targets a removed node"),
                None => v,
            };
            row.push((v, w));
        };
        let mut oi = 0usize;
        for (idx, &t) in targets.iter().enumerate() {
            while oi < over.len() && over[oi].0 < t {
                if let (v, ArcState::Present(w)) = over[oi] {
                    push(v, w);
                }
                oi += 1;
            }
            if oi < over.len() && over[oi].0 == t {
                if let (v, ArcState::Present(w)) = over[oi] {
                    push(v, w);
                }
                oi += 1;
            } else {
                push(t, weights[idx]);
            }
        }
        while oi < over.len() {
            if let (v, ArcState::Present(w)) = over[oi] {
                push(v, w);
            }
            oi += 1;
        }
        row
    }

    /// Live out-neighbors of `v` (merged view), in neighbor order.
    fn live_out_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        self.live_row(v, None).into_iter().map(|(t, _)| t).collect()
    }

    /// Live in-neighbors of `v`: base in-arcs still live, plus
    /// overlay-inserted arcs found by scanning the overlay rows
    /// (`O(n + overlay)` — node removal is a rare, batched operation).
    fn live_in_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut sources = Vec::new();
        if (v as usize) < self.base.num_nodes() {
            let (base_srcs, _) = self.base.in_arcs(v);
            for &s in base_srcs {
                if self.has_edge(s, v) {
                    sources.push(s);
                }
            }
        }
        for (s, row) in self.overlay.iter().enumerate() {
            if let Ok(i) = row.binary_search_by_key(&v, |&(t, _)| t) {
                if matches!(row[i].1, ArcState::Present(_)) && !self.base_has(s as NodeId, v) {
                    sources.push(s as NodeId);
                }
            }
        }
        sources
    }

    fn check_node(&self, v: NodeId) -> Result<(), DeltaError> {
        let n = self.num_nodes();
        if v as usize >= n {
            return Err(DeltaError::NodeOutOfRange { node: v, n });
        }
        if self.dead[v as usize] {
            return Err(DeltaError::NodeRemoved { node: v });
        }
        Ok(())
    }

    fn check_nodes(&self, u: NodeId, v: NodeId) -> Result<(), DeltaError> {
        self.check_node(u)?;
        self.check_node(v)
    }

    fn overlay_state(&self, u: NodeId, v: NodeId) -> Option<ArcState> {
        let row = &self.overlay[u as usize];
        row.binary_search_by_key(&v, |&(t, _)| t)
            .ok()
            .map(|i| row[i].1)
    }

    fn set_state(&mut self, u: NodeId, v: NodeId, state: ArcState) {
        let base_has = self.base_has(u, v);
        let row = &mut self.overlay[u as usize];
        match row.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(i) => {
                // A no-op override (deleting an arc the base lacks, or
                // restoring a base arc's own weight) could be dropped, but
                // keeping it is simpler and compaction handles both.
                if !base_has && state == ArcState::Absent {
                    row.remove(i);
                    self.overlay_arcs -= 1;
                } else {
                    row[i].1 = state;
                }
            }
            Err(i) => {
                if state != ArcState::Absent || base_has {
                    row.insert(i, (v, state));
                    self.overlay_arcs += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Rebuild a graph equal to `delta`'s current state from scratch via
    /// [`GraphBuilder`] — the slow O(n²) reference path pinning
    /// [`GraphDelta::compact`].
    fn rebuild_reference(delta: &GraphDelta) -> Graph {
        let n = delta.num_nodes();
        let mut b = if delta.is_directed() {
            GraphBuilder::new_directed(n)
        } else {
            GraphBuilder::new_undirected(n)
        };
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if delta.is_directed() || u <= v {
                    let w = delta.weight(u, v);
                    if delta.has_edge(u, v) {
                        b.add_edge(u, v, w);
                    }
                }
            }
        }
        b.build()
    }

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn insert_delete_reweight_round_trip() {
        let mut d = GraphDelta::new(triangle());
        assert_eq!(d.num_edges(), 3);
        d.insert_edge(0, 3, 4.0).unwrap();
        assert!(d.has_edge(0, 3));
        assert!(d.has_edge(3, 0), "undirected insert mirrors");
        assert_eq!(d.weight(3, 0), 4.0);
        assert_eq!(d.num_edges(), 4);
        d.reweight_edge(1, 2, 5.0).unwrap();
        assert_eq!(d.weight(2, 1), 5.0);
        d.delete_edge(0, 1).unwrap();
        assert!(!d.has_edge(1, 0));
        assert_eq!(d.num_edges(), 3);
        let events = d.drain_events();
        assert_eq!(
            events,
            vec![
                EdgeEvent {
                    source: 0,
                    target: 3,
                    delta: 4.0
                },
                EdgeEvent {
                    source: 1,
                    target: 2,
                    delta: 3.0
                },
                EdgeEvent {
                    source: 0,
                    target: 1,
                    delta: -1.0
                },
            ]
        );
        assert_eq!(d.pending_events(), 0);
    }

    #[test]
    fn policy_errors() {
        let mut d = GraphDelta::new(triangle());
        assert_eq!(
            d.insert_edge(0, 1, 1.0),
            Err(DeltaError::EdgeExists {
                source: 0,
                target: 1
            })
        );
        assert_eq!(
            d.delete_edge(0, 3),
            Err(DeltaError::NoSuchEdge {
                source: 0,
                target: 3
            })
        );
        assert_eq!(
            d.reweight_edge(0, 3, 2.0),
            Err(DeltaError::NoSuchEdge {
                source: 0,
                target: 3
            })
        );
        assert_eq!(
            d.insert_edge(0, 3, 0.0),
            Err(DeltaError::InvalidWeight { weight: 0.0 })
        );
        assert!(matches!(
            d.insert_edge(0, 3, f64::NAN),
            Err(DeltaError::InvalidWeight { .. })
        ));
        assert_eq!(
            d.insert_edge(0, 9, 1.0),
            Err(DeltaError::NodeOutOfRange { node: 9, n: 4 })
        );
        assert!(
            d.drain_events().is_empty(),
            "failed mutations record nothing"
        );
    }

    #[test]
    fn reweight_to_same_value_records_no_event() {
        let mut d = GraphDelta::new(triangle());
        d.reweight_edge(0, 1, 1.0).unwrap();
        assert!(d.drain_events().is_empty());
    }

    #[test]
    fn compact_matches_reference_rebuild() {
        let mut d = GraphDelta::new(triangle());
        d.insert_edge(3, 1, 2.5).unwrap();
        d.delete_edge(2, 0).unwrap();
        d.reweight_edge(0, 1, 7.0).unwrap();
        d.insert_edge(3, 3, 1.5).unwrap(); // self-loop
        let reference = rebuild_reference(&d);
        let compacted = d.compact();
        assert_eq!(d.overlay_arcs(), 0);
        assert_eq!(compacted.num_nodes(), reference.num_nodes());
        assert_eq!(compacted.num_edges(), reference.num_edges());
        assert_eq!(compacted.num_arcs(), reference.num_arcs());
        let a: Vec<_> = compacted.arcs().collect();
        let b: Vec<_> = reference.arcs().collect();
        assert_eq!(a, b);
        // In-adjacency too (from_row_adjacency builds it independently).
        for v in compacted.nodes() {
            let ca: Vec<_> = compacted.in_edges(v).collect();
            let ra: Vec<_> = reference.in_edges(v).collect();
            assert_eq!(ca, ra, "in-arcs of {v}");
        }
        // The delta stays usable after compaction.
        d.insert_edge(2, 0, 1.0).unwrap();
        assert!(d.has_edge(0, 2));
    }

    #[test]
    fn insert_after_delete_of_base_arc() {
        let mut d = GraphDelta::new(triangle());
        d.delete_edge(0, 1).unwrap();
        d.insert_edge(0, 1, 9.0).unwrap();
        assert_eq!(d.weight(0, 1), 9.0);
        assert_eq!(d.num_edges(), 3);
        let g = d.compact();
        assert_eq!(g.weight(1, 0), 9.0);
    }

    #[test]
    fn directed_delta_does_not_mirror() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        let mut d = GraphDelta::new(b.build());
        d.insert_edge(1, 2, 2.0).unwrap();
        assert!(d.has_edge(1, 2));
        assert!(!d.has_edge(2, 1));
        d.delete_edge(0, 1).unwrap();
        assert_eq!(d.num_edges(), 1);
        let g = d.compact();
        assert!(g.is_directed());
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(1, 2), 2.0);
    }

    #[test]
    fn compact_without_changes_is_identity() {
        let g = triangle();
        let mut d = GraphDelta::new(g.clone());
        let c = d.compact();
        assert_eq!(c.num_edges(), g.num_edges());
        let a: Vec<_> = c.arcs().collect();
        let b: Vec<_> = g.arcs().collect();
        assert_eq!(a, b);
        // The renumbering variant on an unchanged node set is the identity
        // (empty overlay included).
        let (c2, remap) = d.compact_renumber();
        assert!(remap.is_identity());
        assert_eq!(remap.map(2), Some(2));
        let a2: Vec<_> = c2.arcs().collect();
        assert_eq!(a2, b);
    }

    #[test]
    fn delete_then_reinsert_in_one_batch() {
        // Both mutations land in the same event batch: the delete's -w and
        // the reinsert's +w' must both be visible (consumers fold them per
        // (node, column) themselves).
        let mut d = GraphDelta::new(triangle());
        d.delete_edge(0, 1).unwrap();
        d.insert_edge(0, 1, 6.0).unwrap();
        assert_eq!(d.weight(0, 1), 6.0);
        assert_eq!(d.num_edges(), 3);
        let events = d.drain_events();
        assert_eq!(
            events,
            vec![
                EdgeEvent {
                    source: 0,
                    target: 1,
                    delta: -1.0
                },
                EdgeEvent {
                    source: 0,
                    target: 1,
                    delta: 6.0
                },
            ]
        );
        let g = d.compact();
        assert_eq!(g.weight(1, 0), 6.0);
    }

    #[test]
    fn removing_a_nodes_last_edge_leaves_it_isolated() {
        // Node 3 gains one edge, loses it again: it stays a live, isolated
        // node (still addressable, still compactable without renumbering).
        let mut d = GraphDelta::new(triangle());
        d.insert_edge(0, 3, 2.0).unwrap();
        d.delete_edge(3, 0).unwrap(); // mirror id order: same logical edge
        assert!(d.is_live(3));
        assert!(!d.has_edge(0, 3));
        assert_eq!(d.num_edges(), 3);
        let g = d.compact();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn node_insert_remove_round_trip() {
        let mut d = GraphDelta::new(triangle());
        let v = d.insert_node();
        assert_eq!(v, 4);
        assert_eq!(d.num_nodes(), 5);
        assert_eq!(d.num_live_nodes(), 5);
        d.insert_edge(v, 0, 2.0).unwrap();
        d.insert_edge(v, 2, 3.0).unwrap();
        // Removing v deletes its incident edges first (two EdgeEvents),
        // then the node itself.
        d.remove_node(v).unwrap();
        assert!(!d.is_live(v));
        assert_eq!(d.num_live_nodes(), 4);
        assert_eq!(d.num_edges(), 3);
        let events = d.drain_events();
        assert_eq!(events.len(), 4, "2 inserts + 2 removal-driven deletes");
        assert_eq!(events[2].delta, -2.0);
        assert_eq!(events[3].delta, -3.0);
        assert_eq!(
            d.drain_node_events(),
            vec![NodeEvent::Insert { node: 4 }, NodeEvent::Remove { node: 4 }]
        );
        // Mutations on the dead id are rejected.
        assert_eq!(
            d.insert_edge(v, 1, 1.0),
            Err(DeltaError::NodeRemoved { node: v })
        );
        assert_eq!(d.remove_node(v), Err(DeltaError::NodeRemoved { node: v }));
        let (g, remap) = d.compact_renumber();
        assert_eq!(g.num_nodes(), 4);
        assert!(remap.is_removed(4));
        assert_eq!(remap.map(3), Some(3));
        let a: Vec<_> = g.arcs().collect();
        let b: Vec<_> = triangle().arcs().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn self_loop_on_the_node_removal_path() {
        // A removed node with a self-loop emits exactly one delete for it
        // (undirected and directed alike).
        for directed in [false, true] {
            let mut b = if directed {
                GraphBuilder::new_directed(3)
            } else {
                GraphBuilder::new_undirected(3)
            };
            b.add_edge(0, 1, 1.0);
            b.add_edge(1, 1, 2.5); // self-loop
            b.add_edge(2, 1, 3.0);
            let mut d = GraphDelta::new(b.build());
            d.remove_node(1).unwrap();
            let mut deltas: Vec<f64> = d.drain_events().iter().map(|e| e.delta).collect();
            deltas.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(deltas, vec![-3.0, -2.5, -1.0], "directed={directed}");
            assert_eq!(d.num_edges(), 0);
            let (g, remap) = d.compact_renumber();
            assert_eq!(g.num_nodes(), 2);
            assert_eq!(g.num_edges(), 0);
            assert_eq!(remap.map(2), Some(1));
            assert_eq!(remap.removed_old_ids(), vec![1]);
        }
    }

    #[test]
    fn remove_node_with_directed_overlay_in_arcs() {
        // Overlay-inserted in-arcs (absent from the base in-adjacency) must
        // be found and deleted by the removal.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 1.0);
        let mut d = GraphDelta::new(b.build());
        d.insert_edge(2, 1, 2.0).unwrap(); // overlay in-arc of 1
        d.insert_edge(1, 3, 3.0).unwrap(); // overlay out-arc of 1
        d.remove_node(1).unwrap();
        assert_eq!(d.num_edges(), 0);
        let (g, remap) = d.compact_renumber();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(remap.new_len(), 3);
    }

    #[test]
    fn renumbered_delta_stays_usable() {
        // After a renumbering compaction the delta accepts mutations in the
        // new id space, and a second renumber composes correctly.
        let mut d = GraphDelta::new(triangle());
        let v = d.insert_node(); // id 4
        d.insert_edge(v, 3, 1.5).unwrap();
        d.remove_node(0).unwrap();
        let (g, remap) = d.compact_renumber();
        assert_eq!(g.num_nodes(), 4);
        // Old 4 -> new 3, old 3 -> new 2.
        assert_eq!(remap.map(4), Some(3));
        assert_eq!(g.weight(3, 2), 1.5);
        d.insert_edge(0, 3, 9.0).unwrap(); // new id space
        d.drain_events();
        d.drain_node_events();
        let g2 = d.compact();
        assert_eq!(g2.weight(0, 3), 9.0);
    }
}
