//! Graph IO: whitespace-separated edge lists and DIMACS max-flow files.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Read an edge list: one `u v [weight]` triple per line, `#`-prefixed lines
/// are comments. Node ids may be arbitrary non-negative integers; they are
/// compacted to `0..n`. Returns the graph (undirected if `directed == false`).
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64, f64)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad source id"))?;
        let v: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad target id"))?;
        let w: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| parse_err(lineno, "bad weight"))?,
            None => 1.0,
        };
        if !w.is_finite() {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        max_id = max_id.max(u).max(v);
        raw_edges.push((u, v, w));
    }
    // Compact ids.
    let mut present = vec![false; (max_id + 1) as usize];
    for &(u, v, _) in &raw_edges {
        present[u as usize] = true;
        present[v as usize] = true;
    }
    let mut remap = vec![u32::MAX; (max_id + 1) as usize];
    let mut next = 0u32;
    for (id, &p) in present.iter().enumerate() {
        if p {
            remap[id] = next;
            next += 1;
        }
    }
    let n = next as usize;
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for (u, v, w) in raw_edges {
        b.add_edge(remap[u as usize], remap[v as usize], w);
    }
    Ok(b.build())
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, directed)
}

/// Write a graph as an edge list (`u v weight` per line).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v, w) in g.edges() {
        writeln!(writer, "{u} {v} {w}")?;
    }
    Ok(())
}

/// A parsed DIMACS max-flow problem: the capacity graph plus source and sink.
#[derive(Clone, Debug)]
pub struct DimacsMaxFlow {
    /// Directed capacity graph.
    pub graph: Graph,
    /// Source node.
    pub source: NodeId,
    /// Sink node.
    pub sink: NodeId,
}

/// Read a DIMACS max-flow file:
///
/// ```text
/// c comment
/// p max <nodes> <arcs>
/// n <id> s
/// n <id> t
/// a <from> <to> <capacity>
/// ```
///
/// Node ids in the file are 1-based.
pub fn read_dimacs_max_flow<R: Read>(reader: R) -> Result<DimacsMaxFlow> {
    let reader = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut source: Option<NodeId> = None;
    let mut sink: Option<NodeId> = None;
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        match parts[0] {
            "p" => {
                if parts.len() < 4 || parts[1] != "max" {
                    return Err(parse_err(lineno, "expected 'p max <n> <m>'"));
                }
                n = Some(
                    parts[2]
                        .parse()
                        .map_err(|_| parse_err(lineno, "bad node count"))?,
                );
            }
            "n" => {
                if parts.len() < 3 {
                    return Err(parse_err(lineno, "expected 'n <id> s|t'"));
                }
                let id: usize = parts[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad node id"))?;
                match parts[2] {
                    "s" => source = Some((id - 1) as NodeId),
                    "t" => sink = Some((id - 1) as NodeId),
                    other => return Err(parse_err(lineno, &format!("bad node role {other}"))),
                }
            }
            "a" => {
                if parts.len() < 4 {
                    return Err(parse_err(lineno, "expected 'a <u> <v> <cap>'"));
                }
                let u: usize = parts[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad arc source"))?;
                let v: usize = parts[2]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad arc target"))?;
                let c: f64 = parts[3]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad capacity"))?;
                edges.push(((u - 1) as NodeId, (v - 1) as NodeId, c));
            }
            other => return Err(parse_err(lineno, &format!("unknown line type {other}"))),
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    let source = source.ok_or_else(|| parse_err(0, "missing source"))?;
    let sink = sink.ok_or_else(|| parse_err(0, "missing sink"))?;
    let mut b = GraphBuilder::new_directed(n);
    for (u, v, c) in edges {
        b.add_edge(u, v, c);
    }
    Ok(DimacsMaxFlow {
        graph: b.build(),
        source,
        sink,
    })
}

/// Write a DIMACS max-flow file.
pub fn write_dimacs_max_flow<W: Write>(
    g: &Graph,
    source: NodeId,
    sink: NodeId,
    mut writer: W,
) -> Result<()> {
    let arcs: Vec<_> = g.arcs().collect();
    writeln!(writer, "c generated by qsc-graph")?;
    writeln!(writer, "p max {} {}", g.num_nodes(), arcs.len())?;
    writeln!(writer, "n {} s", source + 1)?;
    writeln!(writer, "n {} t", sink + 1)?;
    for (u, v, w) in arcs {
        writeln!(writer, "a {} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line: line + 1,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let text = "# comment\n0 1 2.0\n1 2\n2 0 0.5\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 2), 1.0);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice(), false).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.weight(2, 0), 0.5);
    }

    #[test]
    fn edge_list_compacts_sparse_ids() {
        let text = "10 20\n20 35\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_bad_line_errors() {
        let text = "0 x\n";
        assert!(read_edge_list(text.as_bytes(), true).is_err());
    }

    #[test]
    fn dimacs_round_trip() {
        let text = "c tiny\np max 4 5\nn 1 s\nn 4 t\na 1 2 3\na 1 3 2\na 2 4 2\na 3 4 3\na 2 3 1\n";
        let p = read_dimacs_max_flow(text.as_bytes()).unwrap();
        assert_eq!(p.graph.num_nodes(), 4);
        assert_eq!(p.graph.num_edges(), 5);
        assert_eq!(p.source, 0);
        assert_eq!(p.sink, 3);
        assert_eq!(p.graph.weight(0, 1), 3.0);

        let mut out = Vec::new();
        write_dimacs_max_flow(&p.graph, p.source, p.sink, &mut out).unwrap();
        let p2 = read_dimacs_max_flow(out.as_slice()).unwrap();
        assert_eq!(p2.graph.num_edges(), 5);
        assert_eq!(p2.source, 0);
        assert_eq!(p2.sink, 3);
    }

    #[test]
    fn dimacs_missing_source_errors() {
        let text = "p max 2 1\na 1 2 1\n";
        assert!(read_dimacs_max_flow(text.as_bytes()).is_err());
    }
}
