//! Graph IO: whitespace-separated edge lists and DIMACS max-flow files.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::{GraphError, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Read an edge list: one `u v [weight]` triple per line, `#`- or
/// `%`-prefixed lines are comments. Node ids may be arbitrary non-negative
/// integers (up to `u64::MAX`); they are compacted to `0..n` preserving
/// numeric order — no allocation proportional to the largest raw id, so
/// sparse id spaces (SNAP exports) are safe. Returns the graph (undirected
/// if `directed == false`).
///
/// Malformed input is an error, never a panic or a silently empty graph:
/// missing fields, non-integer or negative ids, ids that overflow `u64`,
/// non-finite weights, trailing tokens after the weight, and input with no
/// edges at all (including comment-only input) all return
/// [`GraphError::Parse`] / [`GraphError::InvalidWeight`].
///
/// Policy for degenerate edges (documented and tested): self-loops are
/// kept (one arc, as the CSR stores them), and duplicate edges — repeated
/// `(u, v)` lines, or both orientations of an undirected edge — are merged
/// by *summing* their weights, matching [`GraphBuilder`]'s multigraph
/// collapse.
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut raw_edges: Vec<(u64, u64, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing source"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad source id (expected a non-negative integer)"))?;
        let v: u64 = parts
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad target id (expected a non-negative integer)"))?;
        let w: f64 = match parts.next() {
            Some(s) => s.parse().map_err(|_| parse_err(lineno, "bad weight"))?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens after 'u v [weight]'"));
        }
        if !w.is_finite() {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        raw_edges.push((u, v, w));
    }
    if raw_edges.is_empty() {
        return Err(parse_err(0, "no edges in input"));
    }
    // Compact ids via sort + dedup (memory proportional to the edge count,
    // not to the largest raw id).
    let mut ids: Vec<u64> = Vec::with_capacity(raw_edges.len() * 2);
    for &(u, v, _) in &raw_edges {
        ids.push(u);
        ids.push(v);
    }
    ids.sort_unstable();
    ids.dedup();
    if ids.len() > u32::MAX as usize {
        return Err(parse_err(0, "more than u32::MAX distinct node ids"));
    }
    // qsc-audit: allow(no-panic-on-input) -- internal invariant, not an input condition: `ids` was built from exactly these raw endpoints four lines up, so the lookup cannot miss
    let remap = |raw: u64| ids.binary_search(&raw).expect("id collected above") as u32;
    let n = ids.len();
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for (u, v, w) in raw_edges {
        b.add_edge(remap(u), remap(v), w);
    }
    Ok(b.build())
}

/// Read an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, directed)
}

/// Write a graph as an edge list (`u v weight` per line).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v, w) in g.edges() {
        writeln!(writer, "{u} {v} {w}")?;
    }
    Ok(())
}

/// A parsed DIMACS max-flow problem: the capacity graph plus source and sink.
#[derive(Clone, Debug)]
pub struct DimacsMaxFlow {
    /// Directed capacity graph.
    pub graph: Graph,
    /// Source node.
    pub source: NodeId,
    /// Sink node.
    pub sink: NodeId,
}

/// Read a DIMACS max-flow file:
///
/// ```text
/// c comment
/// p max <nodes> <arcs>
/// n <id> s
/// n <id> t
/// a <from> <to> <capacity>
/// ```
///
/// Node ids in the file are 1-based; a `0` id, an id past the declared node
/// count, descriptor lines before the `p` line, a duplicate `p` line, a
/// negative / non-finite capacity, `source == sink`, or empty input all
/// return `Err` (never panic). Duplicate arcs are merged by summing their
/// capacities and self-loops are kept (they carry no s-t flow), matching
/// the edge-list reader's policy.
pub fn read_dimacs_max_flow<R: Read>(reader: R) -> Result<DimacsMaxFlow> {
    let reader = BufReader::new(reader);
    let mut n: Option<usize> = None;
    let mut source: Option<NodeId> = None;
    let mut sink: Option<NodeId> = None;
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        // 1-based node id bounded by the problem line's node count.
        let node_id = |field: &str, what: &str, bound: usize| -> Result<NodeId> {
            let id: usize = field
                .parse()
                .map_err(|_| parse_err(lineno, &format!("bad {what}")))?;
            if id == 0 {
                return Err(parse_err(lineno, &format!("{what} is 0 (ids are 1-based)")));
            }
            if id > bound {
                return Err(parse_err(
                    lineno,
                    &format!("{what} {id} exceeds the declared node count {bound}"),
                ));
            }
            Ok((id - 1) as NodeId)
        };
        match parts[0] {
            "p" => {
                if n.is_some() {
                    return Err(parse_err(lineno, "duplicate problem line"));
                }
                if parts.len() != 4 || parts[1] != "max" {
                    return Err(parse_err(lineno, "expected 'p max <n> <m>'"));
                }
                let count: usize = parts[2]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad node count"))?;
                parts[3]
                    .parse::<usize>()
                    .map_err(|_| parse_err(lineno, "bad arc count"))?;
                n = Some(count);
            }
            "n" => {
                let bound =
                    n.ok_or_else(|| parse_err(lineno, "node descriptor before problem line"))?;
                if parts.len() != 3 {
                    return Err(parse_err(lineno, "expected 'n <id> s|t'"));
                }
                let id = node_id(parts[1], "node id", bound)?;
                match parts[2] {
                    "s" => source = Some(id),
                    "t" => sink = Some(id),
                    other => return Err(parse_err(lineno, &format!("bad node role {other}"))),
                }
            }
            "a" => {
                let bound = n.ok_or_else(|| parse_err(lineno, "arc before problem line"))?;
                if parts.len() != 4 {
                    return Err(parse_err(lineno, "expected 'a <u> <v> <cap>'"));
                }
                let u = node_id(parts[1], "arc source", bound)?;
                let v = node_id(parts[2], "arc target", bound)?;
                let c: f64 = parts[3]
                    .parse()
                    .map_err(|_| parse_err(lineno, "bad capacity"))?;
                if !c.is_finite() || c < 0.0 {
                    return Err(GraphError::InvalidWeight { weight: c });
                }
                edges.push((u, v, c));
            }
            other => return Err(parse_err(lineno, &format!("unknown line type {other}"))),
        }
    }
    let n = n.ok_or_else(|| parse_err(0, "missing problem line"))?;
    let source = source.ok_or_else(|| parse_err(0, "missing source"))?;
    let sink = sink.ok_or_else(|| parse_err(0, "missing sink"))?;
    if source == sink {
        return Err(parse_err(0, "source and sink are the same node"));
    }
    let mut b = GraphBuilder::new_directed(n);
    for (u, v, c) in edges {
        b.add_edge(u, v, c);
    }
    Ok(DimacsMaxFlow {
        graph: b.build(),
        source,
        sink,
    })
}

/// Write a DIMACS max-flow file.
pub fn write_dimacs_max_flow<W: Write>(
    g: &Graph,
    source: NodeId,
    sink: NodeId,
    mut writer: W,
) -> Result<()> {
    let arcs: Vec<_> = g.arcs().collect();
    writeln!(writer, "c generated by qsc-graph")?;
    writeln!(writer, "p max {} {}", g.num_nodes(), arcs.len())?;
    writeln!(writer, "n {} s", source + 1)?;
    writeln!(writer, "n {} t", sink + 1)?;
    for (u, v, w) in arcs {
        writeln!(writer, "a {} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

fn parse_err(line: usize, message: &str) -> GraphError {
    GraphError::Parse {
        line: line + 1,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let text = "# comment\n0 1 2.0\n1 2\n2 0 0.5\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight(0, 1), 2.0);
        assert_eq!(g.weight(1, 2), 1.0);

        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice(), false).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.weight(2, 0), 0.5);
    }

    #[test]
    fn edge_list_compacts_sparse_ids() {
        let text = "10 20\n20 35\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_bad_line_errors() {
        let text = "0 x\n";
        assert!(read_edge_list(text.as_bytes(), true).is_err());
    }

    #[test]
    fn dimacs_round_trip() {
        let text = "c tiny\np max 4 5\nn 1 s\nn 4 t\na 1 2 3\na 1 3 2\na 2 4 2\na 3 4 3\na 2 3 1\n";
        let p = read_dimacs_max_flow(text.as_bytes()).unwrap();
        assert_eq!(p.graph.num_nodes(), 4);
        assert_eq!(p.graph.num_edges(), 5);
        assert_eq!(p.source, 0);
        assert_eq!(p.sink, 3);
        assert_eq!(p.graph.weight(0, 1), 3.0);

        let mut out = Vec::new();
        write_dimacs_max_flow(&p.graph, p.source, p.sink, &mut out).unwrap();
        let p2 = read_dimacs_max_flow(out.as_slice()).unwrap();
        assert_eq!(p2.graph.num_edges(), 5);
        assert_eq!(p2.source, 0);
        assert_eq!(p2.sink, 3);
    }

    #[test]
    fn dimacs_missing_source_errors() {
        let text = "p max 2 1\na 1 2 1\nn 1 s\n";
        assert!(read_dimacs_max_flow(text.as_bytes()).is_err());
    }

    #[test]
    fn edge_list_empty_input_errors() {
        assert!(read_edge_list("".as_bytes(), true).is_err());
        assert!(read_edge_list("# only comments\n% here too\n".as_bytes(), true).is_err());
    }

    #[test]
    fn edge_list_malformed_lines_error() {
        for text in [
            "0\n",                      // missing target
            "0 -1\n",                   // negative id
            "0 1 2.0 junk\n",           // trailing tokens
            "0 1 inf\n",                // non-finite weight
            "0 1 nan\n",                // non-finite weight
            "a b\n",                    // non-integer ids
            "0.5 1\n",                  // fractional id
            "99999999999999999999 1\n", // id overflows u64
        ] {
            assert!(
                read_edge_list(text.as_bytes(), true).is_err(),
                "accepted malformed input {text:?}"
            );
        }
    }

    #[test]
    fn edge_list_huge_sparse_ids_compact_without_blowup() {
        // Ids near u64::MAX must not allocate id-proportional memory.
        let text = format!("{} {}\n{} 7\n", u64::MAX - 1, u64::MAX - 5, u64::MAX - 5);
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_self_loops_kept_and_duplicates_merged() {
        let text = "0 0 2.0\n0 1 1.0\n0 1 3.0\n1 0 4.0\n";
        let g = read_edge_list(text.as_bytes(), false).unwrap();
        // Self-loop kept as one edge; the three {0,1} lines merge by sum.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.weight(0, 0), 2.0);
        assert_eq!(g.weight(0, 1), 8.0);
        assert_eq!(g.weight(1, 0), 8.0);
        // Directed: orientations stay distinct, same-orientation merges.
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.weight(0, 1), 4.0);
        assert_eq!(g.weight(1, 0), 4.0);
    }

    #[test]
    fn dimacs_zero_and_out_of_range_ids_error() {
        for text in [
            "p max 4 1\nn 0 s\nn 4 t\na 1 2 1\n",   // 0 id (1-based)
            "p max 4 1\nn 1 s\nn 5 t\na 1 2 1\n",   // id past node count
            "p max 4 1\nn 1 s\nn 4 t\na 0 2 1\n",   // arc source 0
            "p max 4 1\nn 1 s\nn 4 t\na 1 9 1\n",   // arc target past count
            "n 1 s\np max 4 1\nn 4 t\na 1 2 1\n",   // descriptor before p
            "p max 4 1\np max 4 1\nn 1 s\nn 4 t\n", // duplicate p
            "p max 4 1\nn 1 s\nn 1 t\na 1 2 1\n",   // source == sink
            "p max 4 1\nn 1 s\nn 4 t\na 1 2 -3\n",  // negative capacity
            "p max 4 1\nn 1 s\nn 4 t\na 1 2 inf\n", // non-finite capacity
            "",                                     // empty input
        ] {
            assert!(
                read_dimacs_max_flow(text.as_bytes()).is_err(),
                "accepted malformed input {text:?}"
            );
        }
    }

    #[test]
    fn dimacs_duplicate_arcs_merge_and_self_loops_kept() {
        let text = "p max 3 4\nn 1 s\nn 3 t\na 1 2 2\na 1 2 3\na 2 2 1\na 2 3 4\n";
        let p = read_dimacs_max_flow(text.as_bytes()).unwrap();
        assert_eq!(p.graph.weight(0, 1), 5.0);
        assert_eq!(p.graph.weight(1, 1), 1.0);
        assert_eq!(p.graph.num_edges(), 3);
    }
}
