//! Degree and size statistics used when reporting dataset summaries
//! (Table 2) and coloring characteristics (Sec. 6.2).

use crate::csr::Graph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of logical edges.
    pub edges: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Density `m / (n * (n-1) / 2)` for undirected, `m / (n * (n-1))` for
    /// directed graphs.
    pub density: f64,
    /// Total edge weight over stored arcs.
    pub total_weight: f64,
}

/// Compute [`GraphStats`] for a graph.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_nodes();
    let m = g.num_edges();
    let degrees: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    let min_degree = degrees.iter().copied().min().unwrap_or(0);
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    let mean_degree = if n == 0 {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / n as f64
    };
    let possible = if n < 2 {
        1.0
    } else if g.is_directed() {
        (n * (n - 1)) as f64
    } else {
        (n * (n - 1)) as f64 / 2.0
    };
    GraphStats {
        nodes: n,
        edges: m,
        min_degree,
        max_degree,
        mean_degree,
        density: m as f64 / possible,
        total_weight: g.total_weight(),
    }
}

/// Degree histogram: `hist[d]` is the number of nodes with out-degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.nodes() {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

/// Median of a slice of sizes (0 for empty input).
pub fn median(values: &[usize]) -> usize {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn stats_of_karate() {
        let g = generators::karate_club();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 34);
        assert_eq!(s.edges, 78);
        assert_eq!(s.max_degree, 17); // node 34 (0-indexed 33)
        assert!(s.mean_degree > 4.0 && s.mean_degree < 5.0);
        assert!(s.density > 0.0 && s.density < 1.0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generators::barabasi_albert(100, 2, 5);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 100);
    }

    #[test]
    fn stats_directed_density() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build();
        let s = graph_stats(&g);
        assert!((s.density - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5, 1, 3]), 3);
        assert_eq!(median(&[4, 1, 3, 2]), 3);
        assert_eq!(median(&[]), 0);
    }
}
