//! CSR sparse matrices for LP constraint storage.

use crate::dense::DenseMatrix;

/// A sparse `rows x cols` matrix in CSR (compressed sparse row) form.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from a triplet list `(row, col, value)`. Duplicate entries are
    /// summed; zeros are kept out of the structure.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut entries: Vec<(u32, u32, f64)> = triplets
            .iter()
            .copied()
            .filter(|&(r, c, v)| {
                assert!(
                    (r as usize) < rows && (c as usize) < cols,
                    "entry out of range"
                );
                v != 0.0
            })
            .collect();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(entries.len());
        for (r, c, v) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        let indices = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        SparseMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Build from a dense matrix, dropping zeros.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut triplets = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    triplets.push((r as u32, c as u32, v));
                }
            }
        }
        Self::from_triplets(m.rows(), m.cols(), &triplets)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the non-zero entries `(col, value)` of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Iterate all non-zero entries `(row, col, value)`.
    pub fn triplets(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r as u32, c, v)))
    }

    /// Entry lookup (O(log nnz(row))).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => self.values[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).map(|(c, v)| v * x[c as usize]).sum())
            .collect()
    }

    /// Transposed matrix-vector product `Aᵀ y`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                out[c as usize] += v * yr;
            }
        }
        out
    }

    /// Convert to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.triplets() {
            m.set(r as usize, c as usize, v);
        }
        m
    }

    /// Transpose (CSR of the transposed matrix).
    pub fn transpose(&self) -> SparseMatrix {
        let triplets: Vec<(u32, u32, f64)> = self.triplets().map(|(r, c, v)| (c, r, v)).collect();
        SparseMatrix::from_triplets(self.cols, self.rows, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_merges_and_drops_zero() {
        let m = SparseMatrix::from_triplets(
            2,
            3,
            &[(0, 1, 2.0), (0, 1, 3.0), (1, 2, 0.0), (1, 0, -1.0)],
        );
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.get(1, 0), -1.0);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 2.0]), vec![1.0, 6.0, 2.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 0), 2.0);
    }

    #[test]
    fn dense_round_trip() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn row_iteration() {
        let m = SparseMatrix::from_triplets(2, 4, &[(1, 3, 4.0), (1, 0, 1.0)]);
        let row: Vec<(u32, f64)> = m.row(1).collect();
        assert_eq!(row, vec![(0, 1.0), (3, 4.0)]);
        assert_eq!(m.row(0).count(), 0);
    }
}
