//! Row-major dense matrices.

/// A dense `rows x cols` matrix stored row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major buffer.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        self.data[r * self.cols + c] = value;
    }

    /// Add to an element.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, value: f64) {
        self.data[r * self.cols + c] += value;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| crate::vec_ops::dot(self.row(r), x))
            .collect()
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, out_c) in out.iter_mut().enumerate() {
                *out_c += self.get(r, c) * xr;
            }
        }
        out
    }

    /// Matrix product `A B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows);
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::lanes::dot(&self.data, &self.data).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn identity_matvec() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn frobenius() {
        let m = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
