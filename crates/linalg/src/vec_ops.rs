//! Small dense-vector helpers.

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scale a vector in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a.iter_mut() {
        *x *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        let b = [1.0, 2.0];
        assert_eq!(dot(&a, &b), 11.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm_inf(&[-7.0, 3.0]), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        let mut c = [1.0, -2.0];
        scale(&mut c, -3.0);
        assert_eq!(c, [-3.0, 6.0]);
    }
}
