//! Small dense-vector helpers.
//!
//! The reductions delegate to the [`crate::lanes`] kernels: [`dot`] (and so
//! [`norm2`]) reduces through the canonical blocked tree — one fixed order
//! for every caller, which is what lets the warm LP solvers stay
//! bit-identical to their cold re-runs — and [`norm_inf`] keeps exact
//! sequential scan semantics.

use crate::lanes;

/// Dot product of two equal-length slices (canonical blocked reduction —
/// see [`lanes::dot`]).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    lanes::dot(a, b)
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
pub fn norm_inf(a: &[f64]) -> f64 {
    lanes::max_abs(a)
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    lanes::axpy(alpha, x, y);
}

/// Elementwise `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Elementwise `a + b`.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Scale a vector in place.
pub fn scale(a: &mut [f64], alpha: f64) {
    lanes::scale(a, alpha);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        let b = [1.0, 2.0];
        assert_eq!(dot(&a, &b), 11.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm_inf(&[-7.0, 3.0]), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = [1.0, 2.0];
        let b = [3.0, 5.0];
        assert_eq!(add(&a, &b), vec![4.0, 7.0]);
        assert_eq!(sub(&b, &a), vec![2.0, 3.0]);
        let mut c = [1.0, -2.0];
        scale(&mut c, -3.0);
        assert_eq!(c, [-3.0, 6.0]);
    }
}
