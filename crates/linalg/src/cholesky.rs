//! Cholesky factorization of symmetric positive (semi-)definite matrices.

use crate::dense::DenseMatrix;

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    n: usize,
    l: DenseMatrix,
}

/// Errors from the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not (numerically) positive definite, even after the
    /// requested regularization.
    NotPositiveDefinite { pivot: usize },
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for CholeskyError {}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    pub fn factor(a: &DenseMatrix) -> Result<Self, CholeskyError> {
        Self::factor_regularized(a, 0.0)
    }

    /// Factor with diagonal regularization: effectively factors
    /// `A + regularization * I`. The interior-point solver uses a small
    /// regularization to keep the normal equations well conditioned near the
    /// optimum.
    pub fn factor_regularized(a: &DenseMatrix, regularization: f64) -> Result<Self, CholeskyError> {
        if a.rows() != a.cols() {
            return Err(CholeskyError::NotSquare);
        }
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut sum = a.get(j, j) + regularization;
            for k in 0..j {
                let ljk = l.get(j, k);
                sum -= ljk * ljk;
            }
            if sum <= 0.0 || !sum.is_finite() {
                return Err(CholeskyError::NotPositiveDefinite { pivot: j });
            }
            let ljj = sum.sqrt();
            l.set(j, j, ljj);
            // Below-diagonal entries of column j.
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / ljj);
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The lower-triangular factor.
    pub fn factor_matrix(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solve `A x = b` using forward/backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Forward: L y = b.
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut s = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                s -= self.l.get(i, k) * yk;
            }
            y[i] = s / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut s = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l.get(k, i) * xk;
            }
            x[i] = s / self.l.get(i, i);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_spd() {
        // A = [[4, 2], [2, 3]] is SPD.
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let chol = Cholesky::factor(&a).unwrap();
        let x = chol.solve(&[10.0, 8.0]);
        // Verify A x = b.
        let b = a.matvec(&x);
        assert!((b[0] - 10.0).abs() < 1e-10);
        assert!((b[1] - 8.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn regularization_rescues_semidefinite() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(Cholesky::factor(&a).is_err());
        let chol = Cholesky::factor_regularized(&a, 1e-8).unwrap();
        assert_eq!(chol.dim(), 2);
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert_eq!(Cholesky::factor(&a).unwrap_err(), CholeskyError::NotSquare);
    }

    #[test]
    fn larger_random_spd_system() {
        // Build SPD as M Mᵀ + I for a fixed M.
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 2.0, 0.5, -1.0],
            vec![0.0, 1.0, 3.0, 2.0],
            vec![2.0, -1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
        ]);
        let mut a = m.matmul(&m.transpose());
        for i in 0..4 {
            a.add_to(i, i, 1.0);
        }
        let chol = Cholesky::factor(&a).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = chol.solve(&b);
        let ax = a.matvec(&x);
        for i in 0..4 {
            assert!(
                (ax[i] - b[i]).abs() < 1e-9,
                "component {i}: {} vs {}",
                ax[i],
                b[i]
            );
        }
    }
}
