//! LU factorization with partial pivoting.

use crate::dense::DenseMatrix;

/// An LU factorization `P A = L U` with partial pivoting.
#[derive(Clone, Debug)]
pub struct Lu {
    n: usize,
    /// Combined L (below diagonal, unit diagonal implicit) and U (upper).
    lu: DenseMatrix,
    /// Row permutation.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

/// Errors from the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is singular to working precision.
    Singular { pivot: usize },
    /// The matrix is not square.
    NotSquare,
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { pivot } => write!(f, "matrix is singular (pivot {pivot})"),
            LuError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for LuError {}

impl Lu {
    /// Factor a square matrix.
    pub fn factor(a: &DenseMatrix) -> Result<Self, LuError> {
        if a.rows() != a.cols() {
            return Err(LuError::NotSquare);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-14 {
                return Err(LuError::Singular { pivot: col });
            }
            if pivot_row != col {
                // Swap rows in-place.
                for c in 0..n {
                    let a = lu.get(col, c);
                    let b = lu.get(pivot_row, c);
                    lu.set(col, c, b);
                    lu.set(pivot_row, c, a);
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            let diag = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / diag;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    lu.add_to(r, c, -factor * lu.get(col, c));
                }
            }
        }
        Ok(Lu { n, lu, perm, sign })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Apply permutation.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward: L y = Pb (unit diagonal).
        for i in 0..self.n {
            for k in 0..i {
                y[i] -= self.lu.get(i, k) * y[k];
            }
        }
        // Backward: U x = y.
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut s = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu.get(i, k) * xk;
            }
            x[i] = s / self.lu.get(i, i);
        }
        x
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.n {
            det *= self.lu.get(i, i);
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 10.0]);
        let ax = a.matvec(&x);
        assert!((ax[0] - 5.0).abs() < 1e-12);
        assert!((ax[1] - 10.0).abs() < 1e-12);
        assert!((lu.determinant() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = Lu::factor(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LuError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert_eq!(Lu::factor(&a).unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn four_by_four() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 3.0, 2.0, 1.0],
            vec![3.0, 4.0, 3.0, 2.0],
            vec![2.0, 3.0, 4.0, 3.0],
            vec![1.0, 2.0, 3.0, 4.0],
        ]);
        let lu = Lu::factor(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = lu.solve(&b);
        let ax = a.matvec(&x);
        for i in 0..4 {
            assert!((ax[i] - b[i]).abs() < 1e-10);
        }
    }
}
