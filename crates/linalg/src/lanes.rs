//! Lane primitives: autovectorization-friendly f64 kernels on stable Rust.
//!
//! Every kernel here is written in the *fixed-width unrolled block* style:
//! the slice is walked in blocks of [`LANES`] elements, the block is
//! resliced to its exact width once at entry (`&chunk[..LANES]`) so LLVM
//! can prove all lane accesses in bounds and compile the body branch-free,
//! and the tail is handled by a plain scalar loop. No `std::simd`, no
//! unsafe, no dependencies — the shapes below reliably autovectorize with
//! the stable compiler (verified by spot-checking the emitted assembly;
//! see the notes at the bottom of this doc).
//!
//! ## Determinism contract
//!
//! The workspace's incremental engines promise bit-identical results at
//! every thread count and across warm/cold re-runs, so each kernel pins an
//! exact operation order:
//!
//! * **Sums** ([`sum`], [`dot`]) use the *canonical blocked reduction
//!   tree*: [`LANES`] stride-`LANES` partial accumulators over the blocked
//!   prefix, combined pairwise as
//!   `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`, then the tail folded
//!   sequentially onto that total. This is a *different* canonical order
//!   than a plain sequential fold — callers that previously pinned
//!   sequential-sum results re-baseline once when they switch — but it is
//!   a *fixed* order: the same input slice always reduces through the same
//!   tree, independent of thread count, call site, or build.
//! * **Min/max scans** ([`min_max`], [`max_abs`]) keep exact sequential
//!   semantics — strict-compare select per element, first attainer wins
//!   ties — expressed branch-free (`if lt { x } else { m }` compiles to
//!   compare+blend/cmov). Lane-parallel min/max folds are *not* used for
//!   anything that must be bit-identical to a scalar scan: reordering can
//!   flip which of `-0.0`/`+0.0` survives and which tied index is
//!   reported. The sequential select form is trivially bit-identical and
//!   still gains from branch elimination and instruction-level
//!   parallelism.
//! * **Elementwise folds** ([`fold_add`], [`fold_sub`], [`axpy`],
//!   [`scale`]) touch each index independently, so vectorization cannot
//!   reorder anything observable.
//!
//! [`sum_fast`] / [`dot_fast`] are the explicit escape hatch: same values
//! up to float associativity, but the reduction order is *unspecified* and
//! may change between versions. Only opt-in paths (e.g.
//! `RothkoConfig::fast_math`) may call them.
//!
//! ## Bounds-check elimination audit
//!
//! Each blocked loop below asserts its shape once (`debug_assert!`) and
//! reslices every operand chunk to `[..LANES]` before the unrolled body.
//! Spot check (release, x86-64 + AVX2 via
//! `cargo rustc -p qsc-linalg --release -- --emit asm`): the bodies of
//! `sum`/`dot` compile to `vaddpd`/`vfmadd` over ymm lanes with no
//! `panic_bounds_check` calls; `fold_add`/`fold_sub`/`axpy` to unrolled
//! `vaddpd`/`vfmadd` store loops; `min_max` to `vminsd`/`vmaxsd` chains
//! (sequential semantics keep it scalar-width, branch-free). The only
//! branches left in any kernel are the block-loop back-edges.

/// Fixed lane width of every blocked kernel (f64 elements per block).
pub const LANES: usize = 8;

/// Sum with the canonical blocked reduction tree (see the module docs).
///
/// The blocked prefix accumulates `lanes[l] += chunk[l]` per block, so lane
/// `l` holds the partial sum of elements `l, l+LANES, l+2*LANES, …`; the
/// pairwise combine and sequential tail pin one fixed order for every call.
#[must_use]
pub fn sum(xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut it = xs.chunks_exact(LANES);
    for chunk in &mut it {
        let c = &chunk[..LANES];
        for l in 0..LANES {
            lanes[l] += c[l];
        }
    }
    let mut acc = combine_tree(&lanes);
    for &x in it.remainder() {
        acc += x;
    }
    acc
}

/// Sum with an *unspecified* reduction order (fast-math escape hatch).
///
/// Values agree with [`sum`] up to float associativity. Do not use on
/// paths covered by the determinism contract.
#[must_use]
pub fn sum_fast(xs: &[f64]) -> f64 {
    let mut lanes = [0.0f64; LANES];
    let mut it = xs.chunks_exact(LANES);
    for chunk in &mut it {
        let c = &chunk[..LANES];
        for l in 0..LANES {
            lanes[l] += c[l];
        }
    }
    let mut acc: f64 = lanes.iter().sum();
    for &x in it.remainder() {
        acc += x;
    }
    acc
}

/// Dot product with the canonical blocked reduction tree (see [`sum`]).
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0.0f64; LANES];
    let mut it = a.chunks_exact(LANES).zip(b.chunks_exact(LANES));
    let blocks = n / LANES;
    for (ca, cb) in &mut it {
        let (ca, cb) = (&ca[..LANES], &cb[..LANES]);
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc = combine_tree(&lanes);
    for i in blocks * LANES..n {
        acc += a[i] * b[i];
    }
    acc
}

/// Dot product with an *unspecified* reduction order (see [`sum_fast`]).
#[must_use]
pub fn dot_fast(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let mut acc = 0.0f64;
    for i in 0..n {
        acc += a[i] * b[i];
    }
    acc
}

/// Column fold `dst[i] += src[i]` (merge absorption, quotient-row folds).
pub fn fold_add(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len().min(src.len());
    let mut di = dst[..n].chunks_exact_mut(LANES);
    let mut si = src[..n].chunks_exact(LANES);
    for (d, s) in (&mut di).zip(&mut si) {
        let (d, s) = (&mut d[..LANES], &s[..LANES]);
        for l in 0..LANES {
            d[l] += s[l];
        }
    }
    for (d, s) in di.into_remainder().iter_mut().zip(si.remainder()) {
        *d += s;
    }
}

/// Column fold `dst[i] -= src[i]` (delta retraction).
pub fn fold_sub(dst: &mut [f64], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len().min(src.len());
    let mut di = dst[..n].chunks_exact_mut(LANES);
    let mut si = src[..n].chunks_exact(LANES);
    for (d, s) in (&mut di).zip(&mut si) {
        let (d, s) = (&mut d[..LANES], &s[..LANES]);
        for l in 0..LANES {
            d[l] -= s[l];
        }
    }
    for (d, s) in di.into_remainder().iter_mut().zip(si.remainder()) {
        *d -= s;
    }
}

/// `y[i] += alpha * x[i]` (each index independent — order-insensitive).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len().min(y.len());
    let mut yi = y[..n].chunks_exact_mut(LANES);
    let mut xi = x[..n].chunks_exact(LANES);
    for (yc, xc) in (&mut yi).zip(&mut xi) {
        let (yc, xc) = (&mut yc[..LANES], &xc[..LANES]);
        for l in 0..LANES {
            yc[l] += alpha * xc[l];
        }
    }
    for (yv, xv) in yi.into_remainder().iter_mut().zip(xi.remainder()) {
        *yv += alpha * xv;
    }
}

/// Scale in place (each index independent).
pub fn scale(a: &mut [f64], alpha: f64) {
    let mut it = a.chunks_exact_mut(LANES);
    for chunk in &mut it {
        for x in &mut chunk[..LANES] {
            *x *= alpha;
        }
    }
    for x in it.into_remainder() {
        *x *= alpha;
    }
}

/// Sequential-semantics min/max scan: strict-compare select per element in
/// slice order, expressed branch-free. Bit-identical to the scalar fold
/// `if x < mn { mn = x }; if x > mx { mx = x }` — including which of
/// `-0.0`/`+0.0` survives. Returns `(INFINITY, NEG_INFINITY)` on empty
/// input.
#[must_use]
pub fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    for &x in xs {
        mn = if x < mn { x } else { mn };
        mx = if x > mx { x } else { mx };
    }
    (mn, mx)
}

/// Sequential-semantics `max |x|` scan (infinity norm), branch-free.
#[must_use]
pub fn max_abs(xs: &[f64]) -> f64 {
    let mut mx = 0.0f64;
    for &x in xs {
        let a = x.abs();
        mx = if a > mx { a } else { mx };
    }
    mx
}

/// The canonical pairwise combine of the [`LANES`] partial accumulators:
/// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`. Public so gather-style
/// kernels built on top (e.g. `qsc_core::kernels`) reduce through the
/// *same* tree as [`sum`]/[`dot`].
#[inline]
#[must_use]
pub fn combine_tree(l: &[f64; LANES]) -> f64 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64) * 0.37 - 3.0).collect()
    }

    #[test]
    fn sum_matches_tree_by_construction() {
        for n in [0, 1, 7, 8, 9, 16, 31, 100] {
            let xs = seq(n);
            // Reference: the same canonical tree, written naively.
            let mut lanes = [0.0f64; LANES];
            for (i, &x) in xs.iter().take(n - n % LANES).enumerate() {
                lanes[i % LANES] += x;
            }
            let mut want = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
            for &x in &xs[n - n % LANES..] {
                want += x;
            }
            assert_eq!(sum(&xs).to_bits(), want.to_bits(), "n = {n}");
        }
    }

    #[test]
    fn dot_matches_sum_of_products() {
        for n in [0, 3, 8, 17, 64] {
            let a = seq(n);
            let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
            let prods: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            assert_eq!(dot(&a, &b).to_bits(), sum(&prods).to_bits(), "n = {n}");
        }
    }

    #[test]
    fn folds_match_scalar() {
        for n in [0, 1, 8, 13, 40] {
            let src = seq(n);
            let mut d1 = seq(n);
            let mut d2 = d1.clone();
            fold_add(&mut d1, &src);
            for (d, s) in d2.iter_mut().zip(&src) {
                *d += s;
            }
            assert_eq!(d1, d2);
            fold_sub(&mut d1, &src);
            assert_eq!(d1, seq(n));
        }
    }

    #[test]
    fn min_max_sequential_semantics() {
        assert_eq!(min_max(&[]), (f64::INFINITY, f64::NEG_INFINITY));
        let (mn, mx) = min_max(&[3.0, -1.0, 2.0, -1.0]);
        assert_eq!((mn, mx), (-1.0, 3.0));
        // Strict compares keep the first-seen zero's sign bit.
        let (mn, _) = min_max(&[0.0, -0.0]);
        assert!(mn.is_sign_positive());
        let (mn, _) = min_max(&[-0.0, 0.0]);
        assert!(mn.is_sign_negative());
    }

    #[test]
    fn axpy_scale_max_abs() {
        let x = seq(21);
        let mut y = seq(21);
        let mut y2 = y.clone();
        axpy(1.5, &x, &mut y);
        for (yv, xv) in y2.iter_mut().zip(&x) {
            *yv += 1.5 * xv;
        }
        assert_eq!(y, y2);
        scale(&mut y, -2.0);
        for yv in y2.iter_mut() {
            *yv *= -2.0;
        }
        assert_eq!(y, y2);
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
    }
}
