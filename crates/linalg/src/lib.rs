//! # qsc-linalg
//!
//! Minimal dense and sparse linear algebra substrate for the LP solvers in
//! `qsc-lp`. Implemented from scratch (no external linear-algebra crates):
//!
//! * [`DenseMatrix`] — row-major dense matrices with matrix/vector products.
//! * [`Cholesky`] — Cholesky factorization with optional diagonal
//!   regularization, used by the interior-point normal equations.
//! * [`Lu`] — LU factorization with partial pivoting.
//! * [`SparseMatrix`] — CSR sparse matrices for LP constraint storage.
//! * [`vec_ops`] — small vector helpers (dot, norms, axpy).
//! * [`lanes`] — the lane-kernel substrate under `vec_ops` (and under
//!   `qsc_core::kernels`): fixed-width unrolled f64 blocks that
//!   autovectorize on stable Rust, with a pinned canonical reduction order
//!   for sums and sequential-semantics min/max scans (see the module docs
//!   for the determinism contract).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cholesky;
pub mod dense;
pub mod lanes;
pub mod lu;
pub mod sparse;
pub mod vec_ops;

pub use cholesky::Cholesky;
pub use dense::DenseMatrix;
pub use lu::Lu;
pub use sparse::SparseMatrix;
