//! Serializable experiment records (written as JSON lines next to the text
//! tables so results can be post-processed or plotted externally).
//!
//! The JSON-lines writer below is hand-rolled so the harness does not need a
//! JSON dependency (the build environment is offline).

/// One point of a speed/accuracy trade-off curve (Fig. 7) or a
/// colors/accuracy curve (Fig. 8).
#[derive(Clone, Debug)]
pub struct TradeoffPoint {
    /// Task type: "maxflow", "lp", or "centrality".
    pub task: String,
    /// Dataset name.
    pub dataset: String,
    /// Number of colors used by the approximation.
    pub colors: usize,
    /// End-to-end approximation time in seconds (coloring + reduction +
    /// solving).
    pub approx_seconds: f64,
    /// Exact baseline time in seconds.
    pub exact_seconds: f64,
    /// Accuracy: relative error for max-flow/LP, Spearman's rho for
    /// centrality.
    pub accuracy: f64,
    /// Maximum q-error of the coloring.
    pub max_q_error: f64,
}

impl TradeoffPoint {
    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"task\":\"{}\",\"dataset\":\"{}\",\"colors\":{},\"approx_seconds\":{:.6},\"exact_seconds\":{:.6},\"accuracy\":{:.6},\"max_q_error\":{:.6}}}",
            self.task,
            self.dataset,
            self.colors,
            self.approx_seconds,
            self.exact_seconds,
            self.accuracy,
            self.max_q_error
        )
    }
}

/// One row of the Table 4-style compression report.
#[derive(Clone, Debug)]
pub struct CompressionRow {
    /// Dataset name.
    pub dataset: String,
    /// Setting label ("stable", "q=64", ...).
    pub setting: String,
    /// Measured maximum q-error.
    pub max_q: f64,
    /// Measured mean q-error.
    pub mean_q: f64,
    /// Number of colors.
    pub colors: usize,
    /// Compression ratio `n : k`.
    pub compression: f64,
    /// Wall-clock seconds to compute the coloring.
    pub seconds: f64,
}

impl CompressionRow {
    /// One-line JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"dataset\":\"{}\",\"setting\":\"{}\",\"max_q\":{:.4},\"mean_q\":{:.4},\"colors\":{},\"compression\":{:.2},\"seconds\":{:.6}}}",
            self.dataset, self.setting, self.max_q, self.mean_q, self.colors, self.compression, self.seconds
        )
    }
}

/// Serialize a slice of records to JSON lines using the provided renderer.
pub fn to_json_lines<T>(records: &[T], render: impl Fn(&T) -> String) -> String {
    records.iter().map(render).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_round_trip_shape() {
        let rows = vec![CompressionRow {
            dataset: "openflights".into(),
            setting: "q=16".into(),
            max_q: 2.2,
            mean_q: 0.4,
            colors: 39,
            compression: 87.0,
            seconds: 0.06,
        }];
        let text = to_json_lines(&rows, CompressionRow::to_json);
        assert!(text.contains("\"dataset\":\"openflights\""));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn tradeoff_point_json_contains_fields() {
        let p = TradeoffPoint {
            task: "lp".into(),
            dataset: "qap15".into(),
            colors: 50,
            approx_seconds: 0.2,
            exact_seconds: 10.0,
            accuracy: 1.05,
            max_q_error: 3.0,
        };
        let json = p.to_json();
        assert!(json.contains("\"task\":\"lp\""));
        assert!(json.contains("\"colors\":50"));
    }
}
