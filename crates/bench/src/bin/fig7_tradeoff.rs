//! E-FIG7: speed/accuracy trade-offs for the three task types (Fig. 7).
//!
//! For every dataset of each family, sweeps color budgets and reports the
//! end-to-end approximation time as a fraction of the exact baseline time,
//! together with the task's accuracy metric (relative error for max-flow,
//! signed relative error for LP, Spearman's ρ for centrality).
//!
//! Each task's budget list is swept warm (one coloring refinement,
//! patched reductions, warm-started solvers); see
//! `qsc_bench::experiments`.
//!
//! Usage: `fig7_tradeoff [--task maxflow|lp|centrality] [--scale small|full]
//! [--budgets 5,10,20,...]` (budgets must be non-decreasing; default
//! `DEFAULT_BUDGETS`).

use qsc_bench::arg_value;
use qsc_bench::experiments::{
    budgets_from_args, centrality_tradeoff, lp_tradeoff, maxflow_tradeoff, tradeoff_table,
};
use qsc_bench::report::TradeoffPoint;
use qsc_datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let task = arg_value(&args, "--task");
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        _ => Scale::Full,
    };
    let budgets = budgets_from_args(&args);
    let budgets = budgets.as_slice();

    let run_maxflow = task.is_none() || task.as_deref() == Some("maxflow");
    let run_lp = task.is_none() || task.as_deref() == Some("lp");
    let run_centrality = task.is_none() || task.as_deref() == Some("centrality");

    if run_maxflow {
        println!("Fig. 7(a) — maximum flow (relative error; 1.0 is ideal)");
        let mut points: Vec<TradeoffPoint> = Vec::new();
        for spec in qsc_datasets::flow_datasets() {
            points.extend(maxflow_tradeoff(spec.name, scale, budgets));
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, Metric::Ratio);
    }
    if run_lp {
        println!("Fig. 7(b) — linear optimization (signed relative error; 0.0 is ideal)");
        let mut points = Vec::new();
        for spec in qsc_datasets::lp_datasets() {
            points.extend(lp_tradeoff(spec.name, scale, budgets));
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, Metric::Signed);
    }
    if run_centrality {
        println!("Fig. 7(c) — betweenness centrality (Spearman's rho; 1.0 is ideal)");
        let mut points = Vec::new();
        for spec in qsc_datasets::graph_datasets() {
            if matches!(spec.task, qsc_datasets::Task::Centrality) {
                points.extend(centrality_tradeoff(spec.name, scale, budgets));
            }
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, Metric::Correlation);
    }
}

/// Which accuracy metric a task's points carry (decides how the headline
/// statistic is aggregated and labelled).
#[derive(Clone, Copy)]
enum Metric {
    /// `max(v/v̂, v̂/v)`, ≥ 1.0, ideal 1.0 (max-flow).
    Ratio,
    /// Signed relative error, ideal 0.0, can be zero or negative (LP).
    Signed,
    /// Spearman's ρ in (0, 1], ideal 1.0 (centrality).
    Correlation,
}

/// Print the headline statistic the paper reports for Fig. 7: the average
/// accuracy of the points whose runtime is at most 1% of the exact baseline.
/// `approx_seconds` is cumulative across a dataset's budget ladder, so the
/// 1% filter uses each point's *incremental* cost (cumulative minus the
/// previous budget's) — the analogue of the paper's per-budget cost.
fn summarize(points: &[TradeoffPoint], metric: Metric) {
    let mut prev_cumulative: std::collections::HashMap<&str, f64> =
        std::collections::HashMap::new();
    let mut cheap: Vec<&TradeoffPoint> = Vec::new();
    for p in points {
        let prev = prev_cumulative
            .insert(p.dataset.as_str(), p.approx_seconds)
            .unwrap_or(0.0);
        if p.approx_seconds - prev <= 0.01 * p.exact_seconds {
            cheap.push(p);
        }
    }
    let pool: Vec<&TradeoffPoint> = if cheap.is_empty() {
        points.iter().collect()
    } else {
        cheap
    };
    if pool.is_empty() {
        return;
    }
    let geo_mean =
        || (pool.iter().map(|p| p.accuracy.max(1e-12).ln()).sum::<f64>() / pool.len() as f64).exp();
    match metric {
        Metric::Ratio => println!(
            "==> geometric-mean relative error within the 1% time budget: {:.3}\n",
            geo_mean()
        ),
        // The signed metric can be zero or negative, so aggregate the
        // arithmetic mean of magnitudes instead of a geometric mean.
        Metric::Signed => println!(
            "==> mean |signed relative error| within the 1% time budget: {:.3}\n",
            pool.iter().map(|p| p.accuracy.abs()).sum::<f64>() / pool.len() as f64
        ),
        Metric::Correlation => println!(
            "==> mean correlation within the 1% time budget: {:.3}\n",
            geo_mean()
        ),
    }
}
