//! E-FIG7: speed/accuracy trade-offs for the three task types (Fig. 7).
//!
//! For every dataset of each family, sweeps color budgets and reports the
//! end-to-end approximation time as a fraction of the exact baseline time,
//! together with the task's accuracy metric (relative error for max-flow and
//! LP, Spearman's ρ for centrality).
//!
//! Usage: `fig7_tradeoff [--task maxflow|lp|centrality] [--scale small|full]`

use qsc_bench::experiments::{
    centrality_tradeoff, lp_tradeoff, maxflow_tradeoff, tradeoff_table, DEFAULT_BUDGETS,
};
use qsc_bench::report::TradeoffPoint;
use qsc_datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let task = arg_value(&args, "--task");
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        _ => Scale::Full,
    };
    let budgets = DEFAULT_BUDGETS;

    let run_maxflow = task.is_none() || task.as_deref() == Some("maxflow");
    let run_lp = task.is_none() || task.as_deref() == Some("lp");
    let run_centrality = task.is_none() || task.as_deref() == Some("centrality");

    if run_maxflow {
        println!("Fig. 7(a) — maximum flow (relative error; 1.0 is ideal)");
        let mut points: Vec<TradeoffPoint> = Vec::new();
        for spec in qsc_datasets::flow_datasets() {
            points.extend(maxflow_tradeoff(spec.name, scale, budgets));
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, false);
    }
    if run_lp {
        println!("Fig. 7(b) — linear optimization (relative error; 1.0 is ideal)");
        let mut points = Vec::new();
        for spec in qsc_datasets::lp_datasets() {
            points.extend(lp_tradeoff(spec.name, scale, budgets));
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, false);
    }
    if run_centrality {
        println!("Fig. 7(c) — betweenness centrality (Spearman's rho; 1.0 is ideal)");
        let mut points = Vec::new();
        for spec in qsc_datasets::graph_datasets() {
            if matches!(spec.task, qsc_datasets::Task::Centrality) {
                points.extend(centrality_tradeoff(spec.name, scale, budgets));
            }
        }
        println!("{}", tradeoff_table(&points));
        summarize(&points, true);
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Print the headline statistic the paper reports for Fig. 7: the average
/// accuracy of the points whose runtime is at most 1% of the exact baseline.
fn summarize(points: &[TradeoffPoint], higher_is_better: bool) {
    let cheap: Vec<&TradeoffPoint> = points
        .iter()
        .filter(|p| p.approx_seconds <= 0.01 * p.exact_seconds)
        .collect();
    let pool: Vec<&TradeoffPoint> = if cheap.is_empty() {
        points.iter().collect()
    } else {
        cheap
    };
    if pool.is_empty() {
        return;
    }
    let geo_mean =
        (pool.iter().map(|p| p.accuracy.max(1e-12).ln()).sum::<f64>() / pool.len() as f64).exp();
    if higher_is_better {
        println!("==> mean correlation within the 1% time budget: {geo_mean:.3}\n");
    } else {
        println!("==> geometric-mean relative error within the 1% time budget: {geo_mean:.3}\n");
    }
}
