//! Dynamic-graph maintenance vs per-round recompute, recorded.
//!
//! The maintenance path keeps a (q, k) quasi-stable coloring alive under
//! sustained edge churn: per round, ~1% of the edges are deleted and the
//! same number inserted through `GraphDelta`, the batch is patched into
//! the running `RothkoRun` (`apply_edge_batch`: engine accumulators, pair
//! summaries and witness rows in `O(touched)`, no graph traversal), and
//! `maintain()` re-establishes the error target by splitting only where
//! the batch pushed the error above it. The baseline recomputes from
//! scratch each round: a fresh engine and a fresh greedy run on the same
//! compacted graph to the same error target.
//!
//! Two invariants are asserted every round (what makes maintenance
//! trustworthy):
//!
//! * the maintained coloring is **bit-identical** to a fresh run *resumed
//!   from the pre-batch coloring* on the compacted graph — the patched
//!   engine state provably equals a freshly built one (unit weights: all
//!   arithmetic exact);
//! * thread counts agree: the maintained colorings at `threads = 1` and
//!   `threads = 4` are identical at every round.
//!
//! The headline (10k-node Barabási–Albert, 200-color target error, 1%
//! churn per round) is recorded in `BENCH_dynamic.json` with a ≥ 3×
//! maintain-vs-recompute bar — the speedup is algorithmic (a handful of
//! splits against a full 200-split rerun plus engine rebuild), so the bar
//! holds on any host. CI runs `--smoke` (small instance, equivalence
//! asserts, maintain-faster-than-recompute sanity bar, no JSON).
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_dynamic
//! [-- --smoke] [--churn F] [--rounds R] [--threads T]`.

use qsc_bench::arg_value;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{generators, Graph, GraphDelta};
use rand::prelude::*;
use std::time::Instant;

/// Deterministic churn source: deletes existing edges and inserts fresh
/// unit-weight ones, tracking the live edge list.
struct Churner {
    delta: GraphDelta,
    edges: Vec<(u32, u32)>,
    rng: StdRng,
}

impl Churner {
    fn new(g: Graph, seed: u64) -> Self {
        let edges = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        Churner {
            delta: GraphDelta::new(g),
            edges,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Delete `ops` random edges and insert `ops` fresh ones, returning
    /// the drained event batch and the compacted post-batch graph.
    fn churn(&mut self, ops: usize) -> (Vec<EdgeEvent>, Graph) {
        let n = self.delta.num_nodes();
        for _ in 0..ops {
            let i = self.rng.random_range(0..self.edges.len());
            let (u, v) = self.edges.swap_remove(i);
            self.delta.delete_edge(u, v).expect("tracked edge exists");
        }
        for _ in 0..ops {
            loop {
                let u = self.rng.random_range(0..n) as u32;
                let v = self.rng.random_range(0..n) as u32;
                if u != v && !self.delta.has_edge(u, v) {
                    self.delta.insert_edge(u, v, 1.0).expect("fresh edge");
                    self.edges.push((u, v));
                    break;
                }
            }
        }
        let events = self.delta.drain_events();
        let compacted = self.delta.compact();
        (events, compacted)
    }
}

/// One maintained run plus its per-round timings.
struct Maintained<'g> {
    run: RothkoRun<'g>,
    threads: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_dynamic: edge-churn maintenance vs per-round recompute");
        println!("  --smoke      small instance, equivalence asserts only (CI)");
        println!("  --churn F    fraction of edges deleted+inserted per round (default 0.01)");
        println!("  --rounds R   churn rounds (default 8)");
        println!("  --threads T  engine threads for the maintained run (default 1; 4 is always cross-checked)");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let churn: f64 = arg_value(&args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let rounds: usize = arg_value(&args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 8 });
    let extra_threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let (n, colors) = if smoke {
        (2_000usize, 64usize)
    } else {
        (10_000, 200)
    };
    let g = generators::barabasi_albert(n, 4, 7);
    let m = g.num_edges();
    let ops = ((m as f64 * churn).round() as usize).max(1);

    // Probe the error the budgeted run reaches: that error is the `q` of
    // the (q, k) invariant maintenance must re-establish every round.
    let probe = Rothko::new(RothkoConfig::with_max_colors(colors)).run(&g);
    let q = probe.max_q_error;
    println!(
        "instance: barabasi_albert n={n} m={m}, {colors}-color probe error q={q} \
         ({ops} deletes + {ops} inserts per round)"
    );
    let config = RothkoConfig {
        max_colors: usize::MAX,
        target_error: q,
        ..Default::default()
    };

    // Maintained runs at thread counts {1, extra}: identical colorings
    // required at every round.
    let mut thread_counts = vec![1usize];
    if extra_threads > 1 {
        thread_counts.push(extra_threads);
    } else {
        thread_counts.push(4);
    }
    let mut maintained: Vec<Maintained> = thread_counts
        .iter()
        .map(|&t| {
            let mut run = Rothko::new(config.clone().threads(t)).start(&g);
            run.maintain();
            Maintained { run, threads: t }
        })
        .collect();

    let mut churner = Churner::new(g.clone(), 0x1157);
    let mut rows: Vec<String> = Vec::new();
    let mut maintain_total = 0.0f64;
    let mut recompute_total = 0.0f64;
    let mut worst_round_speedup = f64::INFINITY;

    for round in 0..rounds {
        let (events, compacted) = churner.churn(ops);

        // Maintenance: patch + invariant-restoring splits, per thread count
        // (the first, serial run is the timed one).
        let mut maintain_seconds = 0.0;
        let mut splits = 0usize;
        let mut assignments: Vec<Vec<u32>> = Vec::new();
        let mut prebatch: Option<qsc_core::Partition> = None;
        for (idx, me) in maintained.iter_mut().enumerate() {
            // Each run takes ownership of the compacted graph; the copy is
            // made outside the timed section (the recompute baseline gets
            // the graph for free too).
            let own = compacted.clone();
            let start = Instant::now();
            me.run.apply_edge_batch(own, &events);
            if idx == 0 {
                prebatch = Some(me.run.partition().clone());
            }
            let s = me.run.maintain();
            let elapsed = start.elapsed().as_secs_f64();
            if idx == 0 {
                maintain_seconds = elapsed;
                splits = s;
            }
            assignments.push(me.run.partition().canonical_assignment());
        }
        assert!(
            assignments.windows(2).all(|w| w[0] == w[1]),
            "round {round}: maintained colorings differ across thread counts"
        );

        // Equivalence: a fresh run resumed from the pre-batch coloring on
        // the compacted graph must reproduce the maintained coloring
        // bit-for-bit (excluded from the timings).
        let resume_config = RothkoConfig {
            initial: prebatch,
            ..config.clone()
        };
        let mut resumed = Rothko::new(resume_config).start(&compacted);
        resumed.maintain();
        assert!(
            maintained[0].run.partition().same_as(resumed.partition()),
            "round {round}: maintained coloring differs from a fresh run resumed on the compacted graph"
        );

        // Baseline: recompute the coloring from scratch on the same graph
        // to the same invariant.
        let start = Instant::now();
        let mut recompute = Rothko::new(config.clone()).start(&compacted);
        recompute.maintain();
        let recompute_seconds = start.elapsed().as_secs_f64();

        let speedup = recompute_seconds / maintain_seconds;
        worst_round_speedup = worst_round_speedup.min(speedup);
        maintain_total += maintain_seconds;
        recompute_total += recompute_seconds;
        println!(
            "round {round}: maintain {:.4}s ({splits} splits, {} colors) vs recompute {:.4}s ({} colors) — {speedup:.1}x",
            maintain_seconds,
            maintained[0].run.partition().num_colors(),
            recompute_seconds,
            recompute.partition().num_colors(),
        );
        rows.push(format!(
            "{{\"round\":{round},\"events\":{},\"maintain_seconds\":{maintain_seconds:.6},\"recompute_seconds\":{recompute_seconds:.6},\"speedup\":{speedup:.3},\"maintained_splits\":{splits},\"maintained_colors\":{},\"recomputed_colors\":{}}}",
            events.len(),
            maintained[0].run.partition().num_colors(),
            recompute.partition().num_colors(),
        ));
    }

    let headline = recompute_total / maintain_total;
    println!(
        "total: maintain {maintain_total:.4}s vs recompute {recompute_total:.4}s — {headline:.1}x \
         (worst round {worst_round_speedup:.1}x; colorings bit-identical across rounds and threads {:?})",
        maintained.iter().map(|m| m.threads).collect::<Vec<_>>()
    );

    if smoke {
        assert!(
            maintain_total < recompute_total,
            "maintenance ({maintain_total:.4}s) did not beat per-round recompute ({recompute_total:.4}s)"
        );
        println!("smoke OK (no JSON, lenient maintain-beats-recompute bar)");
        return;
    }

    rows.push(format!(
        "{{\"summary\":\"maintain_vs_recompute\",\"graph\":\"barabasi_albert\",\"nodes\":{n},\"edges\":{m},\"probe_colors\":{colors},\"target_error\":{q},\"churn\":{churn},\"rounds\":{rounds},\"headline_speedup\":{headline:.3},\"worst_round_speedup\":{worst_round_speedup:.3},\"bit_identical_to_resumed_fresh_run\":true,\"threads_cross_checked\":{:?}}}",
        maintained.iter().map(|m| m.threads).collect::<Vec<_>>()
    ));
    std::fs::write("BENCH_dynamic.json", rows.join("\n") + "\n")
        .expect("failed to write BENCH_dynamic.json");
    println!("wrote BENCH_dynamic.json (headline {headline:.2}x)");
    assert!(
        headline >= 3.0,
        "maintain-vs-recompute speedup {headline:.2}x below the 3x acceptance bar"
    );
}
