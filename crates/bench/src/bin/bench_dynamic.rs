//! Dynamic-graph maintenance vs per-round recompute, recorded.
//!
//! Two scenarios, both against the same (q, k) invariant:
//!
//! * **Edge churn** — per round, ~1% of the edges are deleted and the same
//!   number inserted through `GraphDelta`, the batch is patched into the
//!   running `RothkoRun` (`apply_edge_batch`: engine accumulators, pair
//!   summaries and witness rows in `O(touched)`, no graph traversal), and
//!   `maintain()` re-establishes the error target by splitting only where
//!   the batch pushed the error above it.
//! * **Node churn + coarsening** — per round, ~1% of the *nodes* are
//!   inserted (wired to random neighbors, colored like their first
//!   neighbor) and the same number removed (incident edges deleted, node
//!   axis renumbered through `compact_renumber`), flowing through
//!   `apply_node_batch`; maintenance runs with `coarsen: true`, so the run
//!   can also *merge* colors back when churn lowers the error. A final
//!   cooldown round deletes edges until the error drops and asserts that
//!   `k` demonstrably shrinks (merges > 0) — the bidirectional half of the
//!   event algebra.
//!
//! The baseline recomputes from scratch each round: a fresh engine and a
//! fresh greedy run on the same compacted graph to the same target.
//!
//! Invariants asserted every round (what makes maintenance trustworthy):
//!
//! * the maintained coloring is **bit-identical** to a fresh run *resumed
//!   from the post-batch coloring* on the compacted graph (unit weights:
//!   all arithmetic exact);
//! * thread counts agree: the maintained colorings at `threads = 1` and
//!   `threads = 4` are identical at every round.
//!
//! `BENCH_dynamic.json` records the generator/churn seed and the per-round
//! speedups for both scenarios, each with a ≥ 3× maintain-vs-recompute bar
//! — the speedup is algorithmic (a handful of splits/merges against a full
//! rerun plus engine rebuild), so the bar holds on any host. CI runs
//! `--smoke` (small instance, equivalence asserts, lenient bar, no JSON).
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_dynamic
//! [-- --smoke] [--churn F] [--rounds R] [--threads T] [--seed S]`.

use qsc_bench::arg_value;
use qsc_core::rothko::{NodeChurnBatch, Rothko, RothkoConfig, RothkoRun};
use qsc_core::Partition;
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{generators, Graph, GraphDelta};
use rand::prelude::*;
use std::time::Instant;

/// Deterministic churn source: deletes existing edges and inserts fresh
/// unit-weight ones, tracking the live edge list; also drives node churn.
struct Churner {
    delta: GraphDelta,
    edges: Vec<(u32, u32)>,
    rng: StdRng,
}

impl Churner {
    fn new(g: Graph, seed: u64) -> Self {
        let edges = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        Churner {
            delta: GraphDelta::new(g),
            edges,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Delete `ops` random edges and insert `ops` fresh ones, returning
    /// the drained event batch and the compacted post-batch graph.
    fn churn(&mut self, ops: usize) -> (Vec<EdgeEvent>, Graph) {
        let n = self.delta.num_nodes();
        for _ in 0..ops {
            let i = self.rng.random_range(0..self.edges.len());
            let (u, v) = self.edges.swap_remove(i);
            self.delta.delete_edge(u, v).expect("tracked edge exists");
        }
        for _ in 0..ops {
            loop {
                let u = self.rng.random_range(0..n) as u32;
                let v = self.rng.random_range(0..n) as u32;
                if u != v && !self.delta.has_edge(u, v) {
                    self.delta.insert_edge(u, v, 1.0).expect("fresh edge");
                    self.edges.push((u, v));
                    break;
                }
            }
        }
        let events = self.delta.drain_events();
        let compacted = self.delta.compact();
        (events, compacted)
    }

    /// Insert `ops` unit-weight-wired nodes and remove `ops` victims via
    /// the shared [`qsc_bench::random_node_churn`] driver, keeping the
    /// tracked edge list in sync with the renumbered compacted graph.
    fn churn_nodes(&mut self, p: &Partition, ops: usize, wire: usize) -> (NodeChurnBatch, Graph) {
        let (batch, compacted) =
            qsc_bench::random_node_churn(&mut self.delta, p, &mut self.rng, ops, ops, wire, |_| {
                1.0
            });
        // Re-derive the tracked edge list from the compacted graph (ids
        // were renumbered and removals dropped edges).
        self.edges = compacted.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        (batch, compacted)
    }
}

/// One maintained run plus its thread count.
struct Maintained<'g> {
    run: RothkoRun<'g>,
    threads: usize,
}

/// Per-scenario speedup accounting.
struct Tally {
    maintain_total: f64,
    recompute_total: f64,
    worst: f64,
}

impl Tally {
    fn new() -> Self {
        Tally {
            maintain_total: 0.0,
            recompute_total: 0.0,
            worst: f64::INFINITY,
        }
    }

    fn record(&mut self, maintain: f64, recompute: f64) -> f64 {
        let speedup = recompute / maintain;
        self.maintain_total += maintain;
        self.recompute_total += recompute;
        self.worst = self.worst.min(speedup);
        speedup
    }

    fn headline(&self) -> f64 {
        self.recompute_total / self.maintain_total
    }
}

/// Cross-check one maintained round: identical colorings across thread
/// counts, and bit-identical to a fresh run resumed from the post-batch
/// coloring on the compacted graph. Returns (maintain_seconds, ops) of the
/// first (timed) run.
#[allow(clippy::too_many_arguments)]
fn maintain_and_check(
    maintained: &mut [Maintained],
    compacted: &Graph,
    config: &RothkoConfig,
    scenario: &str,
    round: usize,
    apply: impl Fn(&mut RothkoRun, Graph),
) -> (f64, usize) {
    let mut maintain_seconds = 0.0;
    let mut ops = 0usize;
    let mut prebatch: Option<Partition> = None;
    let mut assignments: Vec<Vec<u32>> = Vec::new();
    for (idx, me) in maintained.iter_mut().enumerate() {
        let own = compacted.clone();
        let start = Instant::now();
        apply(&mut me.run, own);
        let apply_elapsed = start.elapsed().as_secs_f64();
        if idx == 0 {
            prebatch = Some(me.run.partition().clone());
        }
        let o = me.run.maintain();
        let elapsed = start.elapsed().as_secs_f64();
        if idx == 0 {
            maintain_seconds = elapsed;
            ops = o;
            if std::env::var_os("QSC_BENCH_PHASES").is_some() {
                eprintln!(
                    "    [{scenario} {round}] apply {apply_elapsed:.4}s maintain {:.4}s",
                    elapsed - apply_elapsed
                );
            }
        }
        assignments.push(me.run.partition().canonical_assignment());
    }
    assert!(
        assignments.windows(2).all(|w| w[0] == w[1]),
        "{scenario} round {round}: maintained colorings differ across thread counts"
    );
    let resume_config = RothkoConfig {
        initial: prebatch,
        ..config.clone()
    };
    let mut resumed = Rothko::new(resume_config).start(compacted);
    resumed.maintain();
    assert!(
        maintained[0].run.partition().same_as(resumed.partition()),
        "{scenario} round {round}: maintained coloring differs from a fresh run resumed on the compacted graph"
    );
    (maintain_seconds, ops)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_dynamic: edge/node churn maintenance vs per-round recompute");
        println!("  --smoke      small instance, equivalence asserts only (CI)");
        println!("  --churn F    fraction of edges (nodes) churned per round (default 0.01)");
        println!("  --rounds R   churn rounds per scenario (default 8)");
        println!("  --threads T  engine threads for the maintained run (default 1; 4 is always cross-checked)");
        println!("  --seed S     generator + churn seed (default 7; recorded in the JSON)");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let churn: f64 = arg_value(&args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let rounds: usize = arg_value(&args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 3 } else { 8 });
    let extra_threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let (n, colors) = if smoke {
        (2_000usize, 64usize)
    } else {
        (10_000, 200)
    };
    let g = generators::barabasi_albert(n, 4, seed);
    let m = g.num_edges();
    let ops = ((m as f64 * churn).round() as usize).max(1);

    // Probe the error the budgeted run reaches: that error is the `q` of
    // the (q, k) invariant maintenance must re-establish every round.
    let probe = Rothko::new(RothkoConfig::with_max_colors(colors)).run(&g);
    let q = probe.max_q_error;
    println!(
        "instance: barabasi_albert n={n} m={m} seed={seed}, {colors}-color probe error q={q} \
         ({ops} deletes + {ops} inserts per round)"
    );
    let config = RothkoConfig {
        max_colors: usize::MAX,
        target_error: q,
        ..Default::default()
    };
    let thread_counts = if extra_threads > 1 {
        vec![1usize, extra_threads]
    } else {
        vec![1usize, 4]
    };

    let mut rows: Vec<String> = Vec::new();

    // ---------------- Scenario 1: edge churn ----------------
    let mut maintained: Vec<Maintained> = thread_counts
        .iter()
        .map(|&t| {
            let mut run = Rothko::new(config.clone().threads(t)).start(&g);
            run.maintain();
            Maintained { run, threads: t }
        })
        .collect();
    let mut churner = Churner::new(g.clone(), seed ^ 0x1157);
    let mut edge_tally = Tally::new();
    for round in 0..rounds {
        let (events, compacted) = churner.churn(ops);
        let (maintain_seconds, splits) = maintain_and_check(
            &mut maintained,
            &compacted,
            &config,
            "edge",
            round,
            |run, own| run.apply_edge_batch(own, &events),
        );
        let start = Instant::now();
        let mut recompute = Rothko::new(config.clone()).start(&compacted);
        recompute.maintain();
        let recompute_seconds = start.elapsed().as_secs_f64();
        let speedup = edge_tally.record(maintain_seconds, recompute_seconds);
        println!(
            "edge round {round}: maintain {maintain_seconds:.4}s ({splits} splits, {} colors) vs recompute {recompute_seconds:.4}s — {speedup:.1}x",
            maintained[0].run.partition().num_colors(),
        );
        rows.push(format!(
            "{{\"scenario\":\"edge_churn\",\"round\":{round},\"events\":{},\"maintain_seconds\":{maintain_seconds:.6},\"recompute_seconds\":{recompute_seconds:.6},\"speedup\":{speedup:.3},\"maintained_splits\":{splits},\"maintained_colors\":{}}}",
            events.len(),
            maintained[0].run.partition().num_colors(),
        ));
    }
    drop(maintained);

    // ---------------- Scenario 2: node churn + coarsening ----------------
    let node_config = RothkoConfig {
        coarsen: true,
        ..config.clone()
    };
    let node_ops = ((n as f64 * churn).round() as usize).max(1);
    let mut maintained: Vec<Maintained> = thread_counts
        .iter()
        .map(|&t| {
            let mut run = Rothko::new(node_config.clone().threads(t)).start(&g);
            run.maintain();
            Maintained { run, threads: t }
        })
        .collect();
    let mut churner = Churner::new(g.clone(), seed ^ 0x0DE5);
    let mut node_tally = Tally::new();
    // One untimed warm-up round: the first node batch pays one-time
    // allocator growth (the accumulator store reallocates when the node
    // axis first grows past its build-time capacity); the scenario
    // measures the steady state. Equivalence is still cross-checked.
    {
        let p = maintained[0].run.partition().clone();
        let (batch, compacted) = churner.churn_nodes(&p, node_ops, 4);
        maintain_and_check(
            &mut maintained,
            &compacted,
            &node_config,
            "node-warmup",
            0,
            |run, own| run.apply_node_batch(own, &batch),
        );
    }
    for round in 0..rounds {
        let p = maintained[0].run.partition().clone();
        let (batch, compacted) = churner.churn_nodes(&p, node_ops, 4);
        let (maintain_seconds, ops_done) = maintain_and_check(
            &mut maintained,
            &compacted,
            &node_config,
            "node",
            round,
            |run, own| run.apply_node_batch(own, &batch),
        );
        let start = Instant::now();
        let mut recompute = Rothko::new(node_config.clone()).start(&compacted);
        recompute.maintain();
        let recompute_seconds = start.elapsed().as_secs_f64();
        let speedup = node_tally.record(maintain_seconds, recompute_seconds);
        let merges = maintained[0].run.merges();
        println!(
            "node round {round}: maintain {maintain_seconds:.4}s ({ops_done} ops, {merges} total merges, {} colors) vs recompute {recompute_seconds:.4}s — {speedup:.1}x",
            maintained[0].run.partition().num_colors(),
        );
        rows.push(format!(
            "{{\"scenario\":\"node_churn\",\"round\":{round},\"inserted\":{},\"removed\":{},\"maintain_seconds\":{maintain_seconds:.6},\"recompute_seconds\":{recompute_seconds:.6},\"speedup\":{speedup:.3},\"maintained_ops\":{ops_done},\"maintained_colors\":{}}}",
            batch.inserted_colors.len(),
            batch.removed.len(),
            maintained[0].run.partition().num_colors(),
        ));
    }

    // ---------------- Coarsening cooldown ----------------
    // Delete edges in waves until the error drops enough for maintenance
    // to coarsen: `k` must demonstrably shrink (the final wave removes
    // every remaining edge, which forces all merge bounds to zero).
    let k_before = maintained[0].run.partition().num_colors();
    let merges_before: usize = maintained[0].run.merges();
    let mut wave = 0usize;
    loop {
        let remaining = churner.edges.len();
        let delete = if remaining <= 64 || wave >= 2 {
            remaining
        } else {
            remaining * 3 / 5
        };
        for _ in 0..delete {
            let i = churner.rng.random_range(0..churner.edges.len());
            let (u, v) = churner.edges.swap_remove(i);
            churner.delta.delete_edge(u, v).expect("tracked edge");
        }
        let events = churner.delta.drain_events();
        let compacted = churner.delta.compact();
        maintain_and_check(
            &mut maintained,
            &compacted,
            &node_config,
            "cooldown",
            wave,
            |run, own| run.apply_edge_batch(own, &events),
        );
        wave += 1;
        if maintained[0].run.merges() > merges_before || churner.edges.is_empty() {
            break;
        }
    }
    let k_after = maintained[0].run.partition().num_colors();
    let cooldown_merges = maintained[0].run.merges() - merges_before;
    println!(
        "cooldown: error-lowering churn coarsened k {k_before} -> {k_after} ({cooldown_merges} merges over {wave} wave(s))"
    );
    assert!(
        cooldown_merges > 0 && k_after < k_before,
        "coarsening cooldown failed to shrink k ({k_before} -> {k_after})"
    );

    let edge_headline = edge_tally.headline();
    let node_headline = node_tally.headline();
    println!(
        "edge churn: maintain {:.4}s vs recompute {:.4}s — {edge_headline:.1}x (worst round {:.1}x)",
        edge_tally.maintain_total, edge_tally.recompute_total, edge_tally.worst
    );
    println!(
        "node churn: maintain {:.4}s vs recompute {:.4}s — {node_headline:.1}x (worst round {:.1}x)",
        node_tally.maintain_total, node_tally.recompute_total, node_tally.worst
    );

    if smoke {
        assert!(
            edge_tally.maintain_total < edge_tally.recompute_total,
            "edge maintenance did not beat per-round recompute"
        );
        // The node scenario asserts only its correctness cross-checks in
        // smoke mode: at smoke scale a from-scratch run costs about as
        // much as one round's node-axis maintenance, so a timing bar
        // would flake — the full benchmark enforces the ≥3× bar.
        println!("smoke OK (no JSON, lenient edge bar, node equivalence asserts only)");
        return;
    }

    rows.push(format!(
        "{{\"summary\":\"maintain_vs_recompute\",\"graph\":\"barabasi_albert\",\"nodes\":{n},\"edges\":{m},\"seed\":{seed},\"probe_colors\":{colors},\"target_error\":{q},\"churn\":{churn},\"rounds\":{rounds},\"edge_headline_speedup\":{edge_headline:.3},\"edge_worst_round_speedup\":{:.3},\"node_headline_speedup\":{node_headline:.3},\"node_worst_round_speedup\":{:.3},\"cooldown_k_before\":{k_before},\"cooldown_k_after\":{k_after},\"cooldown_merges\":{cooldown_merges},\"bit_identical_to_resumed_fresh_run\":true,\"threads_cross_checked\":{:?},\"host_cpus\":{},\"peak_rss_bytes\":{},\"bar_enforced\":true}}",
        edge_tally.worst,
        node_tally.worst,
        maintained.iter().map(|m| m.threads).collect::<Vec<_>>(),
        qsc_bench::host_cpus(),
        qsc_bench::peak_rss_json()
    ));
    std::fs::write("BENCH_dynamic.json", rows.join("\n") + "\n")
        .expect("failed to write BENCH_dynamic.json");
    println!("wrote BENCH_dynamic.json (edge {edge_headline:.2}x, node {node_headline:.2}x)");
    assert!(
        edge_headline >= 3.0,
        "edge maintain-vs-recompute speedup {edge_headline:.2}x below the 3x acceptance bar"
    );
    assert!(
        node_headline >= 3.0,
        "node maintain-vs-recompute speedup {node_headline:.2}x below the 3x acceptance bar"
    );
}
