//! E-TAB5: characteristics of the compressed LP constraint matrices
//! (Table 5): reduced rows/columns/non-zeros, compression ratio and relative
//! error at color budgets 5 / 10 / 50 / 100.

use qsc_bench::{render_table, timed};
use qsc_datasets::Scale;
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::simplex;

const COLOR_BUDGETS: &[usize] = &[5, 10, 50, 100];

fn main() {
    println!("Table 5 — compressed LP constraint matrices");
    println!();
    let mut rows = Vec::new();
    for spec in qsc_datasets::lp_datasets() {
        let lp = qsc_datasets::load_lp(spec.name, Scale::Full).unwrap();
        let (exact, _) =
            timed(|| interior_point::solve_with(&lp, &InteriorPointConfig::default()).0);
        for &colors in COLOR_BUDGETS {
            let reduced = reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(colors),
                LpReductionVariant::SqrtNormalized,
            );
            let solution = simplex::solve(&reduced.problem);
            let rel = if solution.objective > 0.0 && exact.objective > 0.0 {
                (solution.objective / exact.objective).max(exact.objective / solution.objective)
            } else {
                f64::INFINITY
            };
            rows.push(vec![
                spec.name.to_string(),
                colors.to_string(),
                reduced.num_rows().to_string(),
                reduced.num_cols().to_string(),
                reduced.problem.num_nonzeros().to_string(),
                format!("{:.0}x", reduced.compression_ratio(&lp)),
                format!("{:.2}", rel),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "colors",
                "rows",
                "cols",
                "non-zeros",
                "compression",
                "rel. error"
            ],
            &rows
        )
    );
    println!("paper shape: a handful of colors gives 4-6 orders of magnitude compression with");
    println!("large error; 50-100 colors keep 2-3 orders of magnitude compression at small error.");
}
