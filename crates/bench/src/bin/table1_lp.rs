//! E-TAB1-bot: runtime to reach a target LP relative error (Table 1, bottom).
//!
//! For each LP dataset: the time our coloring-based reduction needs to reach
//! relative error ∈ {3.0, 2.0, 1.5}, the time the early-stopped
//! interior-point baseline needs, and the exact solve time.

use qsc_bench::{render_table, timed};
use qsc_datasets::Scale;
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::simplex;

const TARGETS: &[f64] = &[3.0, 2.0, 1.5];
const TIMEOUT_SECONDS: f64 = 120.0;

fn main() {
    let scale = Scale::Full;
    println!("Table 1 (bottom) — linear optimization: seconds to reach target relative error");
    println!("(x = did not reach the target within the sweep budget)");
    println!();
    let mut rows = Vec::new();
    for spec in qsc_datasets::lp_datasets() {
        let lp = qsc_datasets::load_lp(spec.name, scale).unwrap();
        let (exact, exact_secs) =
            timed(|| interior_point::solve_with(&lp, &InteriorPointConfig::default()).0);
        let mut row = vec![spec.name.to_string()];
        for &target in TARGETS {
            row.push(ours_time_to_target(&lp, exact.objective, target));
            row.push(early_stop_time_to_target(&lp, exact.objective, target));
        }
        row.push(format!("{exact_secs:.2}"));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "ours 3.0",
                "prior 3.0",
                "ours 2.0",
                "prior 2.0",
                "ours 1.5",
                "prior 1.5",
                "exact"
            ],
            &rows
        )
    );
    println!("paper shape: the coloring reduction reaches each target orders of magnitude");
    println!("faster than early-stopping the interior-point solver.");
}

fn relative_error(exact: f64, approx: f64) -> f64 {
    if exact <= 0.0 || approx <= 0.0 {
        return f64::INFINITY;
    }
    (exact / approx).max(approx / exact)
}

fn ours_time_to_target(lp: &qsc_lp::LpProblem, exact: f64, target: f64) -> String {
    let mut spent = 0.0;
    for budget in [5usize, 10, 20, 40, 80, 150] {
        let (value, secs) = timed(|| {
            let reduced = reduce_with_rothko(
                lp,
                &LpColoringConfig::with_max_colors(budget),
                LpReductionVariant::SqrtNormalized,
            );
            simplex::solve(&reduced.problem).objective
        });
        spent += secs;
        if relative_error(exact, value) <= target {
            return format!("{secs:.3}");
        }
        if spent > TIMEOUT_SECONDS {
            break;
        }
    }
    "x".to_string()
}

fn early_stop_time_to_target(lp: &qsc_lp::LpProblem, exact: f64, target: f64) -> String {
    let (solution, secs) = timed(|| {
        interior_point::solve_with(
            lp,
            &InteriorPointConfig {
                stop_at_relative_error: Some(target),
                ..Default::default()
            },
        )
        .0
    });
    if relative_error(exact, solution.objective) <= target * 1.05 {
        format!("{secs:.3}")
    } else {
        "x".to_string()
    }
}
