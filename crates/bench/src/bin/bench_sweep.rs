//! Warm-started sweep pipeline vs. per-budget cold pipeline, recorded.
//!
//! Runs a Fig. 7-style color-budget sweep two ways and compares end-to-end
//! wall time and results:
//!
//! * **cold** — the pre-sweep pipeline: for every budget, a fresh Rothko
//!   coloring, a from-scratch reduced instance, and a cold solve
//!   (`approximate_max_flow` / `reduce_with_rothko` + `simplex::solve`);
//! * **warm** — the sweep pipeline (`sweep_max_flow` / `sweep_lp`): one
//!   refinement checkpointed per budget, reductions patched per split,
//!   solvers resumed from the previous budget's solution.
//!
//! The flow instance uses quarter-integer capacities, so all arithmetic is
//! exact and the warm/cold flow values must be **bit-identical**; LP
//! objectives must agree within `1e-9` relative (the reduced problems are
//! equal up to color numbering and float associativity). Violations abort.
//!
//! Full mode writes `BENCH_sweep.json` and asserts the ≥3× speedup bar on
//! the 10k-node flow headline; `--smoke` runs tiny instances (equality
//! checks only, no file, no bar) for CI.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_sweep [-- --smoke]
//! [--threads T] [--batch B]` — `--threads` drives every coloring engine in
//! the pipeline through the parallel sharded paths (via `QSC_THREADS`;
//! results are bit-identical by construction, so all equality assertions
//! still hold). `--batch` is accepted for symmetry with the other drivers
//! but only `1` is valid here: the warm/cold equivalence this benchmark
//! asserts is defined by the strict greedy split order, which batched
//! rounds intentionally relax.

use qsc_bench::{host_cpus, measure_rounds, Measurement};
use qsc_flow::reduce::{approximate_max_flow, FlowApproxConfig};
use qsc_flow::sweep::sweep_max_flow;
use qsc_flow::FlowNetwork;
use qsc_graph::GraphBuilder;
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::sweep::sweep_lp;
use qsc_lp::{simplex, LpProblem};

/// The benchmark's budget ladder: the Fig. 7 budgets (`DEFAULT_BUDGETS`)
/// refined to the Fig. 8-style curve resolution the sweep pipeline makes
/// affordable — every point costs the cold path a full recolor + rebuild +
/// resolve, while the warm path pays only the delta from the previous
/// budget.
const BUDGETS: &[usize] = &[5, 10, 15, 20, 30, 40, 50, 60, 80, 100, 120, 150];

struct Row {
    task: &'static str,
    instance: String,
    nodes: usize,
    budgets: usize,
    cold: Measurement<Vec<f64>>,
    warm_seconds: f64,
    warm_rounds: String,
    max_rel_diff: f64,
    bit_identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold.best() / self.warm_seconds
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"task\":\"{}\",\"instance\":\"{}\",\"nodes\":{},\"budgets\":{},\"cold_seconds\":{:.6},\"cold_rounds\":{},\"warm_seconds\":{:.6},\"warm_rounds\":{},\"speedup\":{:.2},\"max_rel_diff\":{:.3e},\"bit_identical\":{}}}",
            self.task,
            self.instance,
            self.nodes,
            self.budgets,
            self.cold.best(),
            self.cold.rounds_json(),
            self.warm_seconds,
            self.warm_rounds,
            self.speedup(),
            self.max_rel_diff,
            self.bit_identical
        )
    }

    fn print(&self) {
        println!(
            "{:8} {:24} n={:6} cold {:.4}s warm {:.4}s speedup {:.1}x (max rel diff {:.1e}, bit-identical: {})",
            self.task,
            self.instance,
            self.nodes,
            self.cold.best(),
            self.warm_seconds,
            self.speedup(),
            self.max_rel_diff,
            self.bit_identical
        );
    }
}

/// A vision-style grid network with capacities snapped to quarter-integers
/// (exactly representable, so flow sums are order-independent and warm vs.
/// cold values can be compared bit-for-bit).
fn quarter_integer_grid(width: usize, height: usize, seed: u64) -> FlowNetwork {
    let (net, _) = qsc_flow::generators::grid_flow_network(width, height, 3.0, 0.25, seed);
    let mut b = GraphBuilder::new_directed(net.num_nodes());
    for (u, v, w) in net.graph.arcs() {
        b.add_edge(u, v, ((w * 4.0).round()).max(1.0) / 4.0);
    }
    FlowNetwork::new(b.build(), net.source, net.sink)
}

fn flow_row(width: usize, height: usize, budgets: &[usize], reps: usize) -> Row {
    let net = quarter_integer_grid(width, height, 42);
    let cold = measure_rounds(reps, || {
        budgets
            .iter()
            .map(|&b| approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(b)).value)
            .collect::<Vec<f64>>()
    });
    let warm = measure_rounds(reps, || sweep_max_flow(&net, budgets, 0.0));
    let points = &warm.value;
    let mut max_rel_diff = 0.0f64;
    let mut bit_identical = true;
    for (point, &cold) in points.iter().zip(cold.value.iter()) {
        let diff = (point.value - cold).abs();
        max_rel_diff = max_rel_diff.max(diff / (1.0 + cold.abs()));
        if point.value.to_bits() != cold.to_bits() {
            bit_identical = false;
        }
    }
    assert!(
        bit_identical,
        "quarter-integer capacities must give bit-identical warm/cold flow values"
    );
    Row {
        task: "maxflow",
        instance: format!("grid-{width}x{height}-qint"),
        nodes: net.num_nodes(),
        budgets: budgets.len(),
        cold,
        warm_seconds: warm.best(),
        warm_rounds: warm.rounds_json(),
        max_rel_diff,
        bit_identical,
    }
}

fn lp_row(lp: &LpProblem, label: &str, budgets: &[usize], reps: usize) -> Row {
    let cold = measure_rounds(reps, || {
        budgets
            .iter()
            .map(|&b| {
                let reduced = reduce_with_rothko(
                    lp,
                    &LpColoringConfig::with_max_colors(b),
                    LpReductionVariant::SqrtNormalized,
                );
                simplex::solve(&reduced.problem).objective
            })
            .collect::<Vec<f64>>()
    });
    let warm = measure_rounds(reps, || {
        sweep_lp(
            lp,
            budgets,
            &LpColoringConfig::with_max_colors(usize::MAX),
            LpReductionVariant::SqrtNormalized,
        )
    });
    let points = &warm.value;
    let mut max_rel_diff = 0.0f64;
    let mut bit_identical = true;
    for (point, &cold) in points.iter().zip(cold.value.iter()) {
        let rel = (point.objective - cold).abs() / (1.0 + cold.abs());
        max_rel_diff = max_rel_diff.max(rel);
        if point.objective.to_bits() != cold.to_bits() {
            bit_identical = false;
        }
        assert!(
            rel <= 1e-9,
            "LP objectives diverged at budget {}: warm {} vs cold {}",
            point.budget,
            point.objective,
            cold
        );
    }
    Row {
        task: "lp",
        instance: label.to_string(),
        nodes: lp.num_rows() + lp.num_cols(),
        budgets: budgets.len(),
        cold,
        warm_seconds: warm.best(),
        warm_rounds: warm.rounds_json(),
        max_rel_diff,
        bit_identical,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_sweep: warm-started sweep pipeline vs per-budget cold pipeline");
        println!("  --smoke      tiny instances, equality checks only (CI)");
        println!("  --threads T  engine worker threads for every coloring in the pipeline");
        println!("  --batch B    accepted for driver symmetry; must be 1 (see module docs)");
        return;
    }
    if let Some(t) = qsc_bench::arg_value(&args, "--threads") {
        // The sweep pipeline builds its Rothko configs inside qsc-flow /
        // qsc-lp; the engine's QSC_THREADS default is the supported way to
        // reach them all. Safe: set before any engine exists.
        std::env::set_var("QSC_THREADS", t);
    }
    if let Some(b) = qsc_bench::arg_value(&args, "--batch") {
        assert_eq!(
            b, "1",
            "bench_sweep requires batch=1: its warm/cold equivalence is defined by the strict greedy order"
        );
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    if smoke {
        println!("bench_sweep --smoke: tiny instances, equality checks only");
        let flow = flow_row(12, 12, &[4, 6, 9, 14], 1);
        flow.print();
        let lp = qsc_datasets::load_lp("qap15", qsc_datasets::Scale::Small).unwrap();
        let lp_result = lp_row(&lp, "qap15-small", &[6, 10, 16], 1);
        lp_result.print();
        println!("smoke OK: warm sweep matches the cold path on both tasks");
        return;
    }

    // Headline: Fig. 7-style budget sweep on a 10k-node grid instance.
    let flow = flow_row(100, 100, BUDGETS, 3);
    flow.print();

    let lp = qsc_lp::generators::block_lp(&qsc_lp::generators::BlockLpSpec {
        name: "sweep-bench-block".into(),
        block_rows: 8,
        block_cols: 6,
        rows_per_block: 40,
        cols_per_block: 30,
        density: 0.35,
        noise: 0.05,
        seed: 17,
    });
    let lp_result = lp_row(&lp, "block-320x180", BUDGETS, 3);
    lp_result.print();

    let rows = [flow, lp_result];
    let mut json: Vec<String> = rows.iter().map(Row::to_json).collect();
    let headline = &rows[0];
    // Warm vs cold compares two serial pipelines, so the bar holds on any
    // host — always enforced.
    json.push(format!(
        "{{\"summary\":\"warm_vs_cold\",\"host_cpus\":{},\"peak_rss_bytes\":{},\"headline_speedup\":{:.2},\"bar_enforced\":true}}",
        host_cpus(),
        qsc_bench::peak_rss_json(),
        headline.speedup()
    ));
    std::fs::write("BENCH_sweep.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");

    assert!(
        headline.speedup() >= 3.0,
        "warm sweep speedup {:.1}x below the 3x acceptance bar",
        headline.speedup()
    );
}
