//! E-TAB3: LP dataset summary (Table 3) — paper sizes vs. stand-in sizes.

use qsc_bench::render_table;
use qsc_datasets::Scale;

fn main() {
    println!("Table 3 — linear programs used for evaluation (paper sizes vs. stand-in sizes)");
    println!();
    let mut rows = Vec::new();
    for spec in qsc_datasets::lp_datasets() {
        let lp = qsc_datasets::load_lp(spec.name, Scale::Full).unwrap();
        rows.push(vec![
            spec.name.to_string(),
            spec.paper_rows.to_string(),
            spec.paper_cols.to_string(),
            spec.paper_nonzeros.to_string(),
            format!("{} min", spec.paper_solve_minutes),
            lp.num_rows().to_string(),
            lp.num_cols().to_string(),
            lp.num_nonzeros().to_string(),
            spec.stand_in.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "paper rows",
                "paper cols",
                "paper nnz",
                "paper solve",
                "ours rows",
                "ours cols",
                "ours nnz",
                "stand-in"
            ],
            &rows
        )
    );
}
