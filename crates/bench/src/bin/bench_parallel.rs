//! Parallel sharded refinement: scaling curves and determinism, recorded.
//!
//! Runs the Rothko step loop (the 10k-node Barabási–Albert / 200-color
//! headline of `BENCH_rothko.json`) under the parallel engine at thread
//! counts {1, 2, 4, 8} with batched witness rounds, plus the pinned serial
//! configuration `threads = 1, batch = 1`, and records the curve in
//! `BENCH_parallel.json`.
//!
//! Two invariants are asserted on every run (they are what makes the
//! parallel engine trustworthy):
//!
//! * the `threads = 1, batch = 1` configuration is **bit-identical** to the
//!   default serial engine — same coloring, same witness sequence;
//! * every thread count produces the **same coloring and witness sequence**
//!   at the same batch size (the sharded phases reduce with exact merges).
//!
//! The ≥2.5× speedup bar for `threads = 4` vs `threads = 1` is asserted
//! only when the host actually has ≥ 4 CPUs (`available_parallelism`):
//! wall-clock parallel speedup is physically impossible on fewer cores, so
//! on smaller hosts the bar is recorded as skipped (the JSON carries
//! `host_cpus` and `bar_enforced` so readers can tell). CI runs only the
//! `--smoke` determinism checks (shared runners make wall-clock bars
//! flaky); run the full benchmark on dedicated multi-core hardware to
//! (re)validate the scaling bar.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_parallel
//! [-- --smoke] [--batch B] [--seed S]`. `--smoke` uses a small instance
//! and checks determinism only (no file, no bar); `--batch` overrides the
//! batched rounds' size (default 8); `--seed` feeds the graph generator
//! and is recorded in the JSON so curves are reproducible. `--help`
//! prints the flags.

use qsc_bench::arg_value;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_graph::generators;
use std::time::Instant;

/// One measured configuration: the coloring, the witness sequence (split
/// color, other color, direction triples) and the best step-loop seconds.
struct Outcome {
    threads: usize,
    batch: usize,
    assignment: Vec<u32>,
    witnesses: Vec<(u32, u32, bool)>,
    seconds: f64,
    rounds: Vec<f64>,
}

fn drive(run: &mut RothkoRun) -> Vec<(u32, u32, bool)> {
    let mut witnesses = Vec::new();
    while run.step() {
        for w in run.last_round_witnesses() {
            witnesses.push((w.split_color, w.other_color, w.outgoing));
        }
    }
    witnesses
}

/// Best-of-`reps` step-loop wall time for one configuration (engine
/// construction excluded — the curve measures the refinement loop).
fn measure(g: &qsc_graph::Graph, config: &RothkoConfig, reps: usize) -> Outcome {
    let mut rounds = Vec::with_capacity(reps);
    let mut assignment = Vec::new();
    let mut witnesses = Vec::new();
    for _ in 0..reps {
        let rothko = Rothko::new(config.clone());
        let mut run = rothko.start(g);
        let start = Instant::now();
        let wit = drive(&mut run);
        rounds.push(start.elapsed().as_secs_f64());
        assignment = run.partition().canonical_assignment();
        witnesses = wit;
    }
    Outcome {
        threads: config.threads.unwrap_or(1),
        batch: config.batch,
        assignment,
        witnesses,
        seconds: rounds.iter().copied().fold(f64::INFINITY, f64::min),
        rounds,
    }
}

/// The per-round raw timings as a JSON array fragment (shared reporting
/// convention — see `qsc_bench::Measurement::rounds_json`).
fn rounds_json(rounds: &[f64]) -> String {
    let cells: Vec<String> = rounds.iter().map(|s| format!("{s:.6}")).collect();
    format!("[{}]", cells.join(","))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_parallel: parallel sharded refinement scaling curves");
        println!("  --smoke      small instance, determinism checks only (CI)");
        println!("  --batch B    witness splits per synchronization round (default 8)");
        println!("  --threads T  extra thread count to measure besides 1/2/4/8");
        println!("  --seed S     graph generator seed (default 7; recorded in the JSON)");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let batch: usize = arg_value(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let extra_threads: Option<usize> = arg_value(&args, "--threads").and_then(|v| v.parse().ok());
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    // Best-of-3 in full mode — the shared reporting convention across the
    // bench bins (per-round raw timings are recorded alongside the best).
    let (n, colors, reps) = if smoke {
        (2_000usize, 64usize, 1usize)
    } else {
        (10_000, 200, 3)
    };
    let g = generators::barabasi_albert(n, 4, seed);
    let base = RothkoConfig::with_max_colors(colors);

    // Pinned serial baseline: threads = 1, batch = 1 must equal the default
    // engine bit-for-bit (colorings and witness sequence).
    let default_run = measure(&g, &base, 1);
    let serial = measure(&g, &base.clone().threads(1).batch(1), reps);
    assert_eq!(
        serial.assignment, default_run.assignment,
        "threads=1, batch=1 coloring differs from the default serial engine"
    );
    assert_eq!(
        serial.witnesses, default_run.witnesses,
        "threads=1, batch=1 witness sequence differs from the default serial engine"
    );
    println!(
        "serial pin OK: threads=1, batch=1 is bit-identical to the default engine ({} splits)",
        serial.witnesses.len()
    );

    let mut thread_counts = vec![1usize, 2, 4, 8];
    if let Some(t) = extra_threads {
        if !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }
    let mut outcomes = vec![serial];
    for &t in &thread_counts {
        let config = base.clone().threads(t).batch(batch);
        outcomes.push(measure(&g, &config, reps));
    }
    // Determinism across thread counts at the same batch size.
    let reference = &outcomes[1];
    for o in &outcomes[2..] {
        assert_eq!(
            o.assignment, reference.assignment,
            "coloring at threads={} differs from threads={}",
            o.threads, reference.threads
        );
        assert_eq!(
            o.witnesses, reference.witnesses,
            "witness sequence at threads={} differs from threads={}",
            o.threads, reference.threads
        );
    }
    println!(
        "determinism OK: colorings and witness sequences identical across threads {:?} at batch={batch}",
        thread_counts
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let serial_seconds = outcomes[0].seconds;
    for o in &outcomes {
        println!(
            "threads={} batch={}: {:.4}s (speedup vs serial {:.2}x)",
            o.threads,
            o.batch,
            o.seconds,
            serial_seconds / o.seconds
        );
    }

    if smoke {
        println!("smoke OK (host_cpus={host_cpus}; no JSON, no speedup bar)");
        return;
    }

    let four = outcomes
        .iter()
        .find(|o| o.threads == 4 && o.batch == batch)
        .expect("4-thread row measured");
    let one = outcomes
        .iter()
        .find(|o| o.threads == 1 && o.batch == batch)
        .expect("1-thread row measured");
    let headline = one.seconds / four.seconds;
    let bar_enforced = host_cpus >= 4;

    let mut json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"graph\":\"barabasi_albert\",\"nodes\":{n},\"seed\":{seed},\"colors\":{colors},\"threads\":{},\"batch\":{},\"seconds\":{:.6},\"rounds\":{},\"speedup_vs_serial\":{:.3}}}",
                o.threads,
                o.batch,
                o.seconds,
                rounds_json(&o.rounds),
                serial_seconds / o.seconds
            )
        })
        .collect();
    let peak_rss = qsc_bench::peak_rss_json();
    json.push(format!(
        "{{\"summary\":\"threads4_vs_threads1\",\"batch\":{batch},\"seed\":{seed},\"host_cpus\":{host_cpus},\"peak_rss_bytes\":{peak_rss},\"headline_speedup\":{headline:.3},\"bar_enforced\":{bar_enforced},\"bit_identical_across_threads\":true,\"serial_pin_bit_identical\":true}}"
    ));
    std::fs::write("BENCH_parallel.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_parallel.json");
    println!(
        "wrote BENCH_parallel.json (headline {headline:.2}x at 4 threads, host_cpus={host_cpus})"
    );

    if bar_enforced {
        assert!(
            headline >= 2.5,
            "parallel speedup {headline:.2}x at 4 threads below the 2.5x acceptance bar"
        );
    } else {
        println!(
            "NOTE: host has {host_cpus} CPU(s) — the >=2.5x @ 4 threads bar needs >= 4 cores \
             and is recorded as not enforced on this host"
        );
    }
}
