//! E-FIG8: accuracy as a function of the number of colors (Fig. 8).
//!
//! Same sweep as Fig. 7 but presented as accuracy vs. #colors per dataset,
//! highlighting the diminishing-returns pattern the paper reports (no task
//! needs more than ~150 colors to converge).
//!
//! Each budget list is swept warm (one coloring refinement per dataset);
//! see `qsc_bench::experiments`.
//!
//! Usage: `fig8_colors [--scale small|full] [--budgets 5,10,20,...]`
//! (budgets must be non-decreasing; default `DEFAULT_BUDGETS`).

use qsc_bench::experiments::{
    budgets_from_args, centrality_tradeoff, lp_tradeoff, maxflow_tradeoff,
};
use qsc_bench::report::TradeoffPoint;
use qsc_bench::{arg_value, render_table};
use qsc_datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = match arg_value(&args, "--scale").as_deref() {
        Some("small") => Scale::Small,
        _ => Scale::Full,
    };
    let budgets = budgets_from_args(&args);
    let budgets = budgets.as_slice();

    println!("Fig. 8(a) — max-flow accuracy vs. number of colors");
    let mut flow_points = Vec::new();
    for spec in qsc_datasets::flow_datasets().iter().take(4) {
        flow_points.extend(maxflow_tradeoff(spec.name, scale, budgets));
    }
    print_curves(&flow_points);

    println!("Fig. 8(b) — LP accuracy vs. number of colors");
    let mut lp_points = Vec::new();
    for spec in qsc_datasets::lp_datasets() {
        lp_points.extend(lp_tradeoff(spec.name, scale, budgets));
    }
    print_curves(&lp_points);

    println!("Fig. 8(c) — centrality correlation vs. number of colors");
    let mut c_points = Vec::new();
    for spec in qsc_datasets::graph_datasets() {
        if matches!(spec.task, qsc_datasets::Task::Centrality) {
            c_points.extend(centrality_tradeoff(spec.name, scale, budgets));
        }
    }
    print_curves(&c_points);
}

fn print_curves(points: &[TradeoffPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.colors.to_string(),
                format!("{:.4}", p.accuracy),
                format!("{:.2}", p.max_q_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dataset", "colors", "accuracy", "max q"], &rows)
    );
}
