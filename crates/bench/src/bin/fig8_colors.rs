//! E-FIG8: accuracy as a function of the number of colors (Fig. 8).
//!
//! Same sweep as Fig. 7 but presented as accuracy vs. #colors per dataset,
//! highlighting the diminishing-returns pattern the paper reports (no task
//! needs more than ~150 colors to converge).
//!
//! Usage: `fig8_colors [--scale small|full]`

use qsc_bench::experiments::{centrality_tradeoff, lp_tradeoff, maxflow_tradeoff};
use qsc_bench::render_table;
use qsc_bench::report::TradeoffPoint;
use qsc_datasets::Scale;

const BUDGETS: &[usize] = &[5, 10, 20, 35, 60, 100, 150];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--scale")
        && args
            .iter()
            .position(|a| a == "--scale")
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str())
            == Some("small")
    {
        Scale::Small
    } else {
        Scale::Full
    };

    println!("Fig. 8(a) — max-flow accuracy vs. number of colors");
    let mut flow_points = Vec::new();
    for spec in qsc_datasets::flow_datasets().iter().take(4) {
        flow_points.extend(maxflow_tradeoff(spec.name, scale, BUDGETS));
    }
    print_curves(&flow_points);

    println!("Fig. 8(b) — LP accuracy vs. number of colors");
    let mut lp_points = Vec::new();
    for spec in qsc_datasets::lp_datasets() {
        lp_points.extend(lp_tradeoff(spec.name, scale, BUDGETS));
    }
    print_curves(&lp_points);

    println!("Fig. 8(c) — centrality correlation vs. number of colors");
    let mut c_points = Vec::new();
    for spec in qsc_datasets::graph_datasets() {
        if matches!(spec.task, qsc_datasets::Task::Centrality) {
            c_points.extend(centrality_tradeoff(spec.name, scale, BUDGETS));
        }
    }
    print_curves(&c_points);
}

fn print_curves(points: &[TradeoffPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.colors.to_string(),
                format!("{:.4}", p.accuracy),
                format!("{:.2}", p.max_q_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dataset", "colors", "accuracy", "max q"], &rows)
    );
}
