//! E-TAB6: latency and responsiveness of the anytime Rothko algorithm
//! (Table 6): time to the first refinement, mean time between refinements,
//! and time to converge to the task's color budget, per task type.
//!
//! Driven through the sweep API ([`RothkoRun::run_to_budget`]): the run is
//! checkpointed at every intermediate color count — exactly how an
//! interactive consumer would watch a sweep converge — instead of the bare
//! step loop.

use qsc_bench::render_table;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_datasets::Scale;
use std::time::Instant;

fn main() {
    println!("Table 6 — latency and responsiveness of the Rothko algorithm");
    println!();
    let mut rows = Vec::new();

    // Linear optimization: color the extended matrix of the largest LP
    // stand-in (the coloring graph is bipartite rows x columns).
    {
        let lp = qsc_datasets::load_lp("supportcase10", Scale::Full).unwrap();
        let triplets = lp.extended_matrix_triplets();
        let m = lp.num_rows();
        let n = lp.num_cols();
        let mut builder = qsc_graph::GraphBuilder::new_directed(m + n + 2);
        for (i, j, v) in triplets {
            let col = if (j as usize) < n {
                m as u32 + 1 + j
            } else {
                (m + n + 1) as u32
            };
            let row = i;
            builder.add_edge(row, col, v);
        }
        let graph = builder.build();
        rows.push(measure(
            "linear opt.",
            &graph,
            RothkoConfig::for_linear_program(100),
        ));
    }
    // Max-flow: the largest grid stand-in.
    {
        let net = qsc_datasets::load_flow("cells", Scale::Full).unwrap();
        rows.push(measure(
            "max-flow",
            &net.graph,
            RothkoConfig::for_max_flow(35),
        ));
    }
    // Centrality: the largest social-graph stand-in.
    {
        let g = qsc_datasets::load_graph("epinions", Scale::Full).unwrap();
        rows.push(measure("centrality", &g, RothkoConfig::for_centrality(100)));
    }

    println!(
        "{}",
        render_table(
            &[
                "task",
                "time-to-first-result",
                "update frequency",
                "time to converge",
                "colors"
            ],
            &rows
        )
    );
    println!("paper shape: the first refinement lands within a second, updates arrive every");
    println!("couple of seconds, and full convergence takes seconds to a couple of minutes.");
}

fn measure(task: &str, graph: &qsc_graph::Graph, config: RothkoConfig) -> Vec<String> {
    let rothko = Rothko::new(config);
    let mut run: RothkoRun = rothko.start(graph);
    let start = Instant::now();
    let mut first = None;
    let mut updates = 0usize;
    // Checkpoint at every color count on the way to the configured budget.
    loop {
        let next = run.partition().num_colors() + 1;
        if !run.run_to_budget(next) {
            break;
        }
        updates += 1;
        if first.is_none() {
            first = Some(start.elapsed().as_secs_f64());
        }
    }
    let total = start.elapsed().as_secs_f64();
    let colors = run.partition().num_colors();
    vec![
        task.to_string(),
        format!("{:.0} ms", first.unwrap_or(total) * 1e3),
        format!(
            "{:.3} s",
            if updates > 0 {
                total / updates as f64
            } else {
                total
            }
        ),
        format!("{:.2} s", total),
        colors.to_string(),
    ]
}
