//! Zero-copy mapped checkpoints vs eager decode: the payoff of
//! [`qsc_persist::MappedStore`].
//!
//! Two claims are measured against the same version-2 (mapped raw)
//! checkpoint of the full 1M-node / 10⁷-edge rung:
//!
//! * **Open-to-first-query.** A `MappedStore` answers its first real
//!   query (the complete coloring) after O(blocks) header validation
//!   and one pass over the partition columns only — the graph CSR and
//!   accumulator planes never leave the page cache. The eager path
//!   must decode the whole file first. Bar: ≥ 50× faster. (A
//!   quotient-weight cell is also served and verified, untimed: its
//!   first touch CRCs the whole reduced matrix, a separate cost.)
//! * **Maintain throughput.** A run restored onto borrowed (mapped)
//!   columns must churn and maintain at parity with one restored onto
//!   owned columns — first write compacts the touched column to owned
//!   memory, so steady-state cost is identical. Bar: ≤ 1.15× the owned
//!   wall time, with the advanced states asserted bit-identical.
//!
//! Peak-RSS is recorded per access path by re-executing this binary as
//! a `--rss-probe` subprocess (VmHWM is monotone within a process, so
//! each probe needs its own): the mapped probe's peak resident set
//! stays bounded by the columns it touches, not the file size —
//! that is what lets a graph bigger than RAM open at all.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_mmap
//! [-- --smoke] [--nodes N] [--threads T] [--seed S]`.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use qsc_bench::arg_value;
use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_core::StorageMode;
use qsc_graph::{generators, GraphDelta};
use qsc_persist::{
    encode_checkpoint, read_checkpoint_file, CheckpointData, Layout, MappedStore, Store,
    StoreOptions, CHECKPOINT_FILE,
};
use rand::prelude::*;

/// Canonical byte encoding of a run's state (engine only; the reduced
/// lockstep is not advanced through the churn rounds).
fn run_state_bytes(run: &RothkoRun<'_>) -> Vec<u8> {
    let mut config = run.config().clone();
    config.initial = None;
    config.threads = None;
    let data = CheckpointData {
        graph: run.graph().clone(),
        config,
        run: run.snapshot(),
        reduced: None,
        wal_seq: 0,
    };
    encode_checkpoint(&data).0
}

/// Insert `ops` fresh half-integer edges, returning the drained events.
fn churn_batch(
    delta: &mut GraphDelta,
    rng: &mut StdRng,
    ops: usize,
) -> Vec<qsc_graph::delta::EdgeEvent> {
    let n = delta.num_nodes();
    for _ in 0..ops {
        for _ in 0..20 {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v && !delta.has_edge(u, v) {
                let w = (rng.random_range(1u32..9) as f64) * 0.5;
                delta.insert_edge(u, v, w).unwrap();
                break;
            }
        }
    }
    delta.drain_events()
}

/// Child mode: perform one access path against an existing store dir,
/// then report this process's peak RSS. Exits the process.
fn rss_probe_child(mode: &str, dir: &Path) -> ! {
    match mode {
        "mapped" => {
            // Open-to-first-query working set: headers + partition
            // columns + the reduced matrix cell. The CSR stays on disk.
            let store = MappedStore::open_dir(dir).expect("probe open");
            let coloring = store.coloring().expect("probe coloring");
            black_box(&coloring);
            if store.quotient_weight(0, 0).is_ok() {
                black_box(store.quotient_weight(0, 0).unwrap());
            }
        }
        "owned" => {
            // Eager path: the whole file is decoded into owned memory
            // before the first query can be answered.
            let data = read_checkpoint_file(&dir.join(CHECKPOINT_FILE)).expect("probe decode");
            black_box(&data);
        }
        other => panic!("unknown --rss-probe mode {other:?}"),
    }
    println!(
        "peak_rss_bytes={}",
        qsc_bench::peak_rss_bytes().unwrap_or(0)
    );
    std::process::exit(0);
}

/// Re-execute this binary as an `--rss-probe` child and parse its peak
/// RSS. `None` when the probe or the RSS counter is unavailable.
fn rss_probe(mode: &str, dir: &Path) -> Option<u64> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .args(["--rss-probe", mode])
        .arg(dir)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rss: u64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("peak_rss_bytes="))
        .and_then(|v| v.trim().parse().ok())?;
    (rss > 0).then_some(rss)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_mmap: zero-copy mapped checkpoint open vs eager decode restore");
        println!("  --smoke      small instance, equivalence asserts only (CI)");
        println!("  --nodes N    graph size (default 1_000_000; smoke 5_000)");
        println!("  --threads T  engine threads (default 1)");
        println!("  --seed S     generator + churn seed (default 7)");
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--rss-probe") {
        let mode = args.get(i + 1).expect("--rss-probe needs a mode").clone();
        let dir = args.get(i + 2).expect("--rss-probe needs a dir").clone();
        rss_probe_child(&mode, Path::new(&dir));
    }
    if !qsc_core::mmap::MappedFile::zero_copy_eligible() {
        println!("platform cannot serve zero-copy columns (big-endian or 32-bit); skipping");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let n: usize = arg_value(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5_000 } else { 1_000_000 });
    let (ba_m, colors) = if smoke { (4usize, 32usize) } else { (10, 2048) };

    // Untimed page-pool warmup before each timed section; see
    // bench_persist for why (lazily-populated guest memory would bill
    // first-touch faults to whichever phase allocates first).
    let warm_pages = |bytes: usize| {
        let mut pool: Vec<u8> = vec![0u8; bytes];
        for i in (0..pool.len()).step_by(4096) {
            pool[i] = 1;
        }
        std::hint::black_box(&mut pool);
    };
    let warm_bytes: usize = if smoke { 0 } else { 6 << 30 };

    let g = generators::barabasi_albert(n, ba_m, seed);
    let m = g.num_edges();
    println!(
        "instance: barabasi_albert n={n} m={m} seed={seed}, {colors} colors, {threads} thread(s)"
    );
    let config = RothkoConfig {
        max_colors: colors,
        target_error: 0.0,
        threads: Some(threads),
        storage: StorageMode::Auto,
        ..Default::default()
    };
    let mut run = Rothko::new(config.clone()).start(&g);
    run.maintain();
    let reduced = ReducedDelta::new(&g, run.partition());

    // One mapped-layout checkpoint, no WAL tail: both restore paths read
    // exactly this file.
    let dir = std::env::temp_dir().join(format!("qsc-bench-mmap-{}", std::process::id()));
    let mut store = Store::create(
        &dir,
        StoreOptions {
            layout: Layout::MappedRaw,
            ..StoreOptions::default()
        },
    )
    .expect("create store");
    let stats = store.checkpoint(&run, Some(&reduced)).expect("checkpoint");
    drop(store);
    let ckpt_path = dir.join(CHECKPOINT_FILE);
    println!(
        "checkpoint: {} bytes on disk (MappedRaw layout)",
        stats.file_bytes
    );

    // ---------------- Open-to-first-query vs eager decode ----------------
    let reps = if smoke { 1 } else { 3 };
    if warm_bytes > 0 {
        warm_pages(warm_bytes);
    }
    let mut decode_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let data = read_checkpoint_file(&ckpt_path).expect("eager decode");
        black_box(&data);
        decode_s = decode_s.min(t.elapsed().as_secs_f64());
    }
    let mut open_s = f64::INFINITY;
    let mut mapped_coloring = Vec::new();
    let mut mapped_w00 = 0.0f64;
    for _ in 0..reps {
        let t = Instant::now();
        let mstore = MappedStore::open_dir(&dir).expect("mapped open");
        mapped_coloring = mstore.coloring().expect("mapped coloring");
        open_s = open_s.min(t.elapsed().as_secs_f64());
        // Untimed: the quotient-weight cell CRCs the whole k×k reduced
        // matrix on first touch — a different query with its own cost,
        // verified for correctness below but not part of the
        // open-to-first-query claim (which is the coloring).
        mapped_w00 = mstore
            .quotient_weight(0, 0)
            .expect("mapped quotient weight");
    }
    let open_speedup = decode_s / open_s;
    println!(
        "open-to-first-query: mapped {open_s:.4}s vs eager decode {decode_s:.4}s \
         ({open_speedup:.1}x)"
    );

    // First-query answers must match the live stack exactly.
    for (v, &c) in mapped_coloring.iter().enumerate() {
        assert_eq!(
            c,
            run.partition().color_of(v as u32),
            "mapped coloring diverged at node {v}"
        );
    }
    assert_eq!(
        mapped_w00.to_bits(),
        reduced.pair_weight(0, 0).to_bits(),
        "mapped quotient weight diverged"
    );

    // ---------------- Maintain throughput: mapped vs owned ----------------
    // Both engines restore from the same file — one borrowing the mapped
    // columns (Store::recover auto-detects v2), one decoding eagerly —
    // then advance through identical churn in lockstep.
    if warm_bytes > 0 {
        warm_pages(warm_bytes);
    }
    let owned_data = read_checkpoint_file(&ckpt_path).expect("owned restore");
    let mut owned_run = RothkoRun::from_snapshot(
        owned_data.graph.clone(),
        owned_data.config.clone(),
        &owned_data.run,
    );
    let rec = Store::recover(&dir, Some(threads)).expect("mapped restore");
    let mut mapped_run = rec.run;

    let rounds = 3usize;
    let tail_ops = (m / 10_000).max(8);
    let mut delta = GraphDelta::new(owned_run.graph().clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let (mut owned_maintain_s, mut mapped_maintain_s) = (0.0f64, 0.0f64);
    for round in 0..rounds {
        let events = churn_batch(&mut delta, &mut rng, tail_ops);
        // Each engine gets its own pre-cloned compacted graph so neither
        // timed section pays a CSR copy the other does not.
        let compacted = delta.compact();
        let compacted_for_mapped = compacted.clone();
        let t = Instant::now();
        owned_run.apply_edge_batch(compacted, &events);
        owned_run.maintain();
        owned_maintain_s += t.elapsed().as_secs_f64();
        let t = Instant::now();
        mapped_run.apply_edge_batch(compacted_for_mapped, &events);
        mapped_run.maintain();
        mapped_maintain_s += t.elapsed().as_secs_f64();
        assert_eq!(
            run_state_bytes(&owned_run),
            run_state_bytes(&mapped_run),
            "owned and mapped stacks diverged after churn round {round}"
        );
    }
    let maintain_ratio = mapped_maintain_s / owned_maintain_s;
    println!(
        "maintain ({rounds} rounds of {tail_ops} ops): mapped {mapped_maintain_s:.3}s vs \
         owned {owned_maintain_s:.3}s ({maintain_ratio:.3}x)"
    );
    println!("advanced state: bit-identical between mapped and owned restores");

    // ---------------- Peak RSS per access path ----------------
    let mapped_rss = rss_probe("mapped", &dir);
    let owned_rss = rss_probe("owned", &dir);
    match (mapped_rss, owned_rss) {
        (Some(mr), Some(or)) => println!(
            "peak RSS: mapped probe {:.1} MB vs eager-decode probe {:.1} MB \
             (file {:.1} MB)",
            mr as f64 / 1e6,
            or as f64 / 1e6,
            stats.file_bytes as f64 / 1e6
        ),
        _ => println!("peak RSS: not measurable on this host"),
    }

    let _ = std::fs::remove_dir_all(&dir);

    if smoke {
        println!("smoke OK (first-query + churn equivalence asserts, no timing bars, no JSON)");
        return;
    }

    let json_rss = |v: Option<u64>| v.map_or("null".to_string(), |b| b.to_string());
    let row = format!(
        "{{\"summary\":\"mapped_checkpoint_vs_eager_decode\",\"graph\":\"barabasi_albert\",\"nodes\":{n},\"edges\":{m},\"seed\":{seed},\"colors\":{colors},\"threads\":{threads},\"checkpoint_file_bytes\":{},\"open_to_first_query_s\":{open_s:.5},\"eager_decode_s\":{decode_s:.4},\"open_speedup\":{open_speedup:.1},\"maintain_rounds\":{rounds},\"maintain_ops_per_round\":{tail_ops},\"maintain_mapped_s\":{mapped_maintain_s:.4},\"maintain_owned_s\":{owned_maintain_s:.4},\"maintain_ratio\":{maintain_ratio:.4},\"mapped_probe_peak_rss_bytes\":{},\"owned_probe_peak_rss_bytes\":{},\"bit_identical\":true,\"host_cpus\":{},\"rss_available\":{},\"bars\":{{\"open_speedup_min\":50.0,\"maintain_ratio_max\":1.15}},\"bar_enforced\":true}}",
        stats.file_bytes,
        json_rss(mapped_rss),
        json_rss(owned_rss),
        qsc_bench::host_cpus(),
        qsc_bench::rss_available()
    );
    std::fs::write("BENCH_mmap.json", row + "\n").expect("failed to write BENCH_mmap.json");
    println!(
        "wrote BENCH_mmap.json (open {open_speedup:.1}x, maintain ratio {maintain_ratio:.3}x)"
    );
    assert!(
        open_speedup >= 50.0,
        "open-to-first-query speedup {open_speedup:.1}x below the 50x bar"
    );
    assert!(
        maintain_ratio <= 1.15,
        "mapped maintain throughput {maintain_ratio:.3}x above the 1.15x bar"
    );
    if let (Some(mr), Some(or)) = (mapped_rss, owned_rss) {
        assert!(
            mr < or,
            "mapped probe peak RSS ({mr} B) not below eager-decode probe ({or} B): \
             working set is not page-cache-bounded"
        );
    }
}
