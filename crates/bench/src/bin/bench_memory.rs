//! Resident memory across the engine's storage tiers, recorded.
//!
//! Climbs a Barabási–Albert ladder (10k → 100k → 1M nodes, m = 10, so the
//! top rung carries ~10⁷ edges) at the 200-color budget and measures, per
//! [`StorageMode`]:
//!
//! * **engine resident bytes** — `IncrementalDegrees::resident_bytes`:
//!   accumulators, pair summaries, witness caches and scratch actually
//!   held by the engine (not process RSS; the whole-process `VmHWM` high
//!   water is recorded separately as `peak_rss_bytes`);
//! * **step throughput** — the budgeted refinement loop
//!   (`Rothko::run` to `k = 200`), construction included;
//! * **maintain throughput** — churn rounds against the finished coloring
//!   (~0.2% of the edges deleted + reinserted per round through
//!   `GraphDelta`, patched in with `apply_edge_batch` + `maintain()` on a
//!   `(q, ∞)` run resumed from the budgeted coloring).
//!
//! Dense engines are built only up to the 100k rung (a dense 1M × 256
//! accumulator is the 2 GB wall this benchmark exists to document); the 1M
//! rung runs sparse and reports the *analytic* dense footprint
//! (`IncrementalDegrees::projected_dense_resident_bytes` — the same
//! accounting with the accumulator tier swapped for dense `n × cap` rows).
//! The projection is validated against a real dense engine on the rungs
//! where both run.
//!
//! Asserted bars (what the tiered storage claims):
//!
//! * **≥ 4× engine resident-memory reduction** at the 1M-node headline
//!   (projected dense vs measured sparse);
//! * `Auto` — the shipped default — step+maintain wall time **≤ 1.10×
//!   dense** on every rung where dense runs: the storage knob must not
//!   tax the existing 10k / 200 throughput headline, where `Auto`
//!   resolves dense (a 20 MiB accumulator is exactly what dense rows are
//!   best at);
//! * *forced*-sparse step+maintain wall time **≤ dense** at the 100k
//!   rung (rows there hold ~20 entries against a 256-slot budget — the
//!   streaming scans flip in sparse storage's favor). On the 10k rung
//!   forced-sparse is recorded but carries no bar: per-probe cost on an
//!   LLC-resident matrix is the regime the `Auto` gate exists to avoid,
//!   and the measured ratio documents the crossover;
//! * all storage modes are **bit-identical** (colorings and q-error
//!   bits) on every rung where they run.
//!
//! CI runs `--smoke`: a small rung, both modes, the bit-identity assert
//! and the measured memory ratio — no wall-clock bars, no JSON file. The
//! full run writes `BENCH_memory.json` (one line per rung × mode plus the
//! headline summary with `host_cpus` / `peak_rss_bytes`).
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_memory
//! [-- --smoke] [--rounds R] [--churn F] [--seed S]`.

use qsc_bench::arg_value;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_core::StorageMode;
use qsc_graph::{generators, Graph, GraphDelta};
use rand::prelude::*;
use std::time::Instant;

/// One rung × storage-mode measurement.
struct Outcome {
    mode: StorageMode,
    resident_bytes: usize,
    projected_dense_bytes: usize,
    step_seconds: f64,
    maintain_seconds: f64,
    q: f64,
    assignment: Vec<u32>,
}

/// Deterministic edge churn: per round, `ops` random live edges deleted
/// and `ops` fresh unit-weight edges inserted (same seed → same event
/// sequence for every storage mode).
fn churn_round(
    delta: &mut GraphDelta,
    edges: &mut Vec<(u32, u32)>,
    rng: &mut StdRng,
    ops: usize,
) -> (Vec<qsc_graph::delta::EdgeEvent>, Graph) {
    let n = delta.num_nodes();
    for _ in 0..ops {
        let i = rng.random_range(0..edges.len());
        let (u, v) = edges.swap_remove(i);
        delta.delete_edge(u, v).expect("tracked edge exists");
    }
    for _ in 0..ops {
        loop {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v && !delta.has_edge(u, v) {
                delta.insert_edge(u, v, 1.0).expect("fresh edge");
                edges.push((u, v));
                break;
            }
        }
    }
    (delta.drain_events(), delta.compact())
}

/// Run one storage mode over one rung: the budgeted step loop (timed),
/// then `rounds` churn+maintain rounds on a `(q, ∞)` run resumed from the
/// budgeted coloring (timed), then the engine memory accounting.
fn run_mode(
    g: &Graph,
    colors: usize,
    mode: StorageMode,
    rounds: usize,
    ops: usize,
    seed: u64,
    reps: usize,
) -> Outcome {
    let budgeted = RothkoConfig::with_max_colors(colors).storage(mode);
    let mut step_seconds = f64::INFINITY;
    let mut coloring = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let c = Rothko::new(budgeted.clone()).run(g);
        step_seconds = step_seconds.min(start.elapsed().as_secs_f64());
        coloring = Some(c);
    }
    let coloring = coloring.expect("at least one step rep");
    assert_eq!(coloring.partition.num_colors(), colors);
    let q = coloring.max_q_error;

    let mut maintain_seconds = f64::INFINITY;
    let mut last_run: Option<RothkoRun> = None;
    for _ in 0..reps.max(1) {
        let maintained = RothkoConfig {
            max_colors: usize::MAX,
            target_error: q,
            initial: Some(coloring.partition.clone()),
            storage: mode,
            ..Default::default()
        };
        let mut run = Rothko::new(maintained).start(g);
        run.maintain();
        let mut delta = GraphDelta::new(g.clone());
        let mut edges: Vec<(u32, u32)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3e3);
        let start = Instant::now();
        for _ in 0..rounds {
            let (events, compacted) = churn_round(&mut delta, &mut edges, &mut rng, ops);
            run.apply_edge_batch(compacted, &events);
            run.maintain();
        }
        maintain_seconds = maintain_seconds.min(start.elapsed().as_secs_f64());
        last_run = Some(run);
    }
    let run = last_run.expect("at least one maintain rep");
    let engine = run.engine().expect("maintained runs keep an engine");
    Outcome {
        mode,
        resident_bytes: engine.resident_bytes(),
        projected_dense_bytes: engine.projected_dense_resident_bytes(),
        step_seconds,
        maintain_seconds,
        q,
        assignment: coloring.partition.canonical_assignment(),
    }
}

fn mode_name(mode: StorageMode) -> &'static str {
    match mode {
        StorageMode::Dense => "dense",
        StorageMode::Sparse => "sparse",
        StorageMode::Auto => "auto",
    }
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_memory: engine resident memory across storage tiers");
        println!("  --smoke      small rung, bit-identity + memory ratio only (CI)");
        println!("  --rounds R   churn+maintain rounds per rung (default 3)");
        println!("  --churn F    fraction of edges churned per round (default 0.002)");
        println!("  --max-nodes N  skip rungs above N nodes (iteration aid; no JSON/bars)");
        println!("  --seed S     generator + churn seed (default 7; recorded in the JSON)");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_nodes: usize = arg_value(&args, "--max-nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    let rounds: usize = arg_value(&args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let churn: f64 = arg_value(&args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    // (nodes, colors, run dense too?, step/maintain reps)
    let ladder: &[(usize, usize, bool, usize)] = if smoke {
        &[(2_000, 64, true, 1)]
    } else {
        &[
            (10_000, 200, true, 3),
            (100_000, 200, true, 1),
            (1_000_000, 200, false, 1),
        ]
    };

    let mut json: Vec<String> = Vec::new();
    let mut headline: Option<(usize, f64, usize, usize)> = None;
    let mut bars_ok = true;
    for &(n, colors, with_dense, reps) in ladder {
        if n > max_nodes {
            continue;
        }
        let g = generators::barabasi_albert(n, 10, seed);
        let m = g.num_edges();
        let ops = ((m as f64 * churn).round() as usize).max(1);
        println!("rung: barabasi_albert n={n} m={m} colors={colors} ({ops} deletes + {ops} inserts x {rounds} rounds)");
        let sparse = run_mode(&g, colors, StorageMode::Sparse, rounds, ops, seed, reps);
        let mut outcomes = vec![sparse];
        if with_dense {
            let dense = run_mode(&g, colors, StorageMode::Dense, rounds, ops, seed, reps);
            let auto = run_mode(&g, colors, StorageMode::Auto, rounds, ops, seed, reps);
            // Bit-identity across storage modes (the equivalence suite pins
            // this over mixed traces; the benchmark re-checks its own
            // instances).
            for o in [&dense, &auto] {
                assert_eq!(
                    o.assignment,
                    outcomes[0].assignment,
                    "n={n}: {} and sparse colorings diverged",
                    mode_name(o.mode)
                );
                assert_eq!(
                    o.q.to_bits(),
                    outcomes[0].q.to_bits(),
                    "n={n}: {} and sparse q-error bits diverged",
                    mode_name(o.mode)
                );
            }
            // The analytic dense projection must track a real dense engine.
            let projected = outcomes[0].projected_dense_bytes as f64;
            let actual = dense.resident_bytes as f64;
            assert!(
                (projected - actual).abs() / actual < 0.05,
                "n={n}: dense projection {projected:.0}B off measured {actual:.0}B by >5%"
            );
            outcomes.push(dense);
            outcomes.push(auto);
        }
        for o in &outcomes {
            println!(
                "  {:6}: resident {:8.1} MiB (dense-projected {:8.1} MiB, {:4.2}x) step {:.4}s maintain {:.4}s q={}",
                mode_name(o.mode),
                mib(o.resident_bytes),
                mib(o.projected_dense_bytes),
                o.projected_dense_bytes as f64 / o.resident_bytes as f64,
                o.step_seconds,
                o.maintain_seconds,
                o.q
            );
            json.push(format!(
                "{{\"graph\":\"barabasi_albert\",\"nodes\":{n},\"edges\":{m},\"seed\":{seed},\"colors\":{colors},\"storage\":\"{}\",\"resident_bytes\":{},\"projected_dense_bytes\":{},\"step_seconds\":{:.6},\"maintain_seconds\":{:.6},\"churn_rounds\":{rounds},\"churn_ops\":{ops},\"q\":{}}}",
                mode_name(o.mode),
                o.resident_bytes,
                o.projected_dense_bytes,
                o.step_seconds,
                o.maintain_seconds,
                o.q
            ));
        }
        let sparse = &outcomes[0];
        if let (Some(dense), Some(auto)) = (outcomes.get(1), outcomes.get(2)) {
            let wall = |o: &Outcome| o.step_seconds + o.maintain_seconds;
            let sparse_ratio = wall(sparse) / wall(dense);
            let auto_ratio = wall(auto) / wall(dense);
            // Throughput bars. `Auto` (the shipped default) must stay
            // within 10% of dense everywhere — that is the "don't tax the
            // existing headline" guarantee. Forced-sparse must beat dense
            // outright at 100k, where the rows are two orders of
            // magnitude sparser than the color budget; on the 10k rung it
            // is recorded bar-free as the crossover datapoint (an
            // LLC-resident dense matrix wins per probe, which is exactly
            // why the `Auto` gate resolves dense at that scale).
            println!(
                "  auto   step+maintain {:.4}s vs dense {:.4}s ({auto_ratio:.2}x; bar 1.10x)",
                wall(auto),
                wall(dense)
            );
            let sparse_bar = if n <= 10_000 {
                println!(
                    "  sparse step+maintain {:.4}s vs dense {:.4}s ({sparse_ratio:.2}x; crossover datapoint, no bar at this scale)",
                    wall(sparse),
                    wall(dense)
                );
                f64::INFINITY
            } else {
                println!(
                    "  sparse step+maintain {:.4}s vs dense {:.4}s ({sparse_ratio:.2}x; bar 1.00x)",
                    wall(sparse),
                    wall(dense)
                );
                1.0
            };
            if smoke {
                continue; // shared runners: record, don't enforce
            }
            if auto_ratio > 1.10 {
                bars_ok = false;
                println!("  BAR FAILED: auto {auto_ratio:.2}x dense exceeds 1.10x at n={n}");
            }
            if sparse_ratio > sparse_bar {
                bars_ok = false;
                println!(
                    "  BAR FAILED: sparse {sparse_ratio:.2}x dense exceeds {sparse_bar:.2}x at n={n}"
                );
            }
        } else {
            // The headline rung: dense never built, projection only.
            headline = Some((
                n,
                sparse.projected_dense_bytes as f64 / sparse.resident_bytes as f64,
                sparse.resident_bytes,
                sparse.projected_dense_bytes,
            ));
        }
    }

    if smoke {
        println!("smoke OK: storage modes bit-identical; memory ratio recorded (no JSON, no bars)");
        return;
    }
    let Some((hn, reduction, sparse_bytes, dense_bytes)) = headline else {
        println!("--max-nodes truncated the ladder before the headline rung (no JSON, no bars)");
        return;
    };
    println!(
        "headline: n={hn} sparse {:.1} MiB vs projected dense {:.1} MiB — {reduction:.2}x reduction",
        mib(sparse_bytes),
        mib(dense_bytes)
    );
    json.push(format!(
        "{{\"summary\":\"memory_headline\",\"graph\":\"barabasi_albert\",\"nodes\":{hn},\"colors\":200,\"seed\":{seed},\"sparse_resident_bytes\":{sparse_bytes},\"projected_dense_bytes\":{dense_bytes},\"memory_reduction\":{reduction:.3},\"host_cpus\":{},\"peak_rss_bytes\":{},\"bar_enforced\":true}}",
        qsc_bench::host_cpus(),
        qsc_bench::peak_rss_json()
    ));
    std::fs::write("BENCH_memory.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_memory.json");
    println!("wrote BENCH_memory.json");

    assert!(
        reduction >= 4.0,
        "engine memory reduction {reduction:.2}x at n={hn} below the 4x acceptance bar"
    );
    assert!(
        bars_ok,
        "a sparse-vs-dense throughput bar failed (see above)"
    );
}
