//! Incremental refinement engine vs. from-scratch recomputation, recorded.
//!
//! Times `Rothko::run` (incremental engine, `O(touched)` per split) against
//! `Rothko::run_reference` (degree matrices rebuilt from the graph every
//! step, the seed's original behaviour) on Barabási–Albert graphs, and
//! writes the measurements to `BENCH_rothko.json`. The headline row is the
//! 200-color run on the 10k-node graph.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_rothko_incremental
//! [-- --threads T] [--batch B]` — `--threads` sets the incremental
//! engine's worker count (the from-scratch reference has no engine),
//! `--batch` the witness splits per synchronization round for both paths
//! (they share selection, so the comparison stays apples-to-apples).
//! Defaults 1/1 keep the recorded headline semantics.

use qsc_bench::{arg_value, timed};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::generators;

struct Row {
    nodes: usize,
    edges: usize,
    colors: usize,
    incremental_seconds: f64,
    scratch_seconds: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scratch_seconds / self.incremental_seconds
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"barabasi_albert\",\"nodes\":{},\"edges\":{},\"colors\":{},\"incremental_seconds\":{:.6},\"from_scratch_seconds\":{:.6},\"speedup\":{:.2}}}",
            self.nodes,
            self.edges,
            self.colors,
            self.incremental_seconds,
            self.scratch_seconds,
            self.speedup()
        )
    }
}

/// Best-of-`reps` wall time for one closure.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = timed(&mut f);
        best = best.min(secs);
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_rothko_incremental: incremental engine vs from-scratch reference");
        println!("  --threads T  engine worker threads (default 1; results bit-identical)");
        println!("  --batch B    witness splits per synchronization round (default 1)");
        return;
    }
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let batch: usize = arg_value(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut rows = Vec::new();
    for &(n, colors, reps) in &[(2_000usize, 64usize, 3usize), (10_000, 200, 3)] {
        let g = generators::barabasi_albert(n, 4, 7);
        let config = RothkoConfig::with_max_colors(colors)
            .threads(threads)
            .batch(batch);

        let incremental = best_of(reps, || {
            let c = Rothko::new(config.clone()).run(&g);
            assert_eq!(c.partition.num_colors(), colors);
            c.max_q_error
        });
        let scratch = best_of(reps, || {
            let c = Rothko::new(config.clone()).run_reference(&g);
            assert_eq!(c.partition.num_colors(), colors);
            c.max_q_error
        });

        let row = Row {
            nodes: n,
            edges: g.num_edges(),
            colors,
            incremental_seconds: incremental,
            scratch_seconds: scratch,
        };
        println!(
            "n={} m={} colors={}: incremental {:.4}s, from-scratch {:.4}s, speedup {:.1}x",
            row.nodes,
            row.edges,
            row.colors,
            row.incremental_seconds,
            row.scratch_seconds,
            row.speedup()
        );
        rows.push(row);
    }

    if threads != 1 || batch != 1 {
        // The recorded JSON and its acceptance bar are pinned to the
        // default configuration; exploratory runs only print.
        println!("non-default threads/batch: BENCH_rothko.json left untouched, no bar");
        return;
    }
    let json: Vec<String> = rows.iter().map(Row::to_json).collect();
    std::fs::write("BENCH_rothko.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_rothko.json");
    println!("wrote BENCH_rothko.json");

    let headline = rows.last().expect("at least one row");
    assert!(
        headline.speedup() >= 5.0,
        "incremental engine speedup {:.1}x below the 5x acceptance bar",
        headline.speedup()
    );
}
