//! Incremental refinement engine vs. from-scratch recomputation, recorded.
//!
//! Times `Rothko::run` (incremental engine, `O(touched)` per split) against
//! `Rothko::run_reference` (degree matrices rebuilt from the graph every
//! step, the seed's original behaviour) on Barabási–Albert graphs, and
//! writes the measurements to `BENCH_rothko.json`. The headline row is the
//! 200-color run on the 10k-node graph. Rows follow the shared reporting
//! convention: best-of-3 with the per-round raw timings kept, plus a
//! summary line carrying `host_cpus`/`bar_enforced` (the ≥5× bar compares
//! two serial code paths, so it is enforced on every host).
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_rothko_incremental
//! [-- --smoke] [--threads T] [--batch B]` — `--smoke` runs a small
//! instance and asserts only that both paths agree (no file, no bar; CI);
//! `--threads` sets the incremental engine's worker count (the from-scratch
//! reference has no engine), `--batch` the witness splits per
//! synchronization round for both paths (they share selection, so the
//! comparison stays apples-to-apples). Defaults 1/1 keep the recorded
//! headline semantics.

use qsc_bench::{arg_value, host_cpus, measure_rounds};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::generators;

struct Row {
    nodes: usize,
    edges: usize,
    colors: usize,
    incremental: qsc_bench::Measurement<f64>,
    scratch: qsc_bench::Measurement<f64>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scratch.best() / self.incremental.best()
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"barabasi_albert\",\"nodes\":{},\"edges\":{},\"colors\":{},\"incremental_seconds\":{:.6},\"incremental_rounds\":{},\"from_scratch_seconds\":{:.6},\"from_scratch_rounds\":{},\"speedup\":{:.2}}}",
            self.nodes,
            self.edges,
            self.colors,
            self.incremental.best(),
            self.incremental.rounds_json(),
            self.scratch.best(),
            self.scratch.rounds_json(),
            self.speedup()
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_rothko_incremental: incremental engine vs from-scratch reference");
        println!("  --smoke      small instance, agreement asserts only (CI; no file, no bar)");
        println!("  --threads T  engine worker threads (default 1; results bit-identical)");
        println!("  --batch B    witness splits per synchronization round (default 1)");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let batch: usize = arg_value(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let rows_spec: &[(usize, usize, usize)] = if smoke {
        &[(2_000, 64, 1)]
    } else {
        &[(2_000, 64, 3), (10_000, 200, 3)]
    };
    let mut rows = Vec::new();
    for &(n, colors, reps) in rows_spec {
        let g = generators::barabasi_albert(n, 4, 7);
        let config = RothkoConfig::with_max_colors(colors)
            .threads(threads)
            .batch(batch);

        let incremental = measure_rounds(reps, || {
            let c = Rothko::new(config.clone()).run(&g);
            assert_eq!(c.partition.num_colors(), colors);
            c.max_q_error
        });
        let scratch = measure_rounds(reps, || {
            let c = Rothko::new(config.clone()).run_reference(&g);
            assert_eq!(c.partition.num_colors(), colors);
            c.max_q_error
        });
        assert_eq!(
            incremental.value.to_bits(),
            scratch.value.to_bits(),
            "incremental and from-scratch paths disagree on the final q-error"
        );

        let row = Row {
            nodes: n,
            edges: g.num_edges(),
            colors,
            incremental,
            scratch,
        };
        println!(
            "n={} m={} colors={}: incremental {:.4}s, from-scratch {:.4}s, speedup {:.1}x",
            row.nodes,
            row.edges,
            row.colors,
            row.incremental.best(),
            row.scratch.best(),
            row.speedup()
        );
        rows.push(row);
    }

    if smoke {
        println!("smoke OK: both paths agree (no JSON, no bar)");
        return;
    }
    if threads != 1 || batch != 1 {
        // The recorded JSON and its acceptance bar are pinned to the
        // default configuration; exploratory runs only print.
        println!("non-default threads/batch: BENCH_rothko.json left untouched, no bar");
        return;
    }
    let mut json: Vec<String> = rows.iter().map(Row::to_json).collect();
    let headline = rows.last().expect("at least one row");
    // Incremental vs from-scratch compares two serial code paths, so the
    // bar holds regardless of core count — always enforced.
    json.push(format!(
        "{{\"summary\":\"incremental_vs_from_scratch\",\"host_cpus\":{},\"peak_rss_bytes\":{},\"headline_speedup\":{:.2},\"bar_enforced\":true}}",
        host_cpus(),
        qsc_bench::peak_rss_json(),
        headline.speedup()
    ));
    std::fs::write("BENCH_rothko.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_rothko.json");
    println!("wrote BENCH_rothko.json");

    assert!(
        headline.speedup() >= 5.0,
        "incremental engine speedup {:.1}x below the 5x acceptance bar",
        headline.speedup()
    );
}
