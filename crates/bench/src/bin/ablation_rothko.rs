//! Ablation study for the Rothko design choices called out in Sec. 5.2:
//!
//! * split threshold: arithmetic vs. geometric mean (the paper argues the
//!   geometric mean yields balanced splits on scale-free graphs);
//! * witness weights `(α, β)`: unweighted (max-flow setting), source-weighted
//!   (LP setting), fully weighted (centrality setting).
//!
//! For each configuration and dataset the binary reports the maximum and
//! mean q-error reached at a fixed color budget, and the size of the largest
//! color (a proxy for split balance).
//!
//! Run with: `cargo run --release -p qsc-bench --bin ablation_rothko
//! [-- --threads T] [--batch B]` — `--threads` shards each run's engine
//! across workers (identical results), `--batch` applies batched witness
//! rounds (B splits per synchronization point; this *changes* the greedy
//! order, so it is itself an ablation axis).

use qsc_bench::{arg_value, render_table, timed};
use qsc_core::q_error::q_error_report;
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_datasets::Scale;

const BUDGET: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("ablation_rothko: Rothko split-rule and witness-weight ablation");
        println!("  --threads T  engine worker threads (default 1; results bit-identical)");
        println!("  --batch B    witness splits per synchronization round (default 1)");
        return;
    }
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let batch: usize = arg_value(&args, "--batch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    println!("Ablation — Rothko split rule and witness weights (color budget {BUDGET})");
    if threads != 1 || batch != 1 {
        println!("(threads = {threads}, batch = {batch})");
    }
    println!();
    let tuned = |config: RothkoConfig| config.threads(threads).batch(batch);
    let configs: Vec<(&str, RothkoConfig)> = vec![
        (
            "arithmetic, α=0 β=0",
            tuned(RothkoConfig::with_max_colors(BUDGET)),
        ),
        (
            "geometric,  α=0 β=0",
            tuned(RothkoConfig::with_max_colors(BUDGET).split_mean(SplitMean::Geometric)),
        ),
        (
            "arithmetic, α=1 β=0",
            tuned(RothkoConfig::with_max_colors(BUDGET).weights(1.0, 0.0)),
        ),
        (
            "geometric,  α=1 β=1",
            tuned(
                RothkoConfig::with_max_colors(BUDGET)
                    .split_mean(SplitMean::Geometric)
                    .weights(1.0, 1.0),
            ),
        ),
    ];

    let mut rows = Vec::new();
    for dataset in ["openflights", "facebook", "epinions"] {
        let g = qsc_datasets::load_graph(dataset, Scale::Small).unwrap();
        for (label, config) in &configs {
            let (coloring, secs) = timed(|| Rothko::new(config.clone()).run(&g));
            let report = q_error_report(&g, &coloring.partition);
            let largest = coloring.partition.sizes().into_iter().max().unwrap_or(0);
            rows.push(vec![
                dataset.to_string(),
                label.to_string(),
                format!("{:.1}", report.max_q),
                format!("{:.2}", report.mean_q),
                largest.to_string(),
                format!("{:.3}s", secs),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "configuration",
                "max q",
                "mean q",
                "largest color",
                "time"
            ],
            &rows
        )
    );
    println!("expected: the geometric split keeps the largest color far smaller on the");
    println!("scale-free datasets, at equal or lower q-error for the same color budget.");
}
