//! Ablation study for the Rothko design choices called out in Sec. 5.2:
//!
//! * split threshold: arithmetic vs. geometric mean (the paper argues the
//!   geometric mean yields balanced splits on scale-free graphs);
//! * witness weights `(α, β)`: unweighted (max-flow setting), source-weighted
//!   (LP setting), fully weighted (centrality setting).
//!
//! For each configuration and dataset the binary reports the maximum and
//! mean q-error reached at a fixed color budget, and the size of the largest
//! color (a proxy for split balance).

use qsc_bench::{render_table, timed};
use qsc_core::q_error::q_error_report;
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_datasets::Scale;

const BUDGET: usize = 64;

fn main() {
    println!("Ablation — Rothko split rule and witness weights (color budget {BUDGET})");
    println!();
    let configs: Vec<(&str, RothkoConfig)> = vec![
        ("arithmetic, α=0 β=0", RothkoConfig::with_max_colors(BUDGET)),
        (
            "geometric,  α=0 β=0",
            RothkoConfig::with_max_colors(BUDGET).split_mean(SplitMean::Geometric),
        ),
        (
            "arithmetic, α=1 β=0",
            RothkoConfig::with_max_colors(BUDGET).weights(1.0, 0.0),
        ),
        (
            "geometric,  α=1 β=1",
            RothkoConfig::with_max_colors(BUDGET)
                .split_mean(SplitMean::Geometric)
                .weights(1.0, 1.0),
        ),
    ];

    let mut rows = Vec::new();
    for dataset in ["openflights", "facebook", "epinions"] {
        let g = qsc_datasets::load_graph(dataset, Scale::Small).unwrap();
        for (label, config) in &configs {
            let (coloring, secs) = timed(|| Rothko::new(config.clone()).run(&g));
            let report = q_error_report(&g, &coloring.partition);
            let largest = coloring.partition.sizes().into_iter().max().unwrap_or(0);
            rows.push(vec![
                dataset.to_string(),
                label.to_string(),
                format!("{:.1}", report.max_q),
                format!("{:.2}", report.mean_q),
                largest.to_string(),
                format!("{:.3}s", secs),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "configuration",
                "max q",
                "mean q",
                "largest color",
                "time"
            ],
            &rows
        )
    );
    println!("expected: the geometric split keeps the largest color far smaller on the");
    println!("scale-free datasets, at equal or lower q-error for the same color budget.");
}
