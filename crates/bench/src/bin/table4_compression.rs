//! E-TAB4: runtime and compression of quasi-stable coloring vs. stable
//! coloring (Table 4).
//!
//! For the OpenFlights / Epinions / DBLP stand-ins: the stable coloring's
//! size and time, and for q ∈ {64, 32, 16, 8} the Rothko coloring's measured
//! max q, mean q, number of colors, compression ratio and time.

use qsc_bench::report::CompressionRow;
use qsc_bench::{render_table, timed};
use qsc_core::q_error::q_error_report;
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_core::stable_coloring;
use qsc_datasets::Scale;

const Q_VALUES: &[f64] = &[64.0, 32.0, 16.0, 8.0];

fn main() {
    println!("Table 4 — compression: stable coloring vs. q-stable coloring");
    println!();
    let mut rows: Vec<CompressionRow> = Vec::new();
    for name in ["openflights", "epinions", "dblp"] {
        let g = qsc_datasets::load_graph(name, Scale::Full).unwrap();
        let n = g.num_nodes() as f64;

        let (stable, stable_secs) = timed(|| stable_coloring(&g));
        rows.push(CompressionRow {
            dataset: name.to_string(),
            setting: "stable (q=0)".to_string(),
            max_q: 0.0,
            mean_q: 0.0,
            colors: stable.num_colors(),
            compression: n / stable.num_colors() as f64,
            seconds: stable_secs,
        });

        for &q in Q_VALUES {
            let mut config = RothkoConfig::with_target_error(q).split_mean(SplitMean::Geometric);
            // Safety valve so a pathological split sequence cannot run
            // unboundedly long; the paper's own q = 8 run on DBLP takes
            // 2h38m, which we do not attempt to reproduce in wall-clock.
            config.max_colors = 2_000;
            let (coloring, secs) = timed(|| Rothko::new(config.clone()).run(&g));
            let report = q_error_report(&g, &coloring.partition);
            rows.push(CompressionRow {
                dataset: name.to_string(),
                setting: format!("q = {q}"),
                max_q: report.max_q,
                mean_q: report.mean_q,
                colors: coloring.partition.num_colors(),
                compression: n / coloring.partition.num_colors() as f64,
                seconds: secs,
            });
        }
    }
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.setting.clone(),
                format!("{:.2}", r.max_q),
                format!("{:.2}", r.mean_q),
                r.colors.to_string(),
                format!("{:.0}:1", r.compression),
                format!("{:.3}s", r.seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "setting",
                "max q",
                "mean q",
                "colors",
                "compression",
                "time"
            ],
            &table_rows
        )
    );
    println!("paper shape: stable coloring compresses only ~1.3-1.4:1; q-stable colorings");
    println!("compress by 1-4 orders of magnitude, with mean q well below the max q.");
    println!();
    println!("JSON lines:");
    for row in &rows {
        println!("{}", row.to_json());
    }
}
