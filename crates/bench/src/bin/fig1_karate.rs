//! E-FIG1: the Fig. 1 running example — stable vs. quasi-stable coloring of
//! Zachary's karate club.
//!
//! Paper: the stable coloring needs 27 colors; a q-stable coloring with
//! q = 3 needs only 6 colors and isolates the two club leaders {1, 34}.

use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::{coloring_stats, stable_coloring};
use qsc_graph::generators::karate_club;

fn main() {
    let g = karate_club();
    println!(
        "Fig. 1 — Zachary's karate club ({} nodes, {} edges)",
        g.num_nodes(),
        g.num_edges()
    );
    println!();

    let stable = stable_coloring(&g);
    println!(
        "(a) stable coloring: {} colors (paper: 27)",
        stable.num_colors()
    );

    let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
    let stats = coloring_stats(&coloring.partition);
    println!(
        "(b) quasi-stable coloring: {} colors, max q = {} (paper: 6 colors at q = 3)",
        stats.colors, coloring.max_q_error
    );
    println!();
    println!("color classes (1-indexed node labels):");
    for (color, members) in coloring.partition.classes() {
        let labels: Vec<String> = members.iter().map(|&v| (v + 1).to_string()).collect();
        println!("  color {color}: {{{}}}", labels.join(", "));
    }
    let leaders_color = coloring.partition.color_of(0);
    if coloring.partition.color_of(33) == leaders_color
        && coloring.partition.size(leaders_color) == 2
    {
        println!();
        println!("the club leaders {{1, 34}} form their own color, as in Fig. 1b");
    }
}
