//! E-FIG3: the worked LP example of Fig. 3.
//!
//! Paper: the 5x3 LP has optimum 128.157; the q = 1 block partition of its
//! extended matrix yields a 2x2 reduced LP with optimum 130.199.

use qsc_lp::reduce::{reduce_lp, LpColoring, LpReductionVariant};
use qsc_lp::{simplex, LpProblem};

fn main() {
    let lp = LpProblem::from_dense(
        "fig3",
        &[
            vec![4.0, 8.0, 2.0],
            vec![6.0, 5.0, 1.0],
            vec![7.0, 4.0, 2.0],
            vec![3.0, 1.0, 22.0],
            vec![2.0, 3.0, 21.0],
        ],
        vec![20.0, 20.0, 21.0, 50.0, 51.0],
        vec![9.0, 10.0, 50.0],
    );
    println!("Fig. 3 — worked LP example");
    let exact = simplex::solve(&lp);
    println!(
        "(a) original LP: 5 rows x 3 cols, optimum = {:.3} (paper: 128.157)",
        exact.objective
    );

    // The q = 1 coloring shown in Fig. 3(b): rows {1,2,3}, {4,5}; columns
    // {x1,x2}, {x3}.
    let coloring = LpColoring {
        row_colors: vec![0, 0, 0, 1, 1],
        col_colors: vec![0, 0, 1],
        num_row_colors: 2,
        num_col_colors: 2,
        max_q_error: 1.0,
    };
    let reduced = reduce_lp(&lp, &coloring, LpReductionVariant::SqrtNormalized);
    println!("(b) reduced constraint matrix (Eq. 6):");
    for r in 0..reduced.num_rows() {
        let entries: Vec<String> = (0..reduced.num_cols())
            .map(|s| format!("{:8.4}", reduced.problem.a.get(r, s)))
            .collect();
        println!(
            "    [{}]  <= {:8.4}",
            entries.join(" "),
            reduced.problem.b[r]
        );
    }
    println!(
        "    objective: [{}]",
        reduced
            .problem
            .c
            .iter()
            .map(|c| format!("{c:8.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let approx = simplex::solve(&reduced.problem);
    println!(
        "(c) reduced LP optimum = {:.3} (paper: 130.199)",
        approx.objective
    );
    println!(
        "relative error max(v/v̂, v̂/v) = {:.4}",
        (exact.objective / approx.objective).max(approx.objective / exact.objective)
    );
}
