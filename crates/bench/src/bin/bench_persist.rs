//! Warm restart vs cold rebuild: the payoff of columnar checkpoints.
//!
//! The cold path is what every restart paid before persistence existed:
//! build the CSR from the raw edge list, run the full greedy refinement
//! to the color budget, and construct the reduced instance. The warm
//! path is [`qsc_persist::Store::recover`]: decode the checkpoint
//! columns straight into `Graph`/`Partition`/`IncrementalDegrees`/
//! `ReducedDelta` state and replay a small WAL tail through the public
//! API. Both end in the *same* state — asserted bit-for-bit by
//! re-encoding both stacks and comparing bytes, so the speedup never
//! comes at the cost of fidelity.
//!
//! `BENCH_persist.json` records cold/warm wall times with the headline
//! speedup (≥ 20× bar at the full 1M-node / 10⁷-edge rung, refined to a
//! 2048-color budget — the rebuild every restart used to pay), checkpoint
//! encode/decode/restore throughput, on-disk file sizes (checkpoint +
//! WAL segments) and the columnar compression ratio versus natural
//! column bytes (≥ 2× bar; delta+varint offsets and byte-shuffled
//! weights carry it), plus `rss_available` so a null RSS reads as "not
//! measurable on this host". An untimed warmup pass touches the page
//! pool before each timed section so hosts with lazily-populated VM
//! memory don't bill first-touch faults to either side of the
//! comparison.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_persist
//! [-- --smoke] [--nodes N] [--threads T] [--seed S]`.

use std::time::Instant;

use qsc_bench::arg_value;
use qsc_core::partition::PartitionEvent;
use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_core::StorageMode;
use qsc_graph::{generators, GraphBuilder, GraphDelta};
use qsc_persist::{
    encode_checkpoint, encode_checkpoint_with, CheckpointData, Layout, Store, StoreOptions,
};
use rand::prelude::*;

/// Canonical byte encoding of a stack's state, for bit-identity checks.
fn state_bytes(run: &RothkoRun<'_>, reduced: &ReducedDelta) -> Vec<u8> {
    let mut config = run.config().clone();
    config.initial = None;
    config.threads = None; // recovery may rebuild the pool differently
    let data = CheckpointData {
        graph: run.graph().clone(),
        config,
        run: run.snapshot(),
        reduced: Some(reduced.snapshot()),
        wal_seq: 0,
    };
    encode_checkpoint(&data).0
}

/// Insert `ops` fresh half-integer edges, returning the drained events.
fn churn_batch(
    delta: &mut GraphDelta,
    rng: &mut StdRng,
    ops: usize,
) -> Vec<qsc_graph::delta::EdgeEvent> {
    let n = delta.num_nodes();
    for _ in 0..ops {
        for _ in 0..20 {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v && !delta.has_edge(u, v) {
                let w = (rng.random_range(1u32..9) as f64) * 0.5;
                delta.insert_edge(u, v, w).unwrap();
                break;
            }
        }
    }
    delta.drain_events()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_persist: warm restart (checkpoint + WAL replay) vs cold rebuild");
        println!("  --smoke      small instance, bit-identity asserts only (CI)");
        println!("  --nodes N    graph size (default 1_000_000; smoke 5_000)");
        println!("  --threads T  engine threads (default 1)");
        println!("  --seed S     generator + churn seed (default 7)");
        println!(
            "  --layout L   checkpoint layout for the store: packed | mapped (default packed)"
        );
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let layout = match arg_value(&args, "--layout").as_deref() {
        None | Some("packed") => Layout::Packed,
        Some("mapped") => Layout::MappedRaw,
        Some(other) => panic!("unknown --layout {other:?} (expected packed | mapped)"),
    };
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let n: usize = arg_value(&args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 5_000 } else { 1_000_000 });
    let (ba_m, colors) = if smoke { (4usize, 32usize) } else { (10, 2048) };

    // Untimed page-pool warmup, run immediately before every timed
    // section. Virtualized hosts that populate guest memory lazily
    // (e.g. VM snapshots restored on demand) serve the *first* touch of
    // each fresh page at microseconds per page — ~6 s/GB observed —
    // which would otherwise be billed arbitrarily to whichever phase
    // allocates first. Touching (and freeing) a pool larger than the
    // next section's fresh-allocation footprint right before starting
    // its clock keeps every timed section measuring the algorithms,
    // not the hypervisor; applying it identically to the cold and warm
    // sides keeps the comparison fair.
    let warm_pages = |bytes: usize| {
        let mut pool: Vec<u8> = vec![0u8; bytes];
        for i in (0..pool.len()).step_by(4096) {
            pool[i] = 1;
        }
        std::hint::black_box(&mut pool);
    };
    let warm_bytes: usize = if smoke { 0 } else { 6 << 30 };

    // The raw material both paths start from: an edge list. Generation
    // itself is uncounted; CSR construction is part of the cold rebuild
    // (a real cold start pays it, the warm path reads CSR columns).
    let edge_list: Vec<(u32, u32, f64)> =
        generators::barabasi_albert(n, ba_m, seed).edges().to_vec();
    let m = edge_list.len();
    println!(
        "instance: barabasi_albert n={n} m={m} seed={seed}, {colors} colors, {threads} thread(s)"
    );

    let config = RothkoConfig {
        max_colors: colors,
        target_error: 0.0,
        threads: Some(threads),
        storage: StorageMode::Auto,
        ..Default::default()
    };

    // ---------------- Cold: full rebuild from the edge list ----------------
    if warm_bytes > 0 {
        warm_pages(warm_bytes);
    }
    let t0 = Instant::now();
    let mut b = GraphBuilder::new_undirected(n);
    for &(u, v, w) in &edge_list {
        b.add_edge(u, v, w);
    }
    let g = b.build();
    let mut run = Rothko::new(config.clone()).start(&g);
    run.maintain();
    let mut reduced = ReducedDelta::new(&g, run.partition());
    let cold_s = t0.elapsed().as_secs_f64();
    println!("cold rebuild: {cold_s:.3}s (CSR + refinement to {colors} colors + reduced instance)");

    // ---------------- Checkpoint + a small WAL tail ----------------
    let dir = std::env::temp_dir().join(format!("qsc-bench-persist-{}", std::process::id()));
    let mut store = Store::create(
        &dir,
        StoreOptions {
            layout,
            ..StoreOptions::default()
        },
    )
    .expect("create store");
    if warm_bytes > 0 {
        warm_pages(warm_bytes);
    }
    let t1 = Instant::now();
    let stats = store.checkpoint(&run, Some(&reduced)).expect("checkpoint");
    let encode_s = t1.elapsed().as_secs_f64();
    println!(
        "checkpoint: {} bytes on disk ({layout:?} layout), {} natural column bytes \
         ({:.2}x compression), {encode_s:.3}s",
        stats.file_bytes,
        stats.natural_bytes,
        stats.compression_ratio()
    );

    // Honest per-layout numbers: encode the same state in both layouts
    // so the JSON reports each one's real footprint — the mapped layout
    // pins the big columns raw and *loses* compression on them; that
    // trade is the point, not something to hide.
    let snapshot_data = CheckpointData {
        graph: g.clone(),
        config: run.config().clone(),
        run: run.snapshot(),
        reduced: Some(reduced.snapshot()),
        wal_seq: store.last_seq(),
    };
    let layout_stats = [Layout::Packed, Layout::MappedRaw].map(|l| {
        let t = Instant::now();
        let (bytes, s) = encode_checkpoint_with(&snapshot_data, l);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "layout {l:?}: {} bytes, {:.2}x compression, encode {secs:.3}s",
            bytes.len(),
            s.compression_ratio()
        );
        (bytes.len(), s.compression_ratio(), secs)
    });

    // A realistic restart tail: a couple of logged batches + maintenance.
    let mut delta = GraphDelta::new(g.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let tail_ops = (m / 10_000).max(8);
    for _ in 0..2 {
        let events = churn_batch(&mut delta, &mut rng, tail_ops);
        store.log_edge_batch(&events).expect("log");
        let compacted = delta.compact();
        run.apply_edge_batch(compacted, &events);
        reduced.apply_edge_batch(run.partition(), &events);
    }
    store.log_maintain().expect("log");
    let base = delta.base().clone();
    run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => reduced.apply_split(&base, p, s),
        PartitionEvent::Merge(mg) => reduced.apply_merge(mg),
        PartitionEvent::NodeInsert { .. } | PartitionEvent::NodeRemove { .. } => {}
    });
    store.sync().expect("sync");
    let wal_bytes: u64 = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
        .filter_map(|e| e.metadata().ok().map(|md| md.len()))
        .sum();

    // ---------------- Warm: recover from the store ----------------
    if warm_bytes > 0 {
        warm_pages(warm_bytes);
    }
    let t2 = Instant::now();
    let rec = Store::recover(&dir, Some(threads)).expect("recover");
    let warm_s = t2.elapsed().as_secs_f64();
    let speedup = cold_s / warm_s;
    println!(
        "warm restart: {warm_s:.3}s ({} WAL records replayed) — {speedup:.1}x vs cold",
        rec.replayed
    );

    // The headline claim: restored state is bit-identical to the live
    // never-persisted stack. Non-negotiable in every mode.
    let rec_reduced = rec.reduced.expect("reduced restored");
    assert_eq!(
        state_bytes(&run, &reduced),
        state_bytes(&rec.run, &rec_reduced),
        "restored state is not bit-identical to the live stack"
    );
    println!("restored state: bit-identical to the never-persisted run");

    let _ = std::fs::remove_dir_all(&dir);

    if smoke {
        assert!(
            layout_stats[0].1 > 1.0,
            "columnar encoding failed to beat natural bytes"
        );
        println!("smoke OK (bit-identity + compression asserts, no timing bars, no JSON)");
        return;
    }

    let decode_mb_s = stats.file_bytes as f64 / 1e6 / warm_s;
    let encode_mb_s = stats.natural_bytes as f64 / 1e6 / encode_s;
    let layouts_json = format!(
        "{{\"packed\":{{\"file_bytes\":{},\"compression_ratio\":{:.3},\"encode_s\":{:.4}}},\"mapped_raw\":{{\"file_bytes\":{},\"compression_ratio\":{:.3},\"encode_s\":{:.4}}}}}",
        layout_stats[0].0,
        layout_stats[0].1,
        layout_stats[0].2,
        layout_stats[1].0,
        layout_stats[1].1,
        layout_stats[1].2
    );
    let layout_name = match layout {
        Layout::Packed => "packed",
        Layout::MappedRaw => "mapped_raw",
    };
    let row = format!(
        "{{\"summary\":\"warm_restart_vs_cold_rebuild\",\"graph\":\"barabasi_albert\",\"nodes\":{n},\"edges\":{m},\"seed\":{seed},\"colors\":{colors},\"threads\":{threads},\"layout\":\"{layout_name}\",\"cold_rebuild_s\":{cold_s:.4},\"warm_restart_s\":{warm_s:.4},\"speedup\":{speedup:.2},\"checkpoint_file_bytes\":{},\"wal_file_bytes\":{wal_bytes},\"natural_column_bytes\":{},\"compression_ratio\":{:.3},\"layouts\":{layouts_json},\"encode_s\":{encode_s:.4},\"encode_mb_per_s\":{encode_mb_s:.1},\"restore_mb_per_s\":{decode_mb_s:.1},\"wal_records_replayed\":{},\"bit_identical\":true,\"host_cpus\":{},\"rss_available\":{},\"peak_rss_bytes\":{},\"bars\":{{\"speedup_min\":20.0,\"compression_min\":2.0}},\"bar_enforced\":true}}",
        stats.file_bytes,
        stats.natural_bytes,
        stats.compression_ratio(),
        rec.replayed,
        qsc_bench::host_cpus(),
        qsc_bench::rss_available(),
        qsc_bench::peak_rss_json()
    );
    std::fs::write("BENCH_persist.json", row + "\n").expect("failed to write BENCH_persist.json");
    println!(
        "wrote BENCH_persist.json (speedup {speedup:.1}x, compression {:.2}x)",
        stats.compression_ratio()
    );
    assert!(
        speedup >= 20.0,
        "warm restart speedup {speedup:.1}x below the 20x bar"
    );
    // The compression bar is a property of the packed layout; the mapped
    // layout intentionally pins the big columns raw.
    assert!(
        layout_stats[0].1 >= 2.0,
        "packed compression ratio {:.2}x below the 2x bar",
        layout_stats[0].1
    );
}
