//! E-FIG2: the robustness experiment of Fig. 2 and Sec. 6.3.
//!
//! A synthetic |V| = 1000, |E| ≈ 21 600 graph with a 100-color stable
//! coloring is perturbed by adding up to 1.5% random edges. The stable
//! coloring collapses towards one color per node while the q = 4 coloring
//! keeps its compression ratio.

use qsc_bench::{render_table, timed};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::stable_coloring;
use qsc_graph::generators::{perturb_add_edges, stable_blueprint_graph};

fn main() {
    let base = stable_blueprint_graph(100, 10, 0.44, 1, 42);
    let m = base.num_edges();
    println!(
        "Fig. 2 — robustness to edge insertions (|V| = {}, |E| = {})",
        base.num_nodes(),
        m
    );
    println!();

    let mut rows = Vec::new();
    for added in [0usize, 40, 80, 120, 160, 240, 320] {
        let g = if added == 0 {
            base.clone()
        } else {
            perturb_add_edges(&base, added, 7 + added as u64)
        };
        let (stable, stable_secs) = timed(|| stable_coloring(&g).num_colors());
        let (qstable, q_secs) = timed(|| {
            Rothko::new(RothkoConfig::with_target_error(4.0))
                .run(&g)
                .partition
                .num_colors()
        });
        rows.push(vec![
            added.to_string(),
            format!("{:.2}%", 100.0 * added as f64 / m as f64),
            stable.to_string(),
            format!("{:.1}x", g.num_nodes() as f64 / stable as f64),
            qstable.to_string(),
            format!("{:.1}x", g.num_nodes() as f64 / qstable as f64),
            format!("{:.2}s / {:.2}s", stable_secs, q_secs),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "added edges",
                "% of |E|",
                "stable colors",
                "stable ratio",
                "q=4 colors",
                "q=4 ratio",
                "time (stable/q)"
            ],
            &rows
        )
    );
    println!("paper: the stable coloring degrades to ~750 colors at 1.5% perturbation while");
    println!("a q = 4 coloring keeps a ~6.5x compression ratio.");
}
