//! E-TAB2: dataset summary (Table 2) — the paper's sizes next to the sizes
//! of the synthetic stand-ins actually used in this reproduction.

use qsc_bench::render_table;
use qsc_datasets::Scale;
use qsc_graph::stats::graph_stats;

fn main() {
    println!("Table 2 — graphs used for evaluation (paper sizes vs. stand-in sizes)");
    println!();
    let mut rows = Vec::new();
    for spec in qsc_datasets::graph_datasets() {
        let g = qsc_datasets::load_graph(spec.name, Scale::Full).unwrap();
        let s = graph_stats(&g);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:?}", spec.task),
            spec.paper_nodes.to_string(),
            spec.paper_edges.to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            spec.stand_in.to_string(),
        ]);
    }
    for spec in qsc_datasets::flow_datasets() {
        let net = qsc_datasets::load_flow(spec.name, Scale::Full).unwrap();
        rows.push(vec![
            spec.name.to_string(),
            "MaxFlow".to_string(),
            spec.paper_nodes.to_string(),
            spec.paper_edges.to_string(),
            net.num_nodes().to_string(),
            net.num_edges().to_string(),
            "vision-style grid".to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "task",
                "paper |V|",
                "paper |E|",
                "ours |V|",
                "ours |E|",
                "stand-in"
            ],
            &rows
        )
    );
}
