//! E-TAB1-top: runtime to reach a target centrality quality (Table 1, top).
//!
//! For each centrality dataset: the time our coloring-based approximation
//! needs to reach Spearman ρ ∈ {0.90, 0.95, 0.97}, the time the
//! Riondato–Kornaropoulos sampling baseline needs, and the exact Brandes
//! runtime.

use qsc_bench::{render_table, timed};
use qsc_centrality::approx::{approximate, CentralityApproxConfig};
use qsc_centrality::sampling::{betweenness_sampling, SamplingConfig};
use qsc_centrality::{brandes, spearman};
use qsc_datasets::Scale;

const TARGETS: &[f64] = &[0.90, 0.95, 0.97];
const TIMEOUT_SECONDS: f64 = 120.0;

fn main() {
    let scale = Scale::Full;
    println!("Table 1 (top) — betweenness centrality: seconds to reach target rank correlation");
    println!("(x = did not reach the target within {TIMEOUT_SECONDS}s of sweep budget)");
    println!();
    let mut rows = Vec::new();
    for spec in qsc_datasets::graph_datasets() {
        if !matches!(spec.task, qsc_datasets::Task::Centrality) {
            continue;
        }
        let g = qsc_datasets::load_graph(spec.name, scale).unwrap();
        let (exact, exact_secs) = timed(|| brandes::betweenness(&g));

        let mut row = vec![spec.name.to_string()];
        for &target in TARGETS {
            row.push(ours_time_to_target(&g, &exact, target));
            row.push(sampling_time_to_target(&g, &exact, target));
        }
        row.push(format!("{exact_secs:.2}"));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "ours ρ=0.90",
                "prior ρ=0.90",
                "ours ρ=0.95",
                "prior ρ=0.95",
                "ours ρ=0.97",
                "prior ρ=0.97",
                "exact"
            ],
            &rows
        )
    );
    println!("paper shape: ours is 10-100x faster than the sampling baseline, which is in turn");
    println!("faster than exact Brandes; both approximations reach ρ ≥ 0.9.");
}

/// Increase the color budget until the target correlation is reached; report
/// the cumulative time of the successful configuration.
fn ours_time_to_target(g: &qsc_graph::Graph, exact: &[f64], target: f64) -> String {
    let mut spent = 0.0;
    for budget in [10usize, 20, 35, 60, 100, 150, 250, 400, 700, 1100] {
        let (approx, secs) =
            timed(|| approximate(g, &CentralityApproxConfig::with_max_colors(budget)));
        spent += secs;
        if spearman(exact, &approx.scores) >= target {
            return format!("{secs:.2}");
        }
        if spent > TIMEOUT_SECONDS {
            break;
        }
    }
    "x".to_string()
}

/// Decrease epsilon until the target correlation is reached.
fn sampling_time_to_target(g: &qsc_graph::Graph, exact: &[f64], target: f64) -> String {
    let mut spent = 0.0;
    for epsilon in [0.1, 0.05, 0.03, 0.02, 0.015, 0.01, 0.007] {
        let (scores, secs) = timed(|| {
            betweenness_sampling(
                g,
                &SamplingConfig {
                    epsilon,
                    seed: 1,
                    ..Default::default()
                },
            )
        });
        spent += secs;
        if spearman(exact, &scores) >= target {
            return format!("{secs:.2}");
        }
        if spent > TIMEOUT_SECONDS {
            break;
        }
    }
    "x".to_string()
}
