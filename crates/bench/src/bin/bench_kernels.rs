//! Lane-kernel microbenchmarks and the kernelized engine headline, recorded.
//!
//! Measures the `qsc_core::kernels` / `qsc_linalg::lanes` hot-path kernels
//! two ways:
//!
//! * **micro** — each kernel against a straight scalar reference loop on
//!   hot-path-shaped data (10k member rows over a 200-color / 256-cap
//!   accumulator block), with the results asserted equal (bit-identical
//!   for the min/max/gather kernels, canonical-tree-equal for the sums);
//! * **macro** — the full `Rothko::run` step loop on the 10k-node
//!   Barabási–Albert / 200-color headline instance, compared against the
//!   pre-kernel recorded baseline (`BASELINE_SECONDS`, the
//!   `incremental_seconds` headline of `BENCH_rothko.json` before this
//!   optimization), plus `merge_candidates` sweeps on the finished
//!   engine and the warm sweep pipeline's patching loop.
//!
//! Full mode writes `BENCH_kernels.json` (per-row raw round timings,
//! `host_cpus`, `bar_enforced`) and asserts the ≥1.3× headline bar against
//! the recorded baseline. The baseline is a constant measured on the same
//! container class as CI; the bar compares two serial runs of the same
//! instance, so it is enforced on any host (a slower host is slower on
//! both sides of history — if the bar fails on exotic hardware, re-baseline
//! both numbers together).
//!
//! `fast_math` is benchmarked explicitly: the headline is re-run with
//! `RothkoConfig::fast_math(true)` and the speedup over the deterministic
//! kernels is recorded. On the unit-weight benchmark graph the colorings
//! must still agree exactly (integer sums are associativity-proof), which
//! is asserted.
//!
//! Run with: `cargo run --release -p qsc-bench --bin bench_kernels
//! [-- --smoke]` — `--smoke` asserts kernel == scalar equivalence on the
//! full-size data but does not time anything, write JSON, or enforce the
//! bar (CI).

use qsc_bench::{host_cpus, measure_rounds, Measurement};
use qsc_core::kernels;
use qsc_core::q_error::IncrementalDegrees;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pre-kernel `BENCH_rothko.json` headline (10k-node BA, 200 colors,
/// incremental engine, serial): the denominator of the headline speedup.
const BASELINE_SECONDS: f64 = 0.042633;

/// Hot-path shape: member rows over a `k`-color block in a `cap`-wide
/// accumulator, mirroring the 200-color headline (`cap = next_pow2(200)`).
const ROWS: usize = 10_000;
const K: usize = 200;
const CAP: usize = 256;

struct Row {
    kernel: &'static str,
    detail: String,
    kernel_m: Measurement<f64>,
    scalar_m: Option<Measurement<f64>>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.scalar_m
            .as_ref()
            .map(|s| s.best() / self.kernel_m.best())
    }

    fn to_json(&self) -> String {
        let (scalar_seconds, scalar_rounds, speedup) = match &self.scalar_m {
            Some(s) => (
                format!("{:.6}", s.best()),
                s.rounds_json(),
                format!("{:.2}", self.speedup().unwrap()),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        format!(
            "{{\"kernel\":\"{}\",\"detail\":\"{}\",\"kernel_seconds\":{:.6},\"kernel_rounds\":{},\"scalar_seconds\":{},\"scalar_rounds\":{},\"speedup\":{}}}",
            self.kernel,
            self.detail,
            self.kernel_m.best(),
            self.kernel_m.rounds_json(),
            scalar_seconds,
            scalar_rounds,
            speedup
        )
    }

    fn print(&self) {
        match self.speedup() {
            Some(s) => println!(
                "{:18} {:34} kernel {:.4}s scalar {:.4}s speedup {:.2}x",
                self.kernel,
                self.detail,
                self.kernel_m.best(),
                self.scalar_m.as_ref().unwrap().best(),
                s
            ),
            None => println!(
                "{:18} {:34} {:.4}s",
                self.kernel,
                self.detail,
                self.kernel_m.best()
            ),
        }
    }
}

/// Scalar reference for `fold_minmax_row`: the pre-kernel member loop.
#[allow(clippy::too_many_arguments)]
fn scalar_minmax_row(
    u: u32,
    row: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &mut [u32],
) {
    for (j, &o) in row.iter().enumerate() {
        if o < mins[j] {
            mins[j] = o;
            arg_mins[j] = u;
        }
        if o > maxs[j] {
            maxs[j] = o;
            arg_maxs[j] = u;
        }
        if o != 0.0 {
            nzs[j] += 1;
        }
    }
}

/// Scalar reference for `scan_gather_column`: the pre-kernel entry rescan.
fn scalar_gather_column(
    members: &[u32],
    acc: &[f64],
    cap: usize,
    col: usize,
) -> (f64, f64, u32, u32, u32) {
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut amn = kernels::NO_ARG;
    let mut amx = kernels::NO_ARG;
    let mut nz = 0u32;
    for &u in members {
        let o = acc[u as usize * cap + col];
        if o < mn {
            mn = o;
            amn = u;
        }
        if o > mx {
            mx = o;
            amx = u;
        }
        if o != 0.0 {
            nz += 1;
        }
    }
    (mn, mx, amn, amx, nz)
}

/// Synthetic accumulator block shaped like the engine's `dout`: `ROWS`
/// rows, `CAP` columns, the first `K` live, degree-like small values with
/// structural zeros mixed in.
fn synthetic_block(rng: &mut StdRng) -> Vec<f64> {
    let mut acc = vec![0.0f64; ROWS * CAP];
    for r in 0..ROWS {
        for j in 0..K {
            if rng.random_range(0..4u32) != 0 {
                acc[r * CAP + j] = rng.random_range(0..32u32) as f64;
            }
        }
    }
    acc
}

struct MinMaxState {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    arg_mins: Vec<u32>,
    arg_maxs: Vec<u32>,
    nzs: Vec<u32>,
}

impl MinMaxState {
    fn fresh() -> Self {
        Self {
            mins: vec![f64::INFINITY; K],
            maxs: vec![f64::NEG_INFINITY; K],
            arg_mins: vec![kernels::NO_ARG; K],
            arg_maxs: vec![kernels::NO_ARG; K],
            nzs: vec![0u32; K],
        }
    }
}

/// Run the full member-axis rescan (every row folded into one min/max
/// state) through `f`, returning a checksum that keeps the work live.
fn rescan_with(
    acc: &[f64],
    mut f: impl FnMut(u32, &[f64], &mut MinMaxState),
) -> (MinMaxState, f64) {
    let mut st = MinMaxState::fresh();
    for r in 0..ROWS {
        f(r as u32, &acc[r * CAP..r * CAP + K], &mut st);
    }
    let checksum = st.maxs.iter().sum::<f64>() - st.mins.iter().sum::<f64>();
    (st, checksum)
}

fn assert_states_equal(a: &MinMaxState, b: &MinMaxState, what: &str) {
    assert!(
        a.mins
            .iter()
            .zip(&b.mins)
            .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.maxs
                .iter()
                .zip(&b.maxs)
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && a.arg_mins == b.arg_mins
            && a.arg_maxs == b.arg_maxs
            && a.nzs == b.nzs,
        "{what}: kernel state diverged from the scalar reference"
    );
}

fn micro_rows(rng: &mut StdRng, reps: usize, check_only: bool) -> Vec<Row> {
    let acc = synthetic_block(rng);
    let members: Vec<u32> = (0..ROWS as u32).collect();
    let mut rows = Vec::new();

    // fold_minmax_row: the member-axis rescan inner loop.
    let (kst, _) = rescan_with(&acc, |u, row, st| {
        kernels::fold_minmax_row(
            u,
            row,
            &mut st.mins,
            &mut st.maxs,
            &mut st.arg_mins,
            &mut st.arg_maxs,
            &mut st.nzs,
        )
    });
    let (sst, _) = rescan_with(&acc, |u, row, st| {
        scalar_minmax_row(
            u,
            row,
            &mut st.mins,
            &mut st.maxs,
            &mut st.arg_mins,
            &mut st.arg_maxs,
            &mut st.nzs,
        )
    });
    assert_states_equal(&kst, &sst, "fold_minmax_row");
    if !check_only {
        let kernel_m = measure_rounds(reps, || {
            rescan_with(&acc, |u, row, st| {
                kernels::fold_minmax_row(
                    u,
                    row,
                    &mut st.mins,
                    &mut st.maxs,
                    &mut st.arg_mins,
                    &mut st.arg_maxs,
                    &mut st.nzs,
                )
            })
            .1
        });
        let scalar_m = measure_rounds(reps, || {
            rescan_with(&acc, |u, row, st| {
                scalar_minmax_row(
                    u,
                    row,
                    &mut st.mins,
                    &mut st.maxs,
                    &mut st.arg_mins,
                    &mut st.arg_maxs,
                    &mut st.nzs,
                )
            })
            .1
        });
        rows.push(Row {
            kernel: "fold_minmax_row",
            detail: format!("{ROWS} rows x {K} cols member rescan"),
            kernel_m,
            scalar_m: Some(scalar_m),
        });
    }

    // scan_gather_column: the entry-rescan gather.
    let cols: Vec<usize> = (0..K).collect();
    let kg: Vec<_> = cols
        .iter()
        .map(|&c| kernels::scan_gather_column(&members, &acc, CAP, c))
        .collect();
    let sg: Vec<_> = cols
        .iter()
        .map(|&c| scalar_gather_column(&members, &acc, CAP, c))
        .collect();
    for (a, b) in kg.iter().zip(&sg) {
        assert!(
            a.0.to_bits() == b.0.to_bits()
                && a.1.to_bits() == b.1.to_bits()
                && a.2 == b.2
                && a.3 == b.3
                && a.4 == b.4,
            "scan_gather_column diverged from the scalar reference"
        );
    }
    if !check_only {
        let kernel_m = measure_rounds(reps, || {
            cols.iter()
                .map(|&c| kernels::scan_gather_column(&members, &acc, CAP, c).1)
                .sum::<f64>()
        });
        let scalar_m = measure_rounds(reps, || {
            cols.iter()
                .map(|&c| scalar_gather_column(&members, &acc, CAP, c).1)
                .sum::<f64>()
        });
        rows.push(Row {
            kernel: "scan_gather_column",
            detail: format!("{K} columns x {ROWS} members gather"),
            kernel_m,
            scalar_m: Some(scalar_m),
        });
    }

    // sum: canonical blocked tree vs naive sequential fold. These are
    // *different reduction orders by design* (the one-time re-baseline),
    // so the equivalence check is exact only on this integer-valued data.
    let naive: f64 = acc.iter().sum();
    let tree = kernels::sum(&acc);
    assert_eq!(
        naive.to_bits(),
        tree.to_bits(),
        "integer-valued data must sum exactly under any reduction order"
    );
    if !check_only {
        let kernel_m = measure_rounds(reps, || kernels::sum(&acc));
        let scalar_m = measure_rounds(reps, || acc.iter().sum::<f64>());
        rows.push(Row {
            kernel: "sum",
            detail: format!("{} doubles, canonical blocked tree", acc.len()),
            kernel_m,
            scalar_m: Some(scalar_m),
        });
    }

    // fold_add: the merge column/row fold.
    let src: Vec<f64> = acc[..ROWS].to_vec();
    let mut kernel_dst = acc[ROWS..2 * ROWS].to_vec();
    let mut scalar_dst = kernel_dst.clone();
    kernels::fold_add(&mut kernel_dst, &src);
    for (d, s) in scalar_dst.iter_mut().zip(&src) {
        *d += s;
    }
    assert!(
        kernel_dst
            .iter()
            .zip(&scalar_dst)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "fold_add diverged from the scalar reference"
    );
    if !check_only {
        let mut dst = kernel_dst;
        let kernel_m = measure_rounds(reps, || {
            for _ in 0..64 {
                kernels::fold_add(&mut dst, &src);
            }
            dst[0]
        });
        let scalar_m = measure_rounds(reps, || {
            for _ in 0..64 {
                for (d, s) in dst.iter_mut().zip(&src) {
                    *d += s;
                }
            }
            dst[0]
        });
        rows.push(Row {
            kernel: "fold_add",
            detail: format!("{ROWS} doubles x 64 folds", ROWS = src.len()),
            kernel_m,
            scalar_m: Some(scalar_m),
        });
    }

    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help") {
        println!("bench_kernels: lane-kernel microbenchmarks + kernelized engine headline");
        println!(
            "  --smoke      assert kernel == scalar equivalence only (CI; no timing, no file)"
        );
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut rng = StdRng::seed_from_u64(0x6b65726e);

    if smoke {
        micro_rows(&mut rng, 1, true);
        // The engine-level contract (kernelized hot paths bit-identical at
        // every thread count) is covered by tests/tests/kernels.rs; the
        // smoke leg just proves kernel == scalar on full-size data.
        println!("smoke OK: every kernel matches its scalar reference on hot-path-shaped data");
        return;
    }

    let reps = 3; // best-of-3, shared reporting convention

    // Headline first, on a cold core: the 10k-node BA / 200-color step
    // loop, deterministic kernels, vs the recorded pre-kernel baseline.
    // Extra rounds here because this is the row the acceptance bar reads —
    // single-core hosts throttle under sustained load and best-of picks
    // the unthrottled round.
    let g = generators::barabasi_albert(10_000, 4, 7);
    let config = RothkoConfig::with_max_colors(200);
    // Untimed warm-up: ramp the frequency governor (and fault in the
    // binary/graph pages) before the timed rounds — an idle core starts
    // the first round well below its steady clock and takes several
    // hundred milliseconds of sustained load to reach it.
    let warm = std::time::Instant::now();
    while warm.elapsed().as_secs_f64() < 0.75 {
        let c = Rothko::new(config.clone()).run(&g);
        assert_eq!(c.partition.num_colors(), 200);
    }
    let headline = measure_rounds(5, || {
        let c = Rothko::new(config.clone()).run(&g);
        assert_eq!(c.partition.num_colors(), 200);
        c
    });
    let headline_speedup = BASELINE_SECONDS / headline.best();
    println!(
        "headline: 10k-node BA / 200 colors {:.4}s vs recorded baseline {:.4}s ({:.2}x)",
        headline.best(),
        BASELINE_SECONDS,
        headline_speedup
    );

    // fast_math: same instance with relaxed sum order. Off by default
    // (asserted); on the unit-weight graph the colorings must still agree.
    assert!(
        !RothkoConfig::with_max_colors(200).fast_math,
        "fast_math must be opt-in"
    );
    let fast = measure_rounds(reps, || {
        let c = Rothko::new(config.clone().fast_math(true)).run(&g);
        assert_eq!(c.partition.num_colors(), 200);
        c
    });
    assert_eq!(
        fast.value.partition.canonical_assignment(),
        headline.value.partition.canonical_assignment(),
        "unit-weight graph: fast_math must not change the coloring"
    );
    println!(
        "fast_math: {:.4}s ({:.2}x vs deterministic kernels; colorings identical)",
        fast.best(),
        headline.best() / fast.best()
    );

    let mut rows = micro_rows(&mut rng, reps, false);
    for r in &rows {
        r.print();
    }

    // merge_candidates: capped column sweeps over the finished 200-color
    // engine state (the kernelized blocked bound computation).
    let partition = headline.value.partition.clone();
    let mut engine = IncrementalDegrees::new(&g, &partition);
    engine.refresh(&partition, 0.0);
    let merge = measure_rounds(reps, || {
        let mut total = 0usize;
        for _ in 0..8 {
            total += engine.merge_candidates(f64::INFINITY).len();
        }
        total
    });
    println!(
        "merge_candidates: 8 sweeps over k=200 in {:.4}s ({} candidates/sweep)",
        merge.best(),
        merge.value / 8
    );
    rows.push(Row {
        kernel: "merge_candidates",
        detail: "8 full sweeps, k=200 engine".into(),
        kernel_m: merge_to_f64(merge),
        scalar_m: None,
    });

    // Warm sweep patching: the budget-sweep pipeline whose reduction
    // patching and resumed solves run through the kernelized folds.
    let (net, _) = qsc_flow::generators::grid_flow_network(60, 60, 3.0, 0.25, 42);
    let budgets = [10usize, 20, 40, 80];
    let sweep = measure_rounds(reps, || {
        qsc_flow::sweep::sweep_max_flow(&net, &budgets, 0.0)
            .last()
            .expect("sweep points")
            .value
    });
    println!(
        "warm sweep: 3.6k-node grid, {} budgets in {:.4}s",
        budgets.len(),
        sweep.best()
    );
    rows.push(Row {
        kernel: "warm_sweep",
        detail: "grid-60x60, 4 budgets, patched".into(),
        kernel_m: merge_to_f64(sweep),
        scalar_m: None,
    });

    let mut json: Vec<String> = rows.iter().map(Row::to_json).collect();
    json.push(format!(
        "{{\"summary\":\"kernels_headline\",\"graph\":\"barabasi_albert\",\"nodes\":10000,\"colors\":200,\"baseline_seconds\":{BASELINE_SECONDS:.6},\"headline_seconds\":{:.6},\"headline_rounds\":{},\"headline_speedup\":{headline_speedup:.2},\"fast_math_seconds\":{:.6},\"fast_math_rounds\":{},\"fast_math_speedup\":{:.2},\"host_cpus\":{},\"peak_rss_bytes\":{},\"bar_enforced\":true}}",
        headline.best(),
        headline.rounds_json(),
        fast.best(),
        fast.rounds_json(),
        headline.best() / fast.best(),
        host_cpus(),
        qsc_bench::peak_rss_json()
    ));
    std::fs::write("BENCH_kernels.json", json.join("\n") + "\n")
        .expect("failed to write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json");

    assert!(
        headline_speedup >= 1.3,
        "kernelized headline speedup {headline_speedup:.2}x below the 1.3x acceptance bar \
         (vs the recorded pre-kernel baseline {BASELINE_SECONDS}s)"
    );
}

/// Repackage a non-f64 measurement for the shared `Row` record (only the
/// timings travel; the value already served its assertion).
fn merge_to_f64<T>(m: Measurement<T>) -> Measurement<f64> {
    Measurement {
        value: 0.0,
        rounds: m.rounds,
    }
}
