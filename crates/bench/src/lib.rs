//! # qsc-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Sec. 6). Each experiment is a binary (see `src/bin/`); the
//! mapping from paper table/figure to binary is given in `DESIGN.md`
//! ("Per-experiment index") and the measured results are recorded in
//! `EXPERIMENTS.md`.
//!
//! This library crate holds the small amount of shared harness code: wall
//! clock timing, text-table rendering, and serializable result records.

#![forbid(unsafe_code)]

use std::time::Instant;

pub mod experiments;
pub mod report;

/// Time a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// A best-of-`reps` measurement that keeps every round's raw wall time —
/// the shared JSON reporting convention: bench bins record the best
/// *and* the per-round raw timings (plus `host_cpus`/`bar_enforced` via
/// [`host_cpus`]), so the perf trajectory is comparable across hosts and
/// noisy rounds are visible instead of silently folded away.
pub struct Measurement<T> {
    /// The last round's result (results are deterministic across rounds).
    pub value: T,
    /// Raw wall time of every round, in measurement order.
    pub rounds: Vec<f64>,
}

impl<T> Measurement<T> {
    /// Best (minimum) wall time across rounds.
    pub fn best(&self) -> f64 {
        self.rounds.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The rounds as a JSON array fragment, e.g. `[0.041200,0.042913]`.
    pub fn rounds_json(&self) -> String {
        let cells: Vec<String> = self.rounds.iter().map(|s| format!("{s:.6}")).collect();
        format!("[{}]", cells.join(","))
    }
}

/// Run `f` `reps` times (at least once), recording every round's wall time.
pub fn measure_rounds<T>(reps: usize, mut f: impl FnMut() -> T) -> Measurement<T> {
    let reps = reps.max(1);
    let mut rounds = Vec::with_capacity(reps);
    let (mut value, secs) = timed(&mut f);
    rounds.push(secs);
    for _ in 1..reps {
        let (v, secs) = timed(&mut f);
        rounds.push(secs);
        value = v;
    }
    Measurement { value, rounds }
}

/// The host's available parallelism (1 when undetectable) — recorded in
/// every bench JSON so wall-clock bars can be interpreted per host.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable — the
/// allocation high-water every bench JSON records alongside wall time, so
/// memory regressions show up in the same trajectory as perf regressions.
/// This is a whole-process high-water mark (it never decreases), distinct
/// from the per-engine `IncrementalDegrees::resident_bytes` accounting
/// `bench_memory` compares across storage modes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            // Degrade to None on anything unexpected (missing value,
            // non-numeric junk, a unit other than kB) rather than
            // guessing: hosts without a Linux-shaped procfs simply
            // record `rss_available: false`.
            let mut fields = rest.split_whitespace();
            let kb: u64 = fields.next()?.parse().ok()?;
            match fields.next() {
                Some(unit) if !unit.eq_ignore_ascii_case("kB") => return None,
                _ => {}
            }
            return Some(kb.saturating_mul(1024));
        }
    }
    None
}

/// Whether [`peak_rss_bytes`] works on this host — recorded in bench
/// JSON so a `null`/absent RSS reads as "not measurable here" rather
/// than a silent measurement failure.
#[must_use]
pub fn rss_available() -> bool {
    peak_rss_bytes().is_some()
}

/// `peak_rss_bytes` as a JSON value fragment: the byte count, or `null`
/// on hosts without procfs (the portable fallback keeps the field present
/// so downstream tooling never branches on its absence).
pub fn peak_rss_json() -> String {
    match peak_rss_bytes() {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    }
}

/// Relative-error metric used by the paper for max-flow and LP tasks:
/// `max(v/v̂, v̂/v)`, ideal value 1.0.
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    qsc_flow::reduce::relative_error(actual, predicted)
}

/// Look up the value following a `--flag` argument (shared by the figure
/// binaries' tiny CLIs). A flag with no following value reads as absent.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// One round of random node churn against a [`qsc_graph::GraphDelta`] —
/// the shared driver of the dynamic-maintenance bench and the node-churn
/// integration tests (one copy, so the batch-assembly ordering they both
/// exercise cannot drift). Inserts `inserts` nodes, each wired to `wire`
/// random live nodes with `weight(rng)`-weighted edges and colored like
/// its first neighbor; removes `removes` victims whose colors keep at
/// least two members; returns the assembled
/// [`qsc_core::rothko::NodeChurnBatch`] plus the renumbered compacted
/// graph.
pub fn random_node_churn(
    delta: &mut qsc_graph::GraphDelta,
    p: &qsc_core::Partition,
    rng: &mut rand::rngs::StdRng,
    inserts: usize,
    removes: usize,
    wire: usize,
    mut weight: impl FnMut(&mut rand::rngs::StdRng) -> f64,
) -> (qsc_core::rothko::NodeChurnBatch, qsc_graph::Graph) {
    use rand::Rng;
    let n0 = delta.num_nodes();
    let mut sizes: Vec<usize> = p.sizes();
    let mut inserted_colors = Vec::new();
    for _ in 0..inserts {
        let v = delta.insert_node();
        let mut color = None;
        for _ in 0..wire {
            for _ in 0..50 {
                let t = rng.random_range(0..n0) as qsc_graph::NodeId;
                if delta.is_live(t) && !delta.has_edge(v, t) {
                    let w = weight(rng);
                    delta.insert_edge(v, t, w).expect("fresh edge");
                    color.get_or_insert(p.color_of(t));
                    break;
                }
            }
        }
        let c = color.unwrap_or(0);
        inserted_colors.push(c);
        sizes[c as usize] += 1;
    }
    let mut removed = Vec::new();
    for _ in 0..removes {
        for _ in 0..100 {
            let v = rng.random_range(0..n0) as qsc_graph::NodeId;
            let c = p.color_of(v) as usize;
            if delta.is_live(v) && sizes[c] >= 2 {
                delta.remove_node(v).expect("live node");
                sizes[c] -= 1;
                removed.push(v);
                break;
            }
        }
    }
    let edge_events = delta.drain_events();
    delta.drain_node_events();
    let (compacted, remap) = delta.compact_renumber();
    (
        qsc_core::rothko::NodeChurnBatch {
            inserted_colors,
            edge_events,
            removed,
            remap,
        },
        compacted,
    )
}

/// Render a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2.5".into()],
            ],
        );
        assert!(table.contains("longer-name"));
        assert!(table.lines().count() >= 4);
    }

    #[test]
    fn relative_error_wrapper() {
        assert_eq!(relative_error(2.0, 4.0), 2.0);
    }

    #[test]
    fn peak_rss_reads_a_plausible_high_water() {
        // On Linux procfs is present; elsewhere the portable fallback is
        // None and the JSON fragment is the literal `null`.
        match peak_rss_bytes() {
            Some(bytes) => {
                assert!(bytes >= 1 << 20, "peak RSS below 1 MiB: {bytes}");
                assert_eq!(peak_rss_json(), bytes.to_string());
            }
            None => assert_eq!(peak_rss_json(), "null"),
        }
    }

    #[test]
    fn measure_rounds_records_every_round() {
        let m = measure_rounds(3, || 7);
        assert_eq!(m.value, 7);
        assert_eq!(m.rounds.len(), 3);
        assert!(m.best() <= m.rounds[0]);
        assert!(m.rounds_json().starts_with('[') && m.rounds_json().ends_with(']'));
        assert!(host_cpus() >= 1);
    }
}
