//! Shared experiment drivers used by the figure/table binaries.
//!
//! Each driver measures, for one dataset and a list of color budgets, the
//! end-to-end approximation time (coloring + reduction + solving), the exact
//! baseline time, and the paper's accuracy metric for that task (relative
//! error for max-flow, signed relative error for LP, Spearman's ρ for
//! centrality).
//!
//! All three drivers run the budget list through the **warm-started sweep
//! pipeline** (`qsc_core::sweep` and its task instantiations in `qsc-flow`
//! and `qsc-lp`): one monotone coloring refinement is checkpointed at every
//! budget, the reduced instance is patched per split instead of rebuilt,
//! and the reduced solver resumes from the previous budget's solution. The
//! per-budget results equal the old per-budget cold path (fresh coloring +
//! rebuild + cold solve at each budget); the reported `approx_seconds` is
//! *cumulative* — the warm pipeline's end-to-end cost of reaching that
//! budget from the start of the sweep — which is the honest cost model for
//! a sweep and is what `bench_sweep` compares against the cold path.

use crate::report::TradeoffPoint;
use crate::timed;
use qsc_centrality::approx::{approximate_with_partition, CentralityApproxConfig};
use qsc_centrality::{brandes, spearman};
use qsc_core::rothko::RothkoConfig;
use qsc_core::sweep::ColoringSweep;
use qsc_datasets::Scale;
use qsc_flow::push_relabel;
use qsc_flow::reduce::relative_error;
use qsc_flow::sweep::sweep_max_flow;
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::LpColoringConfig;
use qsc_lp::sweep::sweep_lp;
use qsc_lp::LpReductionVariant;

/// Default color budgets swept by the Fig. 7 / Fig. 8 experiments.
pub const DEFAULT_BUDGETS: &[usize] = &[5, 10, 20, 35, 60, 100, 150];

/// Objectives with absolute value at or below this are treated as zero by
/// [`lp_accuracy`]: the signed relative error is computed against
/// `max(|exact|, LP_ACCURACY_EPS)` so a (near-)zero exact optimum yields a
/// large-but-finite error instead of the old ratio metric's `∞`.
pub const LP_ACCURACY_EPS: f64 = 1e-9;

/// Signed relative error of a reduced LP objective against the exact one:
/// `(approx − exact) / max(|exact|, LP_ACCURACY_EPS)`. `0.0` is ideal;
/// positive means the reduction overestimates (the usual direction for the
/// paper's relaxations). Finite for every pair of finite objectives,
/// including zero and negative ones — unlike the previous
/// `max(a/b, b/a)` ratio, which returned `f64::INFINITY` whenever either
/// objective was ≈ 0.
pub fn lp_accuracy(exact: f64, approx: f64) -> f64 {
    (approx - exact) / exact.abs().max(LP_ACCURACY_EPS)
}

/// Parse a `--budgets` value: comma-separated ascending color budgets
/// (e.g. `"5,10,20,40"`). Returns `None` (with a message on stderr) when
/// the list is empty, unparsable, or not non-decreasing — the warm sweep
/// refines monotonically, so budgets must not go backwards.
pub fn parse_budgets(raw: &str) -> Option<Vec<usize>> {
    let mut budgets = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.parse::<usize>() {
            Ok(b) if b > 0 => budgets.push(b),
            _ => {
                eprintln!("--budgets: invalid budget {part:?} (expected a positive integer)");
                return None;
            }
        }
    }
    if budgets.is_empty() {
        eprintln!("--budgets: empty budget list");
        return None;
    }
    if budgets.windows(2).any(|w| w[1] < w[0]) {
        eprintln!("--budgets: budgets must be non-decreasing (the sweep only refines)");
        return None;
    }
    Some(budgets)
}

/// Budget list for a figure binary: the parsed `--budgets` flag when
/// present, [`DEFAULT_BUDGETS`] otherwise. Exits with status 2 on an
/// invalid list (message already printed by [`parse_budgets`]).
pub fn budgets_from_args(args: &[String]) -> Vec<usize> {
    match crate::arg_value(args, "--budgets") {
        Some(raw) => parse_budgets(&raw).unwrap_or_else(|| std::process::exit(2)),
        None => DEFAULT_BUDGETS.to_vec(),
    }
}

/// Max-flow speed/accuracy sweep for one dataset (warm-started pipeline).
pub fn maxflow_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let network = qsc_datasets::load_flow(dataset, scale).expect("known flow dataset");
    let (exact, exact_seconds) = timed(|| push_relabel::max_flow(&network));
    sweep_max_flow(&network, budgets, 0.0)
        .into_iter()
        .map(|point| TradeoffPoint {
            task: "maxflow".into(),
            dataset: dataset.into(),
            colors: point.colors,
            approx_seconds: point.cumulative_seconds,
            exact_seconds,
            accuracy: relative_error(exact.value, point.value),
            max_q_error: point.max_q_error,
        })
        .collect()
}

/// LP speed/accuracy sweep for one dataset (warm-started pipeline).
pub fn lp_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let lp = qsc_datasets::load_lp(dataset, scale).expect("known LP dataset");
    let (exact, exact_seconds) =
        timed(|| interior_point::solve_with(&lp, &InteriorPointConfig::default()).0);
    sweep_lp(
        &lp,
        budgets,
        &LpColoringConfig::with_max_colors(usize::MAX),
        LpReductionVariant::SqrtNormalized,
    )
    .into_iter()
    .map(|point| TradeoffPoint {
        task: "lp".into(),
        dataset: dataset.into(),
        colors: point.rows + point.cols,
        approx_seconds: point.cumulative_seconds,
        exact_seconds,
        accuracy: lp_accuracy(exact.objective, point.objective),
        max_q_error: point.max_q_error,
    })
    .collect()
}

/// Centrality speed/accuracy sweep for one dataset. The coloring advances
/// through one warm sweep (each budget continues the previous refinement);
/// the stratified estimator then runs per checkpoint.
pub fn centrality_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let graph = qsc_datasets::load_graph(dataset, scale).expect("known graph dataset");
    let (exact, exact_seconds) = timed(|| brandes::betweenness(&graph));
    let mut sweep = ColoringSweep::new(&graph, RothkoConfig::for_centrality(usize::MAX));
    // Cumulative pipeline time, like the flow/LP sweeps: coloring so far
    // plus every checkpoint's estimator — accuracy-metric evaluation
    // (spearman) stays outside the clock.
    let mut cumulative_seconds = 0.0f64;
    budgets
        .iter()
        .map(|&budget| {
            let (approx, seconds) = timed(|| {
                let checkpoint = sweep.advance_to(budget, |_, _| {});
                approximate_with_partition(
                    &graph,
                    sweep.partition().clone(),
                    checkpoint.max_q_error,
                    &CentralityApproxConfig::with_max_colors(budget),
                )
            });
            cumulative_seconds += seconds;
            TradeoffPoint {
                task: "centrality".into(),
                dataset: dataset.into(),
                colors: approx.partition.num_colors(),
                approx_seconds: cumulative_seconds,
                exact_seconds,
                accuracy: spearman(&exact, &approx.scores),
                max_q_error: approx.max_q_error,
            }
        })
        .collect()
}

/// Render a list of trade-off points as the text table printed by the
/// figure binaries.
pub fn tradeoff_table(points: &[TradeoffPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.colors.to_string(),
                format!("{:.4}", p.approx_seconds),
                format!("{:.4}", p.exact_seconds),
                format!(
                    "{:.2}%",
                    100.0 * p.approx_seconds / p.exact_seconds.max(1e-9)
                ),
                format!("{:.4}", p.accuracy),
                format!("{:.2}", p.max_q_error),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "dataset",
            "colors",
            "approx(s)",
            "exact(s)",
            "budget",
            "accuracy",
            "max q",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxflow_driver_produces_points() {
        let points = maxflow_tradeoff("tsukuba0", Scale::Small, &[5, 10]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy >= 1.0));
        assert!(points[1].colors >= points[0].colors);
        // Cumulative sweep timings are non-decreasing.
        assert!(points[1].approx_seconds >= points[0].approx_seconds);
    }

    #[test]
    fn centrality_driver_produces_points() {
        let points = centrality_tradeoff("deezer", Scale::Small, &[10, 40]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy <= 1.0 + 1e-9));
        assert!(points[1].accuracy >= points[0].accuracy - 0.2);
    }

    #[test]
    fn lp_driver_produces_points() {
        let points = lp_tradeoff("qap15", Scale::Small, &[8, 30]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy.is_finite()));
    }

    #[test]
    fn lp_accuracy_is_finite_near_zero() {
        // The old ratio metric returned ∞ for any of these.
        assert_eq!(lp_accuracy(0.0, 0.0), 0.0);
        assert!(lp_accuracy(0.0, 1.0).is_finite());
        assert!(lp_accuracy(1.0, 0.0).is_finite());
        assert!(lp_accuracy(-2.0, -1.0).is_finite());
        // Signed: overestimates are positive, underestimates negative.
        assert!(lp_accuracy(10.0, 11.0) > 0.0);
        assert!(lp_accuracy(10.0, 9.0) < 0.0);
        assert!((lp_accuracy(10.0, 11.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn budgets_parser_accepts_and_rejects() {
        assert_eq!(parse_budgets("5,10,20"), Some(vec![5, 10, 20]));
        assert_eq!(parse_budgets(" 8 , 8 ,12 "), Some(vec![8, 8, 12]));
        assert_eq!(parse_budgets("20,10"), None, "descending");
        assert_eq!(parse_budgets(""), None, "empty");
        assert_eq!(parse_budgets("5,x"), None, "junk");
        assert_eq!(parse_budgets("0"), None, "zero budget");
    }

    #[test]
    fn table_renders_all_points() {
        let points = maxflow_tradeoff("venus0", Scale::Small, &[6]);
        let table = tradeoff_table(&points);
        assert!(table.contains("venus0"));
        assert!(table.lines().count() >= 3);
    }
}
