//! Shared experiment drivers used by the figure/table binaries.
//!
//! Each driver measures, for one dataset and a list of color budgets, the
//! end-to-end approximation time (coloring + reduction + solving), the exact
//! baseline time, and the paper's accuracy metric for that task (relative
//! error for max-flow and LP, Spearman's ρ for centrality).

use crate::report::TradeoffPoint;
use crate::timed;
use qsc_centrality::approx::{approximate, CentralityApproxConfig};
use qsc_centrality::{brandes, spearman};
use qsc_datasets::Scale;
use qsc_flow::push_relabel;
use qsc_flow::reduce::{approximate_max_flow, relative_error, FlowApproxConfig};
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::simplex;

/// Default color budgets swept by the Fig. 7 / Fig. 8 experiments.
pub const DEFAULT_BUDGETS: &[usize] = &[5, 10, 20, 35, 60, 100, 150];

/// Max-flow speed/accuracy sweep for one dataset.
pub fn maxflow_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let network = qsc_datasets::load_flow(dataset, scale).expect("known flow dataset");
    let (exact, exact_seconds) = timed(|| push_relabel::max_flow(&network));
    budgets
        .iter()
        .map(|&budget| {
            let (approx, approx_seconds) = timed(|| {
                approximate_max_flow(&network, &FlowApproxConfig::with_max_colors(budget))
            });
            TradeoffPoint {
                task: "maxflow".into(),
                dataset: dataset.into(),
                colors: approx.colors,
                approx_seconds,
                exact_seconds,
                accuracy: relative_error(exact.value, approx.value),
                max_q_error: approx.max_q_error,
            }
        })
        .collect()
}

/// LP speed/accuracy sweep for one dataset.
pub fn lp_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let lp = qsc_datasets::load_lp(dataset, scale).expect("known LP dataset");
    let (exact, exact_seconds) =
        timed(|| interior_point::solve_with(&lp, &InteriorPointConfig::default()).0);
    budgets
        .iter()
        .map(|&budget| {
            let ((reduced, solution), approx_seconds) = timed(|| {
                let reduced = reduce_with_rothko(
                    &lp,
                    &LpColoringConfig::with_max_colors(budget),
                    LpReductionVariant::SqrtNormalized,
                );
                let solution = simplex::solve(&reduced.problem);
                (reduced, solution)
            });
            let accuracy = if solution.objective > 0.0 && exact.objective > 0.0 {
                (solution.objective / exact.objective).max(exact.objective / solution.objective)
            } else {
                f64::INFINITY
            };
            TradeoffPoint {
                task: "lp".into(),
                dataset: dataset.into(),
                colors: reduced.num_rows() + reduced.num_cols(),
                approx_seconds,
                exact_seconds,
                accuracy,
                max_q_error: reduced.max_q_error,
            }
        })
        .collect()
}

/// Centrality speed/accuracy sweep for one dataset.
pub fn centrality_tradeoff(dataset: &str, scale: Scale, budgets: &[usize]) -> Vec<TradeoffPoint> {
    let graph = qsc_datasets::load_graph(dataset, scale).expect("known graph dataset");
    let (exact, exact_seconds) = timed(|| brandes::betweenness(&graph));
    budgets
        .iter()
        .map(|&budget| {
            let (approx, approx_seconds) =
                timed(|| approximate(&graph, &CentralityApproxConfig::with_max_colors(budget)));
            TradeoffPoint {
                task: "centrality".into(),
                dataset: dataset.into(),
                colors: approx.partition.num_colors(),
                approx_seconds,
                exact_seconds,
                accuracy: spearman(&exact, &approx.scores),
                max_q_error: approx.max_q_error,
            }
        })
        .collect()
}

/// Render a list of trade-off points as the text table printed by the
/// figure binaries.
pub fn tradeoff_table(points: &[TradeoffPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.colors.to_string(),
                format!("{:.4}", p.approx_seconds),
                format!("{:.4}", p.exact_seconds),
                format!(
                    "{:.2}%",
                    100.0 * p.approx_seconds / p.exact_seconds.max(1e-9)
                ),
                format!("{:.4}", p.accuracy),
                format!("{:.2}", p.max_q_error),
            ]
        })
        .collect();
    crate::render_table(
        &[
            "dataset",
            "colors",
            "approx(s)",
            "exact(s)",
            "budget",
            "accuracy",
            "max q",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxflow_driver_produces_points() {
        let points = maxflow_tradeoff("tsukuba0", Scale::Small, &[5, 10]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy >= 1.0));
        assert!(points[1].colors >= points[0].colors);
    }

    #[test]
    fn centrality_driver_produces_points() {
        let points = centrality_tradeoff("deezer", Scale::Small, &[10, 40]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy <= 1.0 + 1e-9));
        assert!(points[1].accuracy >= points[0].accuracy - 0.2);
    }

    #[test]
    fn lp_driver_produces_points() {
        let points = lp_tradeoff("qap15", Scale::Small, &[8, 30]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.accuracy.is_finite()));
    }

    #[test]
    fn table_renders_all_points() {
        let points = maxflow_tradeoff("venus0", Scale::Small, &[6]);
        let table = tradeoff_table(&points);
        assert!(table.contains("venus0"));
        assert!(table.lines().count() >= 3);
    }
}
