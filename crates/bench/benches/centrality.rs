//! Criterion micro-benchmarks for betweenness centrality (supports Fig. 7c /
//! Table 1 top): exact Brandes vs. the coloring-based approximation and the
//! Riondato–Kornaropoulos sampling baseline on the Deezer stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_centrality::approx::{approximate, CentralityApproxConfig};
use qsc_centrality::brandes;
use qsc_centrality::sampling::{betweenness_sampling, SamplingConfig};
use qsc_datasets::Scale;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let g = qsc_datasets::load_graph("deezer", Scale::Small).unwrap();
    let mut group = c.benchmark_group("centrality_exact");
    group.sample_size(10);
    group.bench_function("brandes", |b| {
        b.iter(|| black_box(brandes::betweenness(&g)))
    });
    group.finish();
}

fn bench_approximations(c: &mut Criterion) {
    let g = qsc_datasets::load_graph("deezer", Scale::Small).unwrap();
    let mut group = c.benchmark_group("centrality_approx");
    group.sample_size(10);
    for colors in [25usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("coloring", colors),
            &colors,
            |b, &colors| {
                b.iter(|| {
                    black_box(
                        approximate(&g, &CentralityApproxConfig::with_max_colors(colors)).scores,
                    )
                })
            },
        );
    }
    group.bench_function("riondato_kornaropoulos_eps_0.05", |b| {
        b.iter(|| {
            black_box(betweenness_sampling(
                &g,
                &SamplingConfig {
                    epsilon: 0.05,
                    seed: 3,
                    ..Default::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_exact, bench_approximations);
criterion_main!(benches);
