//! Criterion micro-benchmarks for the coloring algorithms (supports Table 4
//! and Sec. 6.3): Rothko at several color budgets vs. classical stable
//! coloring on the OpenFlights and Facebook stand-ins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_core::stable_coloring;
use qsc_datasets::Scale;
use std::hint::black_box;

fn bench_rothko(c: &mut Criterion) {
    let mut group = c.benchmark_group("rothko");
    group.sample_size(10);
    for name in ["openflights", "facebook"] {
        let g = qsc_datasets::load_graph(name, Scale::Small).unwrap();
        for colors in [16usize, 64, 128] {
            group.bench_with_input(
                BenchmarkId::new(name.to_string(), colors),
                &colors,
                |b, &colors| {
                    b.iter(|| {
                        let config =
                            RothkoConfig::with_max_colors(colors).split_mean(SplitMean::Geometric);
                        black_box(Rothko::new(config).run(&g).partition.num_colors())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_stable(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_coloring");
    group.sample_size(10);
    for name in ["openflights", "facebook"] {
        let g = qsc_datasets::load_graph(name, Scale::Small).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| black_box(stable_coloring(&g).num_colors()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rothko, bench_stable);
criterion_main!(benches);
