//! Incremental refinement engine vs. from-scratch recomputation.
//!
//! Pits [`qsc_core::rothko::Rothko`] (which maintains an
//! `IncrementalDegrees` engine across splits) against the from-scratch
//! reference stepper (which rebuilds the degree matrices each step, the
//! seed's original behaviour) on Barabási–Albert graphs. The recorded
//! speedups live in `BENCH_rothko.json` (produced by the
//! `bench_rothko_incremental` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::generators;
use std::hint::black_box;

fn bench_incremental_vs_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("rothko_engine");
    group.sample_size(10);
    for &(n, colors) in &[(2_000usize, 64usize), (10_000, 200)] {
        let g = generators::barabasi_albert(n, 4, 7);
        group.bench_with_input(
            BenchmarkId::new(format!("incremental/n{n}"), colors),
            &colors,
            |b, &colors| {
                b.iter(|| {
                    let coloring = Rothko::new(RothkoConfig::with_max_colors(colors)).run(&g);
                    black_box(coloring.partition.num_colors())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("from_scratch/n{n}"), colors),
            &colors,
            |b, &colors| {
                b.iter(|| {
                    let coloring =
                        Rothko::new(RothkoConfig::with_max_colors(colors)).run_reference(&g);
                    black_box(coloring.partition.num_colors())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_scratch);
criterion_main!(benches);
