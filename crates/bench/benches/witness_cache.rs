//! Witness-cache selection strategies: linear scan vs. binary heap.
//!
//! [`IncrementalDegrees::pick_witness`] selects the best split candidate by
//! scanning the `k` cached per-row bests and applying the α size weighting
//! on the fly (the row's own size can change without invalidating the
//! row-internal ordering, so the weight cannot be pre-baked into a
//! persistent order). The ROADMAP asked whether a binary heap over
//! `row_best` wins at large `k`; this micro-benchmark answers it.
//!
//! Two harnesses:
//!
//! * **synthetic** — the selection kernels run over a seeded array shaped
//!   exactly like the engine's row cache (`weighted`, `error`, `other`,
//!   `outgoing` per row, plus a per-row size for the α weighting), at
//!   `k ∈ {10², 10³, 10⁴}`. The heap variant pays one `O(k)` heapify plus a
//!   pop — it cannot beat a single `O(k)` scan for a one-shot pick, and a
//!   *persistent* heap would have to be rebuilt anyway whenever α-weights
//!   change with color sizes (every split).
//! * **engine** — `pick_witness` on a real engine refined to `k ∈ {10²,
//!   10³}` colors on a Barabási–Albert graph (a dense `k = 10⁴` engine
//!   needs gigabytes of pair summaries, hence the synthetic harness for
//!   the largest point).
//!
//! Measured on the repo's reference container (1 × 2.7 GHz core); numbers
//! recorded in the `qsc_core::q_error` module docs. The scan won at every
//! `k`, so it stays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::generators;
use rand::prelude::*;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Mirror of the engine's cached per-row best candidate.
#[derive(Clone, Copy)]
struct Row {
    weighted: f64,
    size: usize,
}

fn synthetic_rows(k: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| Row {
            weighted: (rng.random_range(1u32..1_000_000) as f64) / 1e3,
            size: rng.random_range(2usize..5_000),
        })
        .collect()
}

/// The engine's strategy: one linear scan, α weighting applied on the fly,
/// first-strictly-greater tie-breaking (mirrors `pick_witness`).
fn pick_scan(rows: &[Row], alpha: f64) -> usize {
    let mut best = 0usize;
    let mut best_w = f64::NEG_INFINITY;
    for (s, row) in rows.iter().enumerate() {
        let weighted = row.weighted * (row.size as f64).powf(alpha);
        if weighted > best_w {
            best_w = weighted;
            best = s;
        }
    }
    best
}

/// The heap alternative: heapify the α-weighted candidates, pop the top.
/// The heap must be rebuilt per pick because the α weights depend on color
/// sizes, which change on every split.
fn pick_heap(rows: &[Row], alpha: f64) -> usize {
    let heap: BinaryHeap<(u64, usize)> = rows
        .iter()
        .enumerate()
        .map(|(s, row)| {
            let weighted = row.weighted * (row.size as f64).powf(alpha);
            // Finite non-negative weights order correctly by their bits.
            (weighted.to_bits(), usize::MAX - s)
        })
        .collect();
    heap.peek().map(|&(_, s)| usize::MAX - s).unwrap_or(0)
}

fn bench_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_pick_synthetic");
    group.sample_size(20);
    for &k in &[100usize, 1_000, 10_000] {
        let rows = synthetic_rows(k, 0xC0FFEE + k as u64);
        group.bench_with_input(BenchmarkId::new("scan", k), &rows, |b, rows| {
            b.iter(|| black_box(pick_scan(rows, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("heap", k), &rows, |b, rows| {
            b.iter(|| black_box(pick_heap(rows, 1.0)))
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("witness_pick_engine");
    group.sample_size(20);
    for &k in &[100usize, 1_000] {
        let g = generators::barabasi_albert(4 * k, 4, 11);
        let rothko = Rothko::new(RothkoConfig::with_max_colors(k));
        let mut run = rothko.start(&g);
        while run.step() {}
        let engine = qsc_core::IncrementalDegrees::new(run.graph(), run.partition());
        let mut fresh = engine.clone();
        fresh.refresh(run.partition(), 0.0);
        group.bench_with_input(BenchmarkId::new("pick_witness", k), &k, |b, _| {
            b.iter(|| black_box(fresh.pick_witness(run.partition(), 1.0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthetic, bench_engine);
criterion_main!(benches);
