//! Criterion micro-benchmarks for max-flow (supports Fig. 7a): exact
//! push-relabel and Dinic vs. the coloring-based approximation at two color
//! budgets on a vision-style grid instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_datasets::Scale;
use qsc_flow::reduce::{approximate_max_flow, FlowApproxConfig};
use qsc_flow::{dinic, push_relabel};
use std::hint::black_box;

fn bench_exact_solvers(c: &mut Criterion) {
    let net = qsc_datasets::load_flow("tsukuba0", Scale::Small).unwrap();
    let mut group = c.benchmark_group("maxflow_exact");
    group.sample_size(10);
    group.bench_function("push_relabel", |b| {
        b.iter(|| black_box(push_relabel::max_flow(&net).value))
    });
    group.bench_function("dinic", |b| {
        b.iter(|| black_box(dinic::max_flow(&net).value))
    });
    group.finish();
}

fn bench_approximation(c: &mut Criterion) {
    let net = qsc_datasets::load_flow("tsukuba0", Scale::Small).unwrap();
    let mut group = c.benchmark_group("maxflow_approx");
    group.sample_size(10);
    for colors in [10usize, 35] {
        group.bench_with_input(BenchmarkId::new("colors", colors), &colors, |b, &colors| {
            b.iter(|| {
                black_box(
                    approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(colors)).value,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_solvers, bench_approximation);
criterion_main!(benches);
