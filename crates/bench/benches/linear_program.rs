//! Criterion micro-benchmarks for linear programming (supports Fig. 7b /
//! Table 1 bottom): exact simplex and interior-point vs. the coloring-based
//! reduction on the qap15 stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsc_datasets::Scale;
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::simplex;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let lp = qsc_datasets::load_lp("qap15", Scale::Small).unwrap();
    let mut group = c.benchmark_group("lp_exact");
    group.sample_size(10);
    group.bench_function("simplex", |b| {
        b.iter(|| black_box(simplex::solve(&lp).objective))
    });
    group.bench_function("interior_point", |b| {
        b.iter(|| {
            black_box(
                interior_point::solve_with(&lp, &InteriorPointConfig::default())
                    .0
                    .objective,
            )
        })
    });
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let lp = qsc_datasets::load_lp("qap15", Scale::Small).unwrap();
    let mut group = c.benchmark_group("lp_reduced");
    group.sample_size(10);
    for colors in [10usize, 40] {
        group.bench_with_input(BenchmarkId::new("colors", colors), &colors, |b, &colors| {
            b.iter(|| {
                let reduced = reduce_with_rothko(
                    &lp,
                    &LpColoringConfig::with_max_colors(colors),
                    LpReductionVariant::SqrtNormalized,
                );
                black_box(simplex::solve(&reduced.problem).objective)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_reduction);
criterion_main!(benches);
