//! Dataset registry: descriptors (mirroring Tables 2 and 3) and loaders that
//! build the synthetic stand-ins.

use qsc_flow::FlowNetwork;
use qsc_graph::{generators, Graph};
use qsc_lp::generators as lp_gen;
use qsc_lp::LpProblem;

/// Which experiment family a dataset belongs to (the grouping of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// General evaluation (compression characteristics, Table 4).
    General,
    /// Betweenness-centrality experiments.
    Centrality,
    /// Max-flow experiments.
    MaxFlow,
    /// Linear-programming experiments.
    LinearProgram,
}

/// Loading scale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scale {
    /// Small instances for unit/integration tests (hundreds to a few
    /// thousand nodes).
    Small,
    /// The sizes used by the benchmark harness (thousands to tens of
    /// thousands of nodes).
    #[default]
    Full,
}

/// Error from the registry loaders.
#[derive(Debug)]
pub enum DatasetError {
    /// The requested dataset name is not in the registry.
    UnknownDataset(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::UnknownDataset(name) => write!(f, "unknown dataset: {name}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Descriptor of a graph dataset (a row of Table 2).
#[derive(Clone, Debug)]
pub struct GraphDatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Experiment family.
    pub task: Task,
    /// Node count reported in Table 2.
    pub paper_nodes: usize,
    /// Edge count reported in Table 2.
    pub paper_edges: usize,
    /// Whether the paper's instance is real data (`R`) or simulated (`S`).
    pub real: bool,
    /// The generator family used for the stand-in.
    pub stand_in: &'static str,
}

/// Descriptor of a max-flow dataset (the max-flow block of Table 2).
#[derive(Clone, Debug)]
pub struct FlowDatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Node count reported in Table 2.
    pub paper_nodes: usize,
    /// Edge count reported in Table 2.
    pub paper_edges: usize,
    /// Grid dimensions of the stand-in at full scale.
    pub grid: (usize, usize),
    /// Seed for the stand-in.
    pub seed: u64,
}

/// Descriptor of an LP dataset (a row of Table 3).
#[derive(Clone, Debug)]
pub struct LpDatasetSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Rows reported in Table 3.
    pub paper_rows: usize,
    /// Columns reported in Table 3.
    pub paper_cols: usize,
    /// Non-zeros reported in Table 3.
    pub paper_nonzeros: usize,
    /// Exact solution time reported in Table 3 (minutes).
    pub paper_solve_minutes: f64,
    /// The generator family used for the stand-in.
    pub stand_in: &'static str,
}

/// The graph datasets of Table 2 that are loaded as plain graphs
/// (general-evaluation + centrality groups).
pub fn graph_datasets() -> Vec<GraphDatasetSpec> {
    vec![
        GraphDatasetSpec {
            name: "karate",
            task: Task::General,
            paper_nodes: 34,
            paper_edges: 78,
            real: true,
            stand_in: "exact edge list",
        },
        GraphDatasetSpec {
            name: "openflights",
            task: Task::General,
            paper_nodes: 3_425,
            paper_edges: 38_513,
            real: true,
            stand_in: "hub-and-spoke",
        },
        GraphDatasetSpec {
            name: "dblp",
            task: Task::General,
            paper_nodes: 317_080,
            paper_edges: 1_049_866,
            real: true,
            stand_in: "power-law cluster",
        },
        GraphDatasetSpec {
            name: "astrophysics",
            task: Task::Centrality,
            paper_nodes: 18_772,
            paper_edges: 198_110,
            real: true,
            stand_in: "power-law cluster",
        },
        GraphDatasetSpec {
            name: "facebook",
            task: Task::Centrality,
            paper_nodes: 22_470,
            paper_edges: 171_002,
            real: true,
            stand_in: "power-law cluster",
        },
        GraphDatasetSpec {
            name: "deezer",
            task: Task::Centrality,
            paper_nodes: 28_281,
            paper_edges: 92_752,
            real: true,
            stand_in: "Barabási–Albert",
        },
        GraphDatasetSpec {
            name: "enron",
            task: Task::Centrality,
            paper_nodes: 36_692,
            paper_edges: 183_831,
            real: true,
            stand_in: "power-law cluster",
        },
        GraphDatasetSpec {
            name: "epinions",
            task: Task::Centrality,
            paper_nodes: 75_879,
            paper_edges: 508_837,
            real: true,
            stand_in: "Barabási–Albert",
        },
    ]
}

/// The max-flow datasets of Table 2.
pub fn flow_datasets() -> Vec<FlowDatasetSpec> {
    vec![
        FlowDatasetSpec {
            name: "tsukuba0",
            paper_nodes: 110_594,
            paper_edges: 506_546,
            grid: (96, 80),
            seed: 100,
        },
        FlowDatasetSpec {
            name: "tsukuba2",
            paper_nodes: 110_594,
            paper_edges: 500_544,
            grid: (96, 80),
            seed: 102,
        },
        FlowDatasetSpec {
            name: "venus0",
            paper_nodes: 166_224,
            paper_edges: 787_946,
            grid: (104, 88),
            seed: 110,
        },
        FlowDatasetSpec {
            name: "venus1",
            paper_nodes: 166_224,
            paper_edges: 787_716,
            grid: (104, 88),
            seed: 111,
        },
        FlowDatasetSpec {
            name: "sawtooth0",
            paper_nodes: 164_922,
            paper_edges: 790_296,
            grid: (104, 88),
            seed: 120,
        },
        FlowDatasetSpec {
            name: "sawtooth1",
            paper_nodes: 164_922,
            paper_edges: 789_014,
            grid: (104, 88),
            seed: 121,
        },
        FlowDatasetSpec {
            name: "simcells",
            paper_nodes: 903_962,
            paper_edges: 6_738_294,
            grid: (128, 104),
            seed: 130,
        },
        FlowDatasetSpec {
            name: "cells",
            paper_nodes: 3_582_102,
            paper_edges: 31_537_228,
            grid: (144, 120),
            seed: 131,
        },
    ]
}

/// The LP datasets of Table 3.
pub fn lp_datasets() -> Vec<LpDatasetSpec> {
    vec![
        LpDatasetSpec {
            name: "qap15",
            paper_rows: 6_331,
            paper_cols: 22_275,
            paper_nonzeros: 110_700,
            paper_solve_minutes: 22.0,
            stand_in: "assignment-like",
        },
        LpDatasetSpec {
            name: "nug08-3rd",
            paper_rows: 19_728,
            paper_cols: 20_448,
            paper_nonzeros: 139_008,
            paper_solve_minutes: 100.0,
            stand_in: "assignment-like",
        },
        LpDatasetSpec {
            name: "supportcase10",
            paper_rows: 10_713,
            paper_cols: 1_429_098,
            paper_nonzeros: 4_287_094,
            paper_solve_minutes: 31.0,
            stand_in: "covering-like",
        },
        LpDatasetSpec {
            name: "ex10",
            paper_rows: 69_609,
            paper_cols: 17_680,
            paper_nonzeros: 1_179_680,
            paper_solve_minutes: 24.0,
            stand_in: "transport-like",
        },
    ]
}

/// Load the stand-in graph for a graph dataset.
pub fn load_graph(name: &str, scale: Scale) -> Result<Graph, DatasetError> {
    let (small, full) = match name {
        "karate" => return Ok(generators::karate_club()),
        "openflights" => ((400, 20, 3), (3_400, 60, 5)),
        "dblp" => ((800, 3, 0), (8_000, 3, 0)),
        "astrophysics" => ((700, 5, 0), (6_000, 7, 0)),
        "facebook" => ((700, 4, 0), (6_000, 6, 0)),
        "deezer" => ((800, 2, 0), (7_000, 3, 0)),
        "enron" => ((800, 3, 0), (7_000, 5, 0)),
        "epinions" => ((900, 3, 0), (8_000, 5, 0)),
        other => return Err(DatasetError::UnknownDataset(other.to_string())),
    };
    let (n, m, hubs) = match scale {
        Scale::Small => small,
        Scale::Full => full,
    };
    let seed = stable_seed(name);
    let graph = match name {
        "openflights" => generators::hub_and_spoke(n, m, 2, seed),
        "deezer" | "epinions" => generators::barabasi_albert(n, m, seed),
        _ => generators::powerlaw_cluster(n, m, 0.4, seed),
    };
    let _ = hubs;
    Ok(graph)
}

/// Load the stand-in network for a max-flow dataset.
pub fn load_flow(name: &str, scale: Scale) -> Result<FlowNetwork, DatasetError> {
    let spec = flow_datasets()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| DatasetError::UnknownDataset(name.to_string()))?;
    let (w, h) = match scale {
        Scale::Small => (spec.grid.0 / 6, spec.grid.1 / 6),
        Scale::Full => spec.grid,
    };
    let (net, _) =
        qsc_flow::generators::grid_flow_network(w.max(4), h.max(4), 3.0, 0.25, spec.seed);
    Ok(net)
}

/// Load the stand-in problem for an LP dataset.
pub fn load_lp(name: &str, scale: Scale) -> Result<LpProblem, DatasetError> {
    let small = matches!(scale, Scale::Small);
    let lp = match name {
        "qap15" => lp_gen::assignment_like(if small { 8 } else { 200 }, 0.4, 200),
        "nug08-3rd" => lp_gen::assignment_like(if small { 7 } else { 160 }, 0.8, 201),
        "supportcase10" => {
            if small {
                lp_gen::covering_like(12, 240, 6, 0.08, 202)
            } else {
                lp_gen::covering_like(300, 12_000, 15, 0.08, 202)
            }
        }
        "ex10" => {
            if small {
                lp_gen::transport_like(10, 8, 3, 203)
            } else {
                lp_gen::transport_like(250, 120, 5, 203)
            }
        }
        other => return Err(DatasetError::UnknownDataset(other.to_string())),
    };
    Ok(lp)
}

/// Deterministic seed derived from the dataset name.
fn stable_seed(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_twenty_datasets() {
        let total = graph_datasets().len() + flow_datasets().len() + lp_datasets().len();
        assert_eq!(total, 20, "the paper evaluates on 20 datasets");
    }

    #[test]
    fn all_graph_datasets_load_small() {
        for spec in graph_datasets() {
            let g = load_graph(spec.name, Scale::Small).unwrap();
            assert!(g.num_nodes() > 0, "{} is empty", spec.name);
            assert!(g.num_edges() > 0, "{} has no edges", spec.name);
        }
    }

    #[test]
    fn all_flow_datasets_load_small() {
        for spec in flow_datasets() {
            let net = load_flow(spec.name, Scale::Small).unwrap();
            assert!(net.num_nodes() > 10, "{} too small", spec.name);
            assert!(net.source_capacity() > 0.0);
        }
    }

    #[test]
    fn all_lp_datasets_load_small() {
        for spec in lp_datasets() {
            let lp = load_lp(spec.name, Scale::Small).unwrap();
            assert!(
                lp.num_rows() > 0 && lp.num_cols() > 0,
                "{} empty",
                spec.name
            );
            // The origin is feasible for every generated LP.
            assert!(lp.is_feasible(&vec![0.0; lp.num_cols()], 1e-9));
        }
    }

    #[test]
    fn unknown_dataset_errors() {
        assert!(load_graph("nope", Scale::Small).is_err());
        assert!(load_flow("nope", Scale::Small).is_err());
        assert!(load_lp("nope", Scale::Small).is_err());
    }

    #[test]
    fn loads_are_deterministic() {
        let a = load_graph("dblp", Scale::Small).unwrap();
        let b = load_graph("dblp", Scale::Small).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        let f1 = load_flow("tsukuba0", Scale::Small).unwrap();
        let f2 = load_flow("tsukuba0", Scale::Small).unwrap();
        assert_eq!(f1.graph.total_weight(), f2.graph.total_weight());
    }

    #[test]
    fn full_scale_is_larger_than_small() {
        let s = load_graph("facebook", Scale::Small).unwrap();
        let f = load_graph("facebook", Scale::Full).unwrap();
        assert!(f.num_nodes() > s.num_nodes());
        let lp_s = load_lp("qap15", Scale::Small).unwrap();
        let lp_f = load_lp("qap15", Scale::Full).unwrap();
        assert!(lp_f.num_cols() > lp_s.num_cols());
    }

    #[test]
    fn covering_stand_in_is_wide() {
        // supportcase10's defining feature: far more columns than rows.
        let lp = load_lp("supportcase10", Scale::Full).unwrap();
        assert!(lp.num_cols() > 10 * lp.num_rows());
    }
}
