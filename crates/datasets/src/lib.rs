//! # qsc-datasets
//!
//! Laptop-scale, fully synthetic stand-ins for the 20 evaluation datasets of
//! the paper (Tables 2 and 3). The original datasets are external downloads
//! (SNAP, network-repository, the Waterloo vision max-flow benchmark, and
//! the Mittelmann LP benchmark); this crate reproduces their *structure* —
//! degree distributions, community/grid regularity, block-structured
//! constraint matrices — with deterministic, seeded generators so that every
//! experiment in `qsc-bench` runs out of the box. See `DESIGN.md`
//! ("Substitutions") for the per-dataset rationale.
//!
//! Every dataset is available at two scales:
//! * [`Scale::Small`] — used by tests and quick runs (seconds),
//! * [`Scale::Full`] — used by the benchmark harness (still minutes, not
//!   hours; the paper's absolute sizes are listed in the descriptors for
//!   reference).

#![forbid(unsafe_code)]

pub mod registry;

pub use registry::{
    flow_datasets, graph_datasets, load_flow, load_graph, load_lp, lp_datasets, DatasetError,
    FlowDatasetSpec, GraphDatasetSpec, LpDatasetSpec, Scale, Task,
};
