//! The persistent store: one directory holding the latest checkpoint
//! (`CHECKPOINT`) plus WAL segments, with the write path (log batches,
//! periodically checkpoint + truncate) and the recovery path (load
//! checkpoint, replay the WAL tail through the public engine API).
//!
//! ```text
//!   store-dir/
//!     CHECKPOINT              columnar checkpoint (see crate docs)
//!     wal-<first_seq>.seg     WAL segments, contiguous sequence numbers
//! ```
//!
//! The logging methods ([`Store::log_edge_batch`] …) record exactly the
//! inputs the caller is about to hand the run, so the canonical usage
//! keeps log and state trivially in step:
//!
//! ```ignore
//! store.log_edge_batch(&events)?;
//! run.apply_edge_batch(compacted, &events);
//! reduced.apply_edge_batch(run.partition(), &events);
//! store.log_maintain()?;
//! run.maintain();
//! ```
//!
//! [`Store::recover`] inverts that: it rebuilds the run from the
//! checkpoint snapshot and re-drives every logged record through the
//! same calls (rebuilding each batch's compacted graph from the logged
//! events via a [`GraphDelta`]), validating ranges as it goes so a
//! CRC-clean but semantically poisoned log surfaces as a typed
//! [`PersistError`], never a panic.

use std::fs;
use std::path::{Path, PathBuf};

use qsc_core::partition::PartitionEvent;
use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{NodeChurnBatch, RothkoRun};
use qsc_graph::delta::{EdgeEvent, GraphDelta};

use crate::checkpoint::{
    read_checkpoint_file, write_checkpoint_file_with, CheckpointData, CheckpointStats, Layout,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION_MAPPED,
};
use crate::error::PersistError;
use crate::mapped::MappedStore;
use crate::wal::{last_wal_seq, read_wal, WalRecord, WalWriter};

/// File name of the checkpoint inside a store directory.
pub const CHECKPOINT_FILE: &str = "CHECKPOINT";

/// Tuning knobs for the write path.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rotate to a new WAL segment once the current one exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Fsync after this many buffered WAL bytes (fsync batching). `0`
    /// fsyncs every append.
    pub sync_every_bytes: u64,
    /// On-disk layout for checkpoints this store writes. Recovery
    /// auto-detects the layout from the file, so stores can switch
    /// freely between checkpoints.
    pub layout: Layout,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 64 << 20,
            sync_every_bytes: 1 << 20,
            layout: Layout::Packed,
        }
    }
}

/// A store opened for writing: append WAL records, write checkpoints.
pub struct Store {
    dir: PathBuf,
    wal: WalWriter,
    options: StoreOptions,
}

/// What [`Store::recover`] returns: the rebuilt stack plus accounting.
pub struct Recovered {
    /// The run, bit-identical to the writer's at its last logged record.
    pub run: RothkoRun<'static>,
    /// The lockstep reduced instance, when the checkpoint carried one.
    pub reduced: Option<ReducedDelta>,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Sequence number of the last applied record (checkpoint coverage
    /// when the tail was empty) — pass to [`Store::open_at`] to resume
    /// logging.
    pub last_seq: u64,
}

impl Store {
    /// Create a store in `dir` (created if missing; any previous store
    /// content there is removed). The WAL starts at sequence 1; write a
    /// checkpoint before relying on recovery.
    pub fn create(dir: &Path, options: StoreOptions) -> Result<Self, PersistError> {
        fs::create_dir_all(dir)?;
        for (_, path) in crate::wal::list_segments(dir)? {
            fs::remove_file(path)?;
        }
        let ckpt = dir.join(CHECKPOINT_FILE);
        if ckpt.exists() {
            fs::remove_file(ckpt)?;
        }
        let wal = WalWriter::create(dir, 1, options.segment_bytes, options.sync_every_bytes)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            wal,
            options,
        })
    }

    /// Reopen an existing store for appending: the next record continues
    /// the sequence after everything currently on disk (torn tails are
    /// ignored, matching what recovery would replay). Opens a fresh
    /// segment; it does not append into the old one.
    pub fn open(dir: &Path) -> Result<Self, PersistError> {
        Self::open_at(dir, last_wal_seq(dir)?, StoreOptions::default())
    }

    /// Reopen for appending with the next sequence number and options
    /// made explicit (see [`Recovered::last_seq`]).
    pub fn open_at(dir: &Path, last_seq: u64, options: StoreOptions) -> Result<Self, PersistError> {
        let wal = WalWriter::create(
            dir,
            last_seq + 1,
            options.segment_bytes,
            options.sync_every_bytes,
        )?;
        Ok(Store {
            dir: dir.to_path_buf(),
            wal,
            options,
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number of the most recently logged record.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.wal.last_seq()
    }

    /// Log an edge batch (the `events` about to be applied via
    /// `RothkoRun::apply_edge_batch`).
    pub fn log_edge_batch(&mut self, events: &[EdgeEvent]) -> Result<u64, PersistError> {
        self.wal.append(&WalRecord::EdgeBatch(events.to_vec()))
    }

    /// Log a node-churn batch (about to be applied via
    /// `RothkoRun::apply_node_batch`). The remap is not logged — replay
    /// recomputes it from the same mutations.
    pub fn log_node_batch(&mut self, batch: &NodeChurnBatch) -> Result<u64, PersistError> {
        self.wal.append(&WalRecord::NodeBatch {
            inserted_colors: batch.inserted_colors.clone(),
            edge_events: batch.edge_events.clone(),
            removed: batch.removed.clone(),
        })
    }

    /// Log a `RothkoRun::maintain` call (about to be made).
    pub fn log_maintain(&mut self) -> Result<u64, PersistError> {
        self.wal.append(&WalRecord::Maintain)
    }

    /// Force an fsync durability point for everything logged so far.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.wal.sync()
    }

    /// Write a checkpoint of the current stack state, then rotate the
    /// WAL and delete the segments the checkpoint made redundant.
    /// Everything logged up to now is covered by the checkpoint;
    /// recovery replays only records logged after this call.
    pub fn checkpoint(
        &mut self,
        run: &RothkoRun<'_>,
        reduced: Option<&ReducedDelta>,
    ) -> Result<CheckpointStats, PersistError> {
        self.wal.sync()?;
        let phases = std::env::var_os("QSC_PERSIST_PHASES").is_some();
        // qsc-audit: allow(no-wallclock-in-results) -- QSC_PERSIST_PHASES diagnostics; both clocks feed eprintln only, never the checkpoint bytes
        let t0 = std::time::Instant::now();
        let data = CheckpointData {
            graph: run.graph().clone(),
            config: run.config().clone(),
            run: run.snapshot(),
            reduced: reduced.map(ReducedDelta::snapshot),
            wal_seq: self.wal.last_seq(),
        };
        if phases {
            eprintln!("[persist] snapshot: {:.3}s", t0.elapsed().as_secs_f64());
        }
        // qsc-audit: allow(no-wallclock-in-results) -- QSC_PERSIST_PHASES diagnostics; feeds eprintln only
        let t1 = std::time::Instant::now();
        let stats = write_checkpoint_file_with(
            &self.dir.join(CHECKPOINT_FILE),
            &data,
            self.options.layout,
        )?;
        if phases {
            eprintln!("[persist] encode+write: {:.3}s", t1.elapsed().as_secs_f64());
        }
        self.wal.rotate()?;
        self.wal.truncate_covered(data.wal_seq)?;
        Ok(stats)
    }

    /// Rebuild the full stack from `dir`: load the checkpoint, then
    /// replay the WAL tail through the public engine API. `threads`
    /// overrides the checkpointed thread count when given (results are
    /// thread-count independent; the pool is rebuilt either way).
    ///
    /// The checkpoint's layout is auto-detected from its header:
    /// mapped-layout (v2) files restore through a [`MappedStore`], so
    /// the graph CSR and accumulator planes come back as borrowed
    /// views over the page cache instead of decoded copies. Packed
    /// (v1) files — and any platform where zero-copy reinterpretation
    /// is unsound — take the owned decode path. Either way the
    /// recovered state is bit-identical.
    pub fn recover(dir: &Path, threads: Option<usize>) -> Result<Recovered, PersistError> {
        let phases = std::env::var_os("QSC_PERSIST_PHASES").is_some();
        // qsc-audit: allow(no-wallclock-in-results) -- QSC_PERSIST_PHASES diagnostics; recovery timing feeds eprintln only, never the recovered state
        let t0 = std::time::Instant::now();
        let ck = load_checkpoint_auto(&dir.join(CHECKPOINT_FILE))?;
        if phases {
            eprintln!(
                "[persist] checkpoint read+decode: {:.3}s",
                t0.elapsed().as_secs_f64()
            );
        }
        // qsc-audit: allow(no-wallclock-in-results) -- QSC_PERSIST_PHASES diagnostics; feeds eprintln only
        let t1 = std::time::Instant::now();
        let records = read_wal(dir, ck.wal_seq)?;
        if phases {
            eprintln!("[persist] WAL read: {:.3}s", t1.elapsed().as_secs_f64());
        }
        // The WAL must resume exactly where the checkpoint's coverage
        // ends; a later start means a whole leading segment went missing
        // (read_wal can only check continuity between segments it sees).
        if let Some(&(first, _)) = records.first() {
            if first != ck.wal_seq + 1 {
                return Err(PersistError::SequenceGap {
                    expected: ck.wal_seq + 1,
                    found: first,
                });
            }
        }
        // qsc-audit: allow(no-wallclock-in-results) -- QSC_PERSIST_PHASES diagnostics; feeds eprintln only
        let t2 = std::time::Instant::now();
        let out = replay(ck, records, threads);
        if phases {
            eprintln!("[persist] replay: {:.3}s", t2.elapsed().as_secs_f64());
        }
        out
    }
}

/// Load a checkpoint choosing the read path by its header version:
/// v2 + a zero-copy-capable platform goes through [`MappedStore`]
/// (borrowed columns), everything else through the owned decoder.
fn load_checkpoint_auto(path: &Path) -> Result<CheckpointData, PersistError> {
    use std::io::Read as _;
    let head = {
        let mut f = fs::File::open(path)?;
        let mut h = [0u8; 12];
        match f.read_exact(&mut h) {
            Ok(()) => Some(h),
            // Shorter than a header: let the owned path produce its
            // usual Truncated error.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => None,
            Err(e) => return Err(e.into()),
        }
    };
    let mapped = head.is_some_and(|h| {
        h[0..8] == *CHECKPOINT_MAGIC
            && crate::le::le_u32(&h[8..12]).is_ok_and(|v| v == CHECKPOINT_VERSION_MAPPED)
    });
    if mapped && qsc_core::mmap::MappedFile::zero_copy_eligible() {
        MappedStore::open(path)?.checkpoint_data()
    } else {
        read_checkpoint_file(path)
    }
}

fn corrupt(context: &'static str) -> PersistError {
    PersistError::Corrupt { context }
}

/// Re-drive one logged edge-event list through a [`GraphDelta`],
/// reconstructing the writer's mutations from the signed deltas:
/// absent + δ → insert(δ); weight + δ = 0 → delete; otherwise reweight
/// to `weight + δ` (exact for exactly representable weights — the
/// engine's own contract regime).
fn apply_events_to_delta(delta: &mut GraphDelta, events: &[EdgeEvent]) -> Result<(), PersistError> {
    let n = delta.num_nodes() as u32;
    for e in events {
        if e.source >= n || e.target >= n {
            return Err(corrupt("WAL edge event endpoint out of range"));
        }
        let old = delta.weight(e.source, e.target);
        let result = if old == 0.0 {
            delta.insert_edge(e.source, e.target, e.delta)
        } else if old + e.delta == 0.0 {
            delta.delete_edge(e.source, e.target)
        } else {
            delta.reweight_edge(e.source, e.target, old + e.delta)
        };
        result.map_err(|_| corrupt("WAL edge event inconsistent with graph state"))?;
    }
    Ok(())
}

/// Fold any buffered edge batches into the run: one CSR compaction for
/// the whole run of batches, then the engine applies each batch
/// separately (via [`RothkoRun::apply_edge_batches`]) so the f64
/// accumulator arithmetic is bit-identical to the writer's one-call-per-
/// batch history. Called at every point that reads the graph — node
/// batches, maintenance, end of WAL.
fn flush_edge_batches(
    run: &mut RothkoRun<'static>,
    pending: &mut Vec<Vec<EdgeEvent>>,
    delta: Option<&mut GraphDelta>,
) {
    if pending.is_empty() {
        return;
    }
    // qsc-audit: allow(no-panic-on-input) -- internal replay invariant, not an input condition: replay() only buffers edge batches after it has constructed the delta it threads through here
    let delta = delta.expect("buffered edge batches imply a live delta");
    let compacted = delta.compact();
    let batches: Vec<&[EdgeEvent]> = pending.iter().map(Vec::as_slice).collect();
    run.apply_edge_batches(&batches, compacted);
    pending.clear();
}

fn replay(
    ck: CheckpointData,
    records: Vec<(u64, WalRecord)>,
    threads: Option<usize>,
) -> Result<Recovered, PersistError> {
    let mut config = ck.config;
    if let Some(t) = threads {
        config.threads = Some(t);
    }
    // The checkpoint's graph moves straight into the run — no copy. The
    // replay's working graph (`delta`, the same compaction cycle the
    // writer's ingest loop ran) is cloned off lazily on the first record
    // that needs it, so record-free recoveries never pay it.
    let mut run = RothkoRun::from_snapshot(ck.graph, config, &ck.run);
    let mut reduced = ck.reduced.as_ref().map(ReducedDelta::from_snapshot);
    let mut delta: Option<GraphDelta> = None;
    // Edge batches between graph-reading records share one compaction;
    // their event lists queue here until the next flush point.
    let mut pending: Vec<Vec<EdgeEvent>> = Vec::new();
    let mut last_seq = ck.wal_seq;
    let replayed = records.len();
    for (seq, rec) in records {
        last_seq = seq;
        match rec {
            WalRecord::EdgeBatch(events) => {
                let delta = delta.get_or_insert_with(|| GraphDelta::new(run.graph().clone()));
                apply_events_to_delta(delta, &events)?;
                // The logged events are authoritative; the delta's
                // re-derived copies are redundant bookkeeping.
                delta.drain_events();
                // Reduced-instance lockstep is independent of the engine
                // fold, and the partition cannot change before the next
                // flush point, so it applies immediately per batch.
                if let Some(rd) = &mut reduced {
                    rd.apply_edge_batch(run.partition(), &events);
                }
                pending.push(events);
            }
            WalRecord::NodeBatch {
                inserted_colors,
                edge_events,
                removed,
            } => {
                flush_edge_batches(&mut run, &mut pending, delta.as_mut());
                let delta = delta.get_or_insert_with(|| GraphDelta::new(run.graph().clone()));
                let k = run.partition().num_colors() as u32;
                if inserted_colors.iter().any(|&c| c >= k) {
                    return Err(corrupt(
                        "WAL node batch inserts into a color that does not exist",
                    ));
                }
                // Removals may not empty a color (the partition's
                // invariant): count per-color survivors up front.
                let mut sizes = run.partition().sizes();
                for &c in &inserted_colors {
                    sizes[c as usize] += 1;
                }
                for _ in 0..inserted_colors.len() {
                    delta.insert_node();
                }
                apply_events_to_delta(delta, &edge_events)?;
                let grown_n = delta.num_nodes() as u32;
                let old_n = run.partition().num_nodes() as u32;
                for &v in &removed {
                    if v >= grown_n {
                        return Err(corrupt("WAL node batch removes an out-of-range node"));
                    }
                    let color = if v < old_n {
                        run.partition().color_of(v)
                    } else {
                        inserted_colors[(v - old_n) as usize]
                    };
                    let size = &mut sizes[color as usize];
                    *size = size
                        .checked_sub(1)
                        .ok_or_else(|| corrupt("WAL node batch empties a color"))?;
                    if *size == 0 {
                        return Err(corrupt("WAL node batch empties a color"));
                    }
                    delta
                        .remove_node(v)
                        .map_err(|_| corrupt("WAL node removal inconsistent with graph state"))?;
                }
                let (compacted, remap) = delta.compact_renumber();
                delta.drain_events();
                delta.drain_node_events();
                // Reduced lockstep needs the *pre-remap* partition (the
                // batch's events speak the grown id space), so it runs
                // against a grown clone before the run applies the batch.
                if let Some(rd) = &mut reduced {
                    let mut p = run.partition().clone();
                    for &c in &inserted_colors {
                        p.insert_node(c);
                        rd.apply_node_insert(c);
                    }
                    rd.apply_edge_batch(&p, &edge_events);
                    for &v in &removed {
                        rd.apply_node_removal(p.color_of(v));
                    }
                }
                let batch = NodeChurnBatch {
                    inserted_colors,
                    edge_events,
                    removed,
                    remap,
                };
                run.apply_node_batch(compacted, &batch);
            }
            WalRecord::Maintain => {
                flush_edge_batches(&mut run, &mut pending, delta.as_mut());
                if let Some(rd) = &mut reduced {
                    // The lockstep closure needs the current graph while
                    // the run is mutably borrowed; the delta's base is
                    // that graph (cloned off here if no earlier record
                    // created it).
                    let delta = delta.get_or_insert_with(|| GraphDelta::new(run.graph().clone()));
                    let graph = delta.base();
                    run.maintain_with(|p, ev| match ev {
                        PartitionEvent::Split(s) => rd.apply_split(graph, p, s),
                        PartitionEvent::Merge(m) => rd.apply_merge(m),
                        PartitionEvent::NodeInsert { .. } | PartitionEvent::NodeRemove { .. } => {}
                    });
                } else {
                    run.maintain();
                }
            }
        }
    }
    flush_edge_batches(&mut run, &mut pending, delta.as_mut());
    Ok(Recovered {
        run,
        reduced,
        replayed,
        last_seq,
    })
}
