//! Zero-copy checkpoint access: a [`MappedStore`] memory-maps a
//! mapped-layout (v2) checkpoint and serves its raw-pinned columns as
//! borrowed slices, so opening a checkpoint costs O(blocks) header
//! validation instead of O(bytes) decoding — and a graph bigger than
//! RAM stays on the page cache, faulted in as it is touched.
//!
//! Integrity is not weakened, only deferred: every block header CRC is
//! verified at open (headers are tiny), and each payload's CRC is
//! verified **lazily on first touch** — the first accessor that reads a
//! column pays one sequential pass over it, after which the column is
//! served without re-validation. Damage anywhere still surfaces as a
//! typed [`PersistError`], never a panic; it just surfaces when the
//! damaged column is first used rather than at open.
//!
//! The fast queries ([`MappedStore::coloring`],
//! [`MappedStore::quotient_weight`]) touch only the partition /
//! reduced-matrix blocks; the graph CSR and accumulator planes stay
//! untouched on disk until [`MappedStore::checkpoint_data`] rebuilds
//! the full stack — and even then the mappable columns are borrowed,
//! not copied.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qsc_core::mmap::{MapError, MappedFile, MappedSlice, Pod};
use qsc_graph::{ColumnBuf, NodeId, SharedColumn};

use crate::checkpoint::{
    assemble_checkpoint, mappable_width, parse_scalars, CheckpointData, ColumnSource, ScalarState,
    BLK_PAD, BLK_PART_MEMBERS, BLK_PART_OFFSETS, BLK_RED_SUM, BLK_SCALARS, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION_MAPPED, MAP_ALIGN,
};
use crate::codec::{crc32, decode_bools, decode_f64s, decode_u32s, decode_u64s, ENC_RAW};
use crate::error::PersistError;
use crate::store::CHECKPOINT_FILE;

/// One block's location inside the map, plus its lazy-validation state.
struct BlockEntry {
    id: u16,
    enc: u8,
    count: usize,
    /// Payload byte offset from the start of the file.
    offset: usize,
    /// Payload byte length.
    len: usize,
    pcrc: u32,
    /// Set once the payload CRC has been verified. Two threads racing
    /// the first touch both validate (benign: same bytes, same answer);
    /// Acquire/Release orders the flag against the reads it guards.
    validated: AtomicBool,
}

/// A checkpoint opened as a memory map: O(blocks) open, lazy per-block
/// payload validation, zero-copy column views for the mappable set.
pub struct MappedStore {
    file: Arc<MappedFile>,
    scalars: ScalarState,
    blocks: Vec<BlockEntry>,
}

fn map_err(e: MapError, context: &'static str) -> PersistError {
    match e {
        MapError::Misaligned { .. } => PersistError::Misaligned { context },
        MapError::Unsupported => PersistError::Mismatch {
            context: "platform cannot serve zero-copy columns",
        },
        MapError::OutOfBounds { .. } | MapError::BadLength { .. } => {
            PersistError::Corrupt { context }
        }
    }
}

impl MappedStore {
    /// Open the checkpoint file inside a store directory.
    pub fn open_dir(dir: &Path) -> Result<Self, PersistError> {
        Self::open(&dir.join(CHECKPOINT_FILE))
    }

    /// Map `path` and validate its skeleton: file header, every block
    /// header (v2 headers carry their own CRC), padding-block zeroing,
    /// mappable alignment, and the scalar blob. Payload CRCs of the
    /// remaining blocks are deferred to first touch.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        if !MappedFile::zero_copy_eligible() {
            // Raw little-endian payloads cannot be reinterpreted in
            // place here (big-endian or 32-bit target); callers fall
            // back to the owned decode path.
            return Err(PersistError::Mismatch {
                context: "platform cannot serve zero-copy columns",
            });
        }
        let file = Arc::new(MappedFile::open(path)?);
        let bytes = file.bytes();
        if bytes.len() < 20 {
            return Err(PersistError::Truncated {
                context: "checkpoint shorter than its header",
            });
        }
        if &bytes[0..8] != CHECKPOINT_MAGIC {
            return Err(PersistError::BadMagic { kind: "checkpoint" });
        }
        let version = crate::le::le_u32(&bytes[8..12])?;
        if version != CHECKPOINT_VERSION_MAPPED {
            return Err(PersistError::Mismatch {
                context: "checkpoint is not in the mapped layout",
            });
        }
        let block_count = crate::le::le_u32(&bytes[12..16])?;
        let hcrc = crate::le::le_u32(&bytes[16..20])?;
        if crc32(&bytes[0..16]) != hcrc {
            return Err(PersistError::CrcMismatch {
                context: "checkpoint header",
            });
        }
        let mut pos = 20usize;
        let mut blocks: Vec<BlockEntry> = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            let hdr = bytes.get(pos..pos + 28).ok_or(PersistError::Truncated {
                context: "checkpoint block header",
            })?;
            let id = crate::le::le_u16(&hdr[0..2])?;
            let enc = hdr[2];
            let count = usize::try_from(crate::le::le_u64(&hdr[4..12])?).map_err(|_| {
                PersistError::Corrupt {
                    context: "block element count overflows usize",
                }
            })?;
            let len = usize::try_from(crate::le::le_u64(&hdr[12..20])?).map_err(|_| {
                PersistError::Corrupt {
                    context: "block payload length overflows usize",
                }
            })?;
            let pcrc = crate::le::le_u32(&hdr[20..24])?;
            let want = crate::le::le_u32(&hdr[24..28])?;
            if crc32(&hdr[..24]) != want {
                return Err(PersistError::CrcMismatch {
                    context: "checkpoint block header",
                });
            }
            pos += 28;
            let offset = pos;
            let payload = bytes.get(pos..pos + len).ok_or(PersistError::Truncated {
                context: "checkpoint block payload",
            })?;
            pos += len;
            if id == BLK_PAD {
                // Pads are tiny (< MAP_ALIGN bytes): validate eagerly.
                if count != len || payload.iter().any(|&b| b != 0) {
                    return Err(PersistError::Corrupt {
                        context: "padding block holds nonzero bytes",
                    });
                }
                continue;
            }
            if let Some(width) = mappable_width(id) {
                if enc != ENC_RAW {
                    return Err(PersistError::Corrupt {
                        context: "mappable block is not raw-encoded in the mapped layout",
                    });
                }
                if count.checked_mul(width) != Some(len) {
                    return Err(PersistError::Corrupt {
                        context: "mappable block length disagrees with its element count",
                    });
                }
                if !offset.is_multiple_of(MAP_ALIGN) {
                    return Err(PersistError::Misaligned {
                        context: "mappable block payload is off its alignment boundary",
                    });
                }
            }
            if blocks.iter().any(|b| b.id == id) {
                return Err(PersistError::Corrupt {
                    context: "duplicate block id in checkpoint",
                });
            }
            blocks.push(BlockEntry {
                id,
                enc,
                count,
                offset,
                len,
                pcrc,
                validated: AtomicBool::new(false),
            });
        }
        if pos != bytes.len() {
            return Err(PersistError::Corrupt {
                context: "checkpoint has trailing bytes after the last block",
            });
        }
        // Scalars are validated and parsed eagerly — every later query
        // needs them, and the blob is tiny.
        let scalar = blocks
            .iter()
            .find(|b| b.id == BLK_SCALARS)
            .ok_or(PersistError::Corrupt {
                context: "checkpoint is missing a required block",
            })?;
        let payload = &bytes[scalar.offset..scalar.offset + scalar.len];
        if crc32(payload) != scalar.pcrc {
            return Err(PersistError::CrcMismatch {
                context: "checkpoint block payload",
            });
        }
        if scalar.enc != ENC_RAW || scalar.count != scalar.len {
            return Err(PersistError::Corrupt {
                context: "scalar block has a non-raw encoding",
            });
        }
        scalar.validated.store(true, Ordering::Release);
        let scalars = parse_scalars(CHECKPOINT_VERSION_MAPPED, payload)?;
        Ok(MappedStore {
            file,
            scalars,
            blocks,
        })
    }

    /// Whether the file is served by a real memory map (as opposed to
    /// the heap-read fallback on platforms without `mmap`).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    /// Node count, straight from the scalar block.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.scalars.n
    }

    /// Color count, straight from the scalar block.
    #[must_use]
    pub fn num_colors(&self) -> usize {
        self.scalars.k
    }

    /// WAL sequence number the checkpoint covers.
    #[must_use]
    pub fn wal_seq(&self) -> u64 {
        self.scalars.wal_seq
    }

    fn entry(&self, id: u16) -> Result<&BlockEntry, PersistError> {
        self.blocks
            .iter()
            .find(|b| b.id == id)
            .ok_or(PersistError::Corrupt {
                context: "checkpoint is missing a required block",
            })
    }

    /// The block's payload bytes, CRC-validated on first touch.
    fn payload(&self, id: u16) -> Result<&[u8], PersistError> {
        let e = self.entry(id)?;
        let payload = &self.file.bytes()[e.offset..e.offset + e.len];
        if !e.validated.load(Ordering::Acquire) {
            if crc32(payload) != e.pcrc {
                return Err(PersistError::CrcMismatch {
                    context: "checkpoint block payload",
                });
            }
            e.validated.store(true, Ordering::Release);
        }
        Ok(payload)
    }

    /// A zero-copy typed view of a mappable block, CRC-validated on
    /// first touch. The view keeps the map alive via its `Arc`.
    fn view<T: Pod>(&self, id: u16) -> Result<MappedSlice<T>, PersistError> {
        let e = self.entry(id)?;
        self.payload(id)?;
        MappedSlice::new(Arc::clone(&self.file), e.offset, e.count)
            .map_err(|err| map_err(err, "mappable block view rejected"))
    }

    /// The node → color assignment, answered from the partition blocks
    /// alone — the graph CSR and accumulator planes stay untouched.
    pub fn coloring(&self) -> Result<Vec<NodeId>, PersistError> {
        let (n, k) = (self.scalars.n, self.scalars.k);
        let offsets: MappedSlice<usize> = self.view(BLK_PART_OFFSETS)?;
        let members: MappedSlice<NodeId> = self.view(BLK_PART_MEMBERS)?;
        let offsets = offsets.as_slice();
        let members = members.as_slice();
        if offsets.len() != k + 1
            || offsets.first() != Some(&0)
            || offsets.last() != Some(&members.len())
            || members.len() != n
        {
            return Err(PersistError::Corrupt {
                context: "partition offsets length does not match color count",
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(PersistError::Corrupt {
                context: "partition offsets are not monotone",
            });
        }
        let mut coloring = vec![NodeId::MAX; n];
        for c in 0..k {
            for &v in &members[offsets[c]..offsets[c + 1]] {
                let slot = coloring.get_mut(v as usize).ok_or(PersistError::Corrupt {
                    context: "partition member id out of range",
                })?;
                if *slot != NodeId::MAX {
                    return Err(PersistError::Corrupt {
                        context: "partition member appears twice",
                    });
                }
                *slot = c as NodeId;
            }
        }
        // n members, none twice, all in range => every slot was filled.
        Ok(coloring)
    }

    /// One cell of the reduced (quotient) weight matrix, answered from
    /// the mapped `sum` block alone.
    pub fn quotient_weight(&self, a: usize, b: usize) -> Result<f64, PersistError> {
        let rk = self
            .scalars
            .reduced
            .as_ref()
            .ok_or(PersistError::Mismatch {
                context: "checkpoint carries no reduced instance",
            })?
            .k;
        if a >= rk || b >= rk {
            return Err(PersistError::Corrupt {
                context: "quotient weight query out of range",
            });
        }
        let sum: MappedSlice<f64> = self.view(BLK_RED_SUM)?;
        let sum = sum.as_slice();
        if sum.len() != rk * rk {
            return Err(PersistError::Corrupt {
                context: "reduced matrix length mismatch",
            });
        }
        Ok(sum[a * rk + b])
    }

    /// Rebuild the full [`CheckpointData`] with the mappable columns
    /// borrowed from the map: the graph CSR and accumulator planes are
    /// handed to the engine as shared views, not copies. Validation is
    /// the same typed-error pass the owned decoder runs.
    pub fn checkpoint_data(&self) -> Result<CheckpointData, PersistError> {
        // Full assembly reads the large columns front to back; let the
        // kernel stream them rather than fault page by page.
        self.file.advise_sequential();
        let data = assemble_checkpoint(self);
        self.file.advise_normal();
        data
    }
}

impl std::fmt::Debug for MappedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedStore")
            .field("mapped", &self.is_mapped())
            .field("n", &self.scalars.n)
            .field("k", &self.scalars.k)
            .field("wal_seq", &self.scalars.wal_seq)
            .field("blocks", &self.blocks.len())
            .finish()
    }
}

impl ColumnSource for MappedStore {
    fn version(&self) -> u32 {
        CHECKPOINT_VERSION_MAPPED
    }
    fn scalar_payload(&self) -> Result<&[u8], PersistError> {
        self.payload(BLK_SCALARS)
    }
    fn u64s(&self, id: u16) -> Result<Vec<u64>, PersistError> {
        let e = self.entry(id)?;
        decode_u64s(e.enc, self.payload(id)?, e.count)
    }
    fn u32s(&self, id: u16) -> Result<Vec<u32>, PersistError> {
        let e = self.entry(id)?;
        decode_u32s(e.enc, self.payload(id)?, e.count)
    }
    fn f64s(&self, id: u16) -> Result<Vec<f64>, PersistError> {
        let e = self.entry(id)?;
        decode_f64s(e.enc, self.payload(id)?, e.count)
    }
    fn bools(&self, id: u16) -> Result<Vec<bool>, PersistError> {
        let e = self.entry(id)?;
        decode_bools(e.enc, self.payload(id)?, e.count)
    }
    // The zero-copy hooks: mappable columns come back borrowed from the
    // map, everything else falls through to owned decoding.
    fn usize_col(&self, id: u16) -> Result<ColumnBuf<usize>, PersistError> {
        if mappable_width(id).is_some() {
            let col: Arc<dyn SharedColumn<usize>> = Arc::new(self.view::<usize>(id)?);
            Ok(ColumnBuf::from(col))
        } else {
            Ok(self.usizes(id)?.into())
        }
    }
    fn u32_col(&self, id: u16) -> Result<ColumnBuf<NodeId>, PersistError> {
        if mappable_width(id).is_some() {
            let col: Arc<dyn SharedColumn<NodeId>> = Arc::new(self.view::<NodeId>(id)?);
            Ok(ColumnBuf::from(col))
        } else {
            Ok(self.u32s(id)?.into())
        }
    }
    fn f64_col(&self, id: u16) -> Result<ColumnBuf<f64>, PersistError> {
        if mappable_width(id).is_some() {
            let col: Arc<dyn SharedColumn<f64>> = Arc::new(self.view::<f64>(id)?);
            Ok(ColumnBuf::from(col))
        } else {
            Ok(self.f64s(id)?.into())
        }
    }
}
