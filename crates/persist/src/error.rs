//! Typed persistence errors. Every way on-disk bytes can be wrong maps
//! to a variant here — corrupt input is an error value, never a panic.

use std::fmt;
use std::io;

/// Everything that can go wrong reading or writing persistent state.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the expected magic bytes — not a
    /// checkpoint / WAL segment at all.
    BadMagic {
        /// Which kind of file was being opened.
        kind: &'static str,
    },
    /// The format version is one this build does not understand.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// A CRC check failed: the bytes were damaged after being written.
    CrcMismatch {
        /// What the CRC guarded (block name or WAL record).
        context: &'static str,
    },
    /// The file ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// Structurally invalid content (lengths that disagree, ids out of
    /// range, unknown tags) with a CRC that still matched — either a
    /// writer bug or deliberate tampering.
    Corrupt {
        /// What was found to be inconsistent.
        context: &'static str,
    },
    /// A WAL record's sequence number broke continuity (gap or
    /// duplicate) — a segment is missing or was reordered.
    SequenceGap {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// The checkpoint and the state it is being combined with disagree
    /// (e.g. a WAL written by a different run).
    Mismatch {
        /// What disagreed.
        context: &'static str,
    },
    /// A mapped-layout payload does not sit on its required alignment
    /// boundary — the file was not written by the raw-layout encoder (or
    /// was shifted), so zero-copy views cannot be handed out safely.
    Misaligned {
        /// Which payload was misaligned.
        context: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic { kind } => write!(f, "bad magic: not a {kind} file"),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads ≤ {supported})"
                )
            }
            PersistError::CrcMismatch { context } => write!(f, "CRC mismatch in {context}"),
            PersistError::Truncated { context } => write!(f, "truncated input: {context}"),
            PersistError::Corrupt { context } => write!(f, "corrupt input: {context}"),
            PersistError::SequenceGap { expected, found } => {
                write!(f, "WAL sequence gap: expected {expected}, found {found}")
            }
            PersistError::Mismatch { context } => write!(f, "state mismatch: {context}"),
            PersistError::Misaligned { context } => {
                write!(f, "misaligned mapped payload: {context}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}
