//! Typed-error fixed-width little-endian reads.
//!
//! Every decode path in this crate reads scalars out of length-checked
//! subslices, where `try_into().unwrap()` would be infallible *today* —
//! but an unwrap in a parser is a panic waiting for the refactor that
//! breaks its guarding bounds check. These helpers make the conversion
//! itself return [`PersistError`], so the no-panic contract of the decode
//! layer (`qsc-audit`'s `no-panic-on-input` rule) holds by construction:
//! a short slice surfaces as `Truncated`, never as a panic.

use crate::error::PersistError;

fn arr<const N: usize>(b: &[u8]) -> Result<[u8; N], PersistError> {
    b.get(..N)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(PersistError::Truncated {
            context: "fixed-width scalar ended early",
        })
}

/// Read a `u16` from the first two bytes of `b`.
pub(crate) fn le_u16(b: &[u8]) -> Result<u16, PersistError> {
    Ok(u16::from_le_bytes(arr::<2>(b)?))
}

/// Read a `u32` from the first four bytes of `b`.
pub(crate) fn le_u32(b: &[u8]) -> Result<u32, PersistError> {
    Ok(u32::from_le_bytes(arr::<4>(b)?))
}

/// Read a `u64` from the first eight bytes of `b`.
pub(crate) fn le_u64(b: &[u8]) -> Result<u64, PersistError> {
    Ok(u64::from_le_bytes(arr::<8>(b)?))
}

/// Read an `f64` (bit pattern preserved exactly) from the first eight
/// bytes of `b`.
pub(crate) fn le_f64(b: &[u8]) -> Result<f64, PersistError> {
    Ok(f64::from_bits(le_u64(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_input_is_a_typed_error_not_a_panic() {
        assert!(le_u16(&[1]).is_err());
        assert!(le_u32(&[1, 2, 3]).is_err());
        assert!(le_u64(&[0; 7]).is_err());
        assert!(le_f64(&[]).is_err());
    }

    #[test]
    fn values_round_trip() {
        assert_eq!(le_u16(&0x1234u16.to_le_bytes()).unwrap(), 0x1234);
        assert_eq!(le_u32(&0xdeadbeefu32.to_le_bytes()).unwrap(), 0xdeadbeef);
        assert_eq!(le_u64(&u64::MAX.to_le_bytes()).unwrap(), u64::MAX);
        let x = -0.0f64;
        assert_eq!(
            le_f64(&x.to_bits().to_le_bytes()).unwrap().to_bits(),
            x.to_bits()
        );
        // Longer slices read their prefix.
        assert_eq!(le_u16(&[1, 0, 99]).unwrap(), 1);
    }
}
