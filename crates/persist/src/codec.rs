//! Column codecs: the byte-level encodings under both the checkpoint
//! blocks and the WAL record payloads.
//!
//! Everything here is hand-rolled (the build environment is offline; no
//! compression crates) and deliberately simple:
//!
//! * **varint** — LEB128: 7 value bits per byte, high bit = continuation.
//!   Monotone offsets and small ids shrink to 1–2 bytes.
//! * **zigzag** — maps signed deltas to unsigned so varint stays short
//!   for negatives: `(n << 1) ^ (n >> 63)`.
//! * **delta** — consecutive-difference transform; CSR offsets become
//!   per-row degrees, sorted id runs become small gaps.
//! * **byte-shuffle + RLE** — for `f64` columns: transpose the column
//!   into eight byte planes (plane `b` holds byte `b` of every value),
//!   then run-length encode each plane. Real-world weight columns have
//!   near-constant sign/exponent planes (and all-zero low-mantissa
//!   planes for integer-valued weights), which RLE collapses; the
//!   incompressible planes ride through as literal runs at ~1 byte of
//!   overhead per 128.
//! * **CRC-32** (IEEE, reflected, table-driven) — integrity check per
//!   block and per WAL record.
//!
//! Encoders that have a choice ([`encode_u64s`], [`encode_f64s`]) try
//! each applicable encoding and keep the smallest; the winner's tag is
//! stored next to the payload, so decoding never guesses.

use crate::error::PersistError;

/// Encoding tags stored alongside each block payload.
pub const ENC_RAW: u8 = 0;
/// LEB128 varints, one per element.
pub const ENC_VARINT: u8 = 1;
/// Consecutive deltas, zigzag-mapped, LEB128-encoded.
pub const ENC_DELTA: u8 = 2;
/// Eight byte planes, each run-length encoded ([`ENC_SHUFFLE`] is only
/// ever applied to `f64` columns).
pub const ENC_SHUFFLE: u8 = 3;
/// One bit per element, LSB-first within each byte.
pub const ENC_BITMAP: u8 = 4;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

/// Slice-by-8 lookup tables. Table 0 is the classic byte-at-a-time
/// table; table `k` maps a byte to its CRC contribution `k` positions
/// further back in the stream, so eight bytes fold in one step.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            b += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC-32 (IEEE) of `bytes`, slice-by-8: eight table lookups per 8-byte
/// word instead of eight dependent byte steps. Same polynomial and
/// check values as the byte-at-a-time loop — only the throughput
/// changes, which matters because every mapped block is CRC-validated
/// on first touch.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// varint / zigzag
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint from `buf[*pos..]`, advancing `pos`.
#[inline]
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    // Single-byte fast path: the dominant case for delta-encoded columns
    // (CSR gaps, per-row degrees, small ids are almost always < 128).
    if let Some(&b) = buf.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Ok(u64::from(b));
        }
    }
    get_varint_slow(buf, pos)
}

#[cold]
fn get_varint_slow(buf: &[u8], pos: &mut usize) -> Result<u64, PersistError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(PersistError::Truncated {
            context: "varint ran off the end of its buffer",
        })?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(PersistError::Corrupt {
                context: "varint overflows u64",
            });
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Byte length `v` takes as a LEB128 varint (1–10), without writing it —
/// the encoders size every candidate encoding before materializing only
/// the winner.
#[inline]
#[must_use]
fn varint_len(v: u64) -> usize {
    // ceil(bits / 7) with a 1-byte floor for v == 0.
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Zigzag-map a signed value so small magnitudes stay small unsigned.
#[inline]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// RLE over byte planes
// ---------------------------------------------------------------------------

/// Run/literal RLE: `token = varint` where odd tokens mean a run
/// (`(token >> 1)` copies of the next byte) and even tokens a literal
/// block (`(token >> 1)` raw bytes follow). Runs shorter than 4 bytes
/// are folded into literals — below that a run token loses to the bytes
/// it replaces.
fn rle_encode(bytes: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    let mut lit_start = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let mut j = i + 1;
        // Extend the run eight bytes at a time once it proves itself:
        // weight planes are megabytes of one repeated byte, and the
        // word compare turns that scan into 1/8th the loads.
        if j + 8 <= bytes.len() && bytes[j] == b {
            let word = u64::from_ne_bytes([b; 8]);
            while let Some(Ok(w)) = bytes
                .get(j..j + 8)
                .map(|s| <[u8; 8]>::try_from(s).map(u64::from_ne_bytes))
            {
                if w != word {
                    break;
                }
                j += 8;
            }
        }
        while j < bytes.len() && bytes[j] == b {
            j += 1;
        }
        let run = j - i;
        if run >= 4 {
            if lit_start < i {
                let len = (i - lit_start) as u64;
                put_varint(out, len << 1);
                out.extend_from_slice(&bytes[lit_start..i]);
            }
            put_varint(out, ((run as u64) << 1) | 1);
            out.push(b);
            lit_start = j;
        }
        i = j;
    }
    if lit_start < bytes.len() {
        let len = (bytes.len() - lit_start) as u64;
        put_varint(out, len << 1);
        out.extend_from_slice(&bytes[lit_start..]);
    }
}

fn rle_decode(buf: &[u8], pos: &mut usize, expected: usize) -> Result<Vec<u8>, PersistError> {
    // Capacity hint only — `expected` comes from an unauthenticated
    // header field, so never pre-allocate it unbounded.
    let mut out = Vec::with_capacity(expected.min(1 << 22));
    while out.len() < expected {
        let token = get_varint(buf, pos)?;
        let len = usize::try_from(token >> 1).map_err(|_| PersistError::Corrupt {
            context: "RLE token length overflows usize",
        })?;
        if len > expected - out.len() {
            return Err(PersistError::Corrupt {
                context: "RLE run overruns its plane",
            });
        }
        if token & 1 == 1 {
            let b = *buf.get(*pos).ok_or(PersistError::Truncated {
                context: "RLE run byte missing",
            })?;
            *pos += 1;
            out.resize(out.len() + len, b);
        } else {
            let lit = buf.get(*pos..*pos + len).ok_or(PersistError::Truncated {
                context: "RLE literal block missing",
            })?;
            *pos += len;
            out.extend_from_slice(lit);
        }
    }
    Ok(out)
}

/// Decode one RLE byte plane directly into `bits`, OR-ing each byte at
/// `shift` — the fused path [`decode_f64s`] uses for planes 1–7 once the
/// first plane has proven the element count. Token framing and overrun
/// checks match [`rle_decode`] exactly.
fn rle_apply_plane(
    buf: &[u8],
    pos: &mut usize,
    bits: &mut [u64],
    shift: u32,
) -> Result<(), PersistError> {
    let expected = bits.len();
    let mut filled = 0usize;
    while filled < expected {
        let token = get_varint(buf, pos)?;
        let len = usize::try_from(token >> 1).map_err(|_| PersistError::Corrupt {
            context: "RLE token length overflows usize",
        })?;
        if len > expected - filled {
            return Err(PersistError::Corrupt {
                context: "RLE run overruns its plane",
            });
        }
        if token & 1 == 1 {
            let b = *buf.get(*pos).ok_or(PersistError::Truncated {
                context: "RLE run byte missing",
            })?;
            *pos += 1;
            let broadcast = u64::from(b) << shift;
            for dst in &mut bits[filled..filled + len] {
                *dst |= broadcast;
            }
        } else {
            let lit = buf.get(*pos..*pos + len).ok_or(PersistError::Truncated {
                context: "RLE literal block missing",
            })?;
            *pos += len;
            for (dst, &b) in bits[filled..filled + len].iter_mut().zip(lit) {
                *dst |= u64::from(b) << shift;
            }
        }
        filled += len;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// u64 columns
// ---------------------------------------------------------------------------

/// Encode a `u64` column, picking the smallest of raw / varint /
/// delta+zigzag+varint. Returns `(encoding_tag, payload)`.
///
/// Candidates are *sized* first (a cheap arithmetic pass) and only the
/// winner is materialized — large columns cost one write pass instead of
/// three.
#[must_use]
pub fn encode_u64s(vals: &[u64]) -> (u8, Vec<u8>) {
    let mut varint_size = 0usize;
    let mut delta_size = 0usize;
    let mut prev = 0u64;
    for &v in vals {
        varint_size += varint_len(v);
        delta_size += varint_len(zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    let raw_len = vals.len() * 8;
    if raw_len <= varint_size && raw_len <= delta_size {
        let mut raw = Vec::with_capacity(raw_len);
        for &v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        (ENC_RAW, raw)
    } else if varint_size <= delta_size {
        let mut varint = Vec::with_capacity(varint_size);
        for &v in vals {
            put_varint(&mut varint, v);
        }
        (ENC_VARINT, varint)
    } else {
        let mut delta = Vec::with_capacity(delta_size);
        let mut prev = 0u64;
        for &v in vals {
            put_varint(&mut delta, zigzag(v.wrapping_sub(prev) as i64));
            prev = v;
        }
        (ENC_DELTA, delta)
    }
}

/// Decode a `u64` column of `count` elements.
pub fn decode_u64s(enc: u8, payload: &[u8], count: usize) -> Result<Vec<u64>, PersistError> {
    // `count` is an unauthenticated header field: bound it against the
    // payload (varint elements take at least one byte, raw exactly 8)
    // before any allocation sized by it.
    match enc {
        ENC_VARINT | ENC_DELTA if count > payload.len() => {
            return Err(PersistError::Corrupt {
                context: "u64 column count exceeds its payload",
            });
        }
        ENC_RAW if count.checked_mul(8) != Some(payload.len()) => {
            return Err(PersistError::Corrupt {
                context: "raw u64 column has wrong byte length",
            });
        }
        _ => {}
    }
    let mut out = Vec::with_capacity(count.min(payload.len()));
    let mut pos = 0;
    match enc {
        ENC_RAW => {
            for chunk in payload.chunks_exact(8) {
                out.push(crate::le::le_u64(chunk)?);
            }
        }
        ENC_VARINT => {
            for _ in 0..count {
                out.push(get_varint(payload, &mut pos)?);
            }
        }
        ENC_DELTA => {
            let mut prev = 0u64;
            for _ in 0..count {
                let d = unzigzag(get_varint(payload, &mut pos)?);
                prev = prev.wrapping_add(d as u64);
                out.push(prev);
            }
        }
        _ => {
            return Err(PersistError::Corrupt {
                context: "unknown encoding tag for u64 column",
            })
        }
    }
    if (enc == ENC_VARINT || enc == ENC_DELTA) && pos != payload.len() {
        return Err(PersistError::Corrupt {
            context: "u64 column has trailing bytes",
        });
    }
    Ok(out)
}

/// Encode a `u32` column: the varint/delta byte streams are identical to
/// the widened-`u64` encoding (LEB128 length depends only on the value),
/// but raw stays at the natural 4-byte width — and nothing widens to a
/// temporary `u64` column along the way.
#[must_use]
pub fn encode_u32s(vals: &[u32]) -> (u8, Vec<u8>) {
    let mut varint_size = 0usize;
    let mut delta_size = 0usize;
    let mut prev = 0u64;
    for &v in vals {
        let v = u64::from(v);
        varint_size += varint_len(v);
        delta_size += varint_len(zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    // The u64 path compares candidates against 8-byte raw; mirror that
    // ranking exactly (so the chosen tag never drifts from the old
    // widen-then-encode implementation), then emit raw at 4 bytes.
    let wide_raw_len = vals.len() * 8;
    if wide_raw_len <= varint_size && wide_raw_len <= delta_size {
        let mut raw = Vec::with_capacity(vals.len() * 4);
        for &v in vals {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        (ENC_RAW, raw)
    } else if varint_size <= delta_size {
        let mut varint = Vec::with_capacity(varint_size);
        for &v in vals {
            put_varint(&mut varint, u64::from(v));
        }
        (ENC_VARINT, varint)
    } else {
        let mut delta = Vec::with_capacity(delta_size);
        let mut prev = 0u64;
        for &v in vals {
            put_varint(&mut delta, zigzag(u64::from(v).wrapping_sub(prev) as i64));
            prev = u64::from(v);
        }
        (ENC_DELTA, delta)
    }
}

/// Decode a `u32` column of `count` elements (same validation rules as
/// [`decode_u64s`], decoded straight at the narrow width — no temporary
/// `u64` column).
pub fn decode_u32s(enc: u8, payload: &[u8], count: usize) -> Result<Vec<u32>, PersistError> {
    let narrow = |v: u64| {
        u32::try_from(v).map_err(|_| PersistError::Corrupt {
            context: "u32 column element out of range",
        })
    };
    let mut pos = 0;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    match enc {
        ENC_RAW => {
            if count.checked_mul(4) != Some(payload.len()) {
                return Err(PersistError::Corrupt {
                    context: "raw u32 column has wrong byte length",
                });
            }
            let mut raw = Vec::with_capacity(count);
            for c in payload.chunks_exact(4) {
                raw.push(crate::le::le_u32(c)?);
            }
            return Ok(raw);
        }
        ENC_VARINT | ENC_DELTA if count > payload.len() => {
            return Err(PersistError::Corrupt {
                context: "u64 column count exceeds its payload",
            });
        }
        ENC_VARINT => {
            for _ in 0..count {
                out.push(narrow(get_varint(payload, &mut pos)?)?);
            }
        }
        ENC_DELTA => {
            let mut prev = 0u64;
            for _ in 0..count {
                let d = unzigzag(get_varint(payload, &mut pos)?);
                prev = prev.wrapping_add(d as u64);
                out.push(narrow(prev)?);
            }
        }
        _ => {
            return Err(PersistError::Corrupt {
                context: "unknown encoding tag for u64 column",
            })
        }
    }
    if pos != payload.len() {
        return Err(PersistError::Corrupt {
            context: "u64 column has trailing bytes",
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// f64 columns
// ---------------------------------------------------------------------------

/// Encode an `f64` column, picking the smaller of raw LE bytes and
/// byte-shuffle + RLE. Bit-exact: values travel as their `to_bits`
/// image, so `-0.0`, infinities, and NaN payloads round-trip.
#[must_use]
pub fn encode_f64s(vals: &[f64]) -> (u8, Vec<u8>) {
    let n = vals.len();
    let mut shuffled = Vec::with_capacity(n + 16);
    let mut plane = vec![0u8; n];
    for b in 0..8 {
        let shift = 8 * b;
        for (dst, &v) in plane.iter_mut().zip(vals) {
            *dst = (v.to_bits() >> shift) as u8;
        }
        rle_encode(&plane, &mut shuffled);
    }
    let raw_len = n * 8;
    if raw_len <= shuffled.len() {
        let mut raw = Vec::with_capacity(raw_len);
        for &v in vals {
            raw.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        (ENC_RAW, raw)
    } else {
        (ENC_SHUFFLE, shuffled)
    }
}

/// Decode an `f64` column of `count` elements.
pub fn decode_f64s(enc: u8, payload: &[u8], count: usize) -> Result<Vec<f64>, PersistError> {
    match enc {
        ENC_RAW => {
            if count.checked_mul(8) != Some(payload.len()) {
                return Err(PersistError::Corrupt {
                    context: "raw f64 column has wrong byte length",
                });
            }
            let mut raw = Vec::with_capacity(count);
            for c in payload.chunks_exact(8) {
                raw.push(crate::le::le_f64(c)?);
            }
            Ok(raw)
        }
        ENC_SHUFFLE => {
            let mut pos = 0;
            // `count` is unauthenticated: let the first plane's decode
            // prove that many elements actually materialize from the
            // payload before allocating the 8-byte-wide bit buffer.
            let plane0 = rle_decode(payload, &mut pos, count)?;
            let mut bits: Vec<u64> = plane0.iter().map(|&b| u64::from(b)).collect();
            drop(plane0);
            for b in 1..8 {
                // Remaining planes are OR-ed straight into the bit
                // buffer (runs as a broadcast over the span, literals
                // elementwise) — no per-plane byte buffer.
                rle_apply_plane(payload, &mut pos, &mut bits, 8 * b)?;
            }
            if pos != payload.len() {
                return Err(PersistError::Corrupt {
                    context: "f64 column has trailing bytes",
                });
            }
            Ok(bits.into_iter().map(f64::from_bits).collect())
        }
        _ => Err(PersistError::Corrupt {
            context: "unknown encoding tag for f64 column",
        }),
    }
}

// ---------------------------------------------------------------------------
// bool columns
// ---------------------------------------------------------------------------

/// Encode a `bool` column as an LSB-first bitmap.
#[must_use]
pub fn encode_bools(vals: &[bool]) -> (u8, Vec<u8>) {
    let mut out = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if v {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    (ENC_BITMAP, out)
}

/// Decode a `bool` column of `count` elements.
pub fn decode_bools(enc: u8, payload: &[u8], count: usize) -> Result<Vec<bool>, PersistError> {
    if enc != ENC_BITMAP {
        return Err(PersistError::Corrupt {
            context: "unknown encoding tag for bool column",
        });
    }
    if payload.len() != count.div_ceil(8) {
        return Err(PersistError::Corrupt {
            context: "bool column has wrong byte length",
        });
    }
    // Trailing padding bits must be zero — anything else is corruption
    // (or a writer bug), not data.
    if !count.is_multiple_of(8) {
        let last = payload[count / 8];
        if last >> (count % 8) != 0 {
            return Err(PersistError::Corrupt {
                context: "bool column has set padding bits",
            });
        }
    }
    Ok((0..count)
        .map(|i| payload[i / 8] >> (i % 8) & 1 == 1)
        .collect())
}

/// Natural (uncompressed, fixed-width) byte size of a column: the
/// baseline the compression-ratio metric divides by.
#[must_use]
pub fn natural_bytes(count: usize, width: usize) -> usize {
    count * width
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        // The fast path folds 8 bytes per step; pin it to the plain
        // one-byte-at-a-time recurrence across lengths that hit every
        // remainder case (0..8 tail bytes) and multi-word bodies.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in (0..24).chain([255, 256, 257]) {
            let bytes = &data[..len];
            let mut c = !0u32;
            for &b in bytes {
                c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(bytes), !c, "length {len}");
        }
    }

    #[test]
    fn varint_round_trips_extremes() {
        let vals = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        let mut buf = Vec::new();
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut buf = vec![0xFF; 10];
        buf.push(0x7F); // 11 bytes: the 10th byte may only contribute one bit
        assert!(get_varint(&buf, &mut 0).is_err());
        assert!(get_varint(&[0x80], &mut 0).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn u64_column_round_trips_all_encodings() {
        // Monotone offsets: delta should win and round-trip.
        let offsets: Vec<u64> = (0..1000u64).map(|i| i * 17).collect();
        let (enc, payload) = encode_u64s(&offsets);
        assert_eq!(enc, ENC_DELTA);
        assert_eq!(decode_u64s(enc, &payload, offsets.len()).unwrap(), offsets);

        // Large scattered values: raw should win and round-trip.
        let scattered: Vec<u64> = (0..64u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let (enc, payload) = encode_u64s(&scattered);
        assert_eq!(enc, ENC_RAW);
        assert_eq!(
            decode_u64s(enc, &payload, scattered.len()).unwrap(),
            scattered
        );

        // Small non-monotone values: varint should win and round-trip.
        let small: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 100).collect();
        let (enc, payload) = encode_u64s(&small);
        assert_eq!(decode_u64s(enc, &payload, small.len()).unwrap(), small);
    }

    #[test]
    fn f64_column_round_trips_bit_exactly() {
        let vals = vec![
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0e300,
            std::f64::consts::PI,
        ];
        for (enc, payload) in [encode_f64s(&vals), {
            let mut raw = Vec::new();
            for &v in &vals {
                raw.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            (ENC_RAW, raw)
        }] {
            let back = decode_f64s(enc, &payload, vals.len()).unwrap();
            let a: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unit_weight_column_compresses_heavily() {
        let vals = vec![1.0f64; 4096];
        let (enc, payload) = encode_f64s(&vals);
        assert_eq!(enc, ENC_SHUFFLE);
        assert!(
            payload.len() * 100 < vals.len() * 8,
            "constant plane RLE should collapse: {} bytes",
            payload.len()
        );
        assert_eq!(decode_f64s(enc, &payload, vals.len()).unwrap(), vals);
    }

    #[test]
    fn bool_column_round_trips_and_rejects_padding_garbage() {
        let vals: Vec<bool> = (0..37).map(|i| i % 3 == 0).collect();
        let (enc, mut payload) = encode_bools(&vals);
        assert_eq!(decode_bools(enc, &payload, vals.len()).unwrap(), vals);
        *payload.last_mut().unwrap() |= 0x80; // set a padding bit
        assert!(decode_bools(enc, &payload, vals.len()).is_err());
    }

    #[test]
    fn rle_handles_incompressible_and_mixed_input() {
        let mixed: Vec<u8> = (0..997u32)
            .map(|i| if i % 90 < 30 { 7 } else { (i * 31 % 251) as u8 })
            .collect();
        let mut enc = Vec::new();
        rle_encode(&mixed, &mut enc);
        let mut pos = 0;
        assert_eq!(rle_decode(&enc, &mut pos, mixed.len()).unwrap(), mixed);
        assert_eq!(pos, enc.len());
    }
}
