//! The columnar checkpoint: one file holding the complete engine stack
//! state — graph CSR, coloring, accumulator rows, pair summaries,
//! reduced instance, run config and counters — as independently
//! CRC-guarded, individually encoded column blocks.
//!
//! See the crate docs for the full format specification. The writer is
//! [`write_checkpoint_file`] (atomic: temp file + rename + fsync); the
//! reader is [`read_checkpoint_file`]. Both go through the in-memory
//! [`encode_checkpoint`] / [`decode_checkpoint`] pair, which the tests
//! corrupt byte-by-byte.
//!
//! Decoding **validates before constructing**: every length, offset
//! monotonicity, id range and flag consistency is checked with typed
//! [`PersistError`]s while the data is still plain columns, so the
//! panicking constructors downstream (`Graph::from_out_csr`,
//! `Partition::from_classes`, the `from_snapshot` family) only ever see
//! witnessed-consistent input.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use qsc_core::partition::Partition;
use qsc_core::q_error::{EngineSnapshot, RowsSnapshot};
use qsc_core::reduced::ReducedSnapshot;
use qsc_core::rothko::{RothkoConfig, RunSnapshot, SplitMean};
use qsc_core::storage::StorageMode;
use qsc_graph::{ColumnBuf, Graph, NodeId};

use crate::codec::{
    crc32, decode_bools, decode_f64s, decode_u32s, decode_u64s, encode_bools, encode_f64s,
    encode_u32s, encode_u64s, natural_bytes, ENC_RAW,
};
use crate::error::PersistError;

/// Checkpoint file magic.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"QSC_CKPT";
/// Packed checkpoint format version. Readers accept exactly the
/// versions they know; see the crate docs for the versioning policy.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Mapped (raw-layout) checkpoint format version: mappable columns are
/// pinned to [`ENC_RAW`] and 64-byte-aligned so a reader can serve them
/// as zero-copy views straight out of a memory map.
pub const CHECKPOINT_VERSION_MAPPED: u32 = 2;

/// On-disk layout a checkpoint is written in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Version-1 packed layout: every column goes through size-first
    /// encoding selection (varint / delta / shuffle / raw, whichever is
    /// smallest). Smallest files; restore decodes every column.
    #[default]
    Packed,
    /// Version-2 mapped layout: the large mappable columns (graph CSR,
    /// partition, accumulator planes, reduced sum) are stored as raw
    /// little-endian values with their payloads 64-byte-aligned in the
    /// file, so [`crate::MappedStore`] can hand out borrowed slices
    /// without decoding. Small or irregular columns stay packed.
    MappedRaw,
}

/// File header length: magic + version + block count + header CRC.
const FILE_HEADER: usize = 20;
/// v1 block header: id, enc, reserved, count, payload_len, pcrc.
const BLOCK_HEADER_V1: usize = 24;
/// v2 block header: v1 fields + a CRC over the 24 bytes before it, so a
/// damaged header (most importantly the `enc` byte, which v1 leaves
/// unguarded) is caught at open rather than misdirecting a decoder.
const BLOCK_HEADER_V2: usize = 28;
/// Alignment every mappable payload starts on in a v2 file — enough for
/// any scalar column plus full-width SIMD loads.
pub(crate) const MAP_ALIGN: usize = 64;

/// `u32::MAX` — the "no attainer recorded" witness sentinel mirrored
/// from the engine.
const NO_ARG: u32 = u32::MAX;

// Block ids, fixed per format version. New columns get new ids in a new
// version; ids are never reused with a different meaning.
pub(crate) const BLK_SCALARS: u16 = 0;
pub(crate) const BLK_GRAPH_OFFSETS: u16 = 1;
pub(crate) const BLK_GRAPH_TARGETS: u16 = 2;
pub(crate) const BLK_GRAPH_WEIGHTS: u16 = 3;
pub(crate) const BLK_PART_OFFSETS: u16 = 4;
pub(crate) const BLK_PART_MEMBERS: u16 = 5;
pub(crate) const BLK_ENG_DOUT: u16 = 6;
pub(crate) const BLK_ENG_DIN: u16 = 7;
pub(crate) const BLK_ROWS_OUT_OFFSETS: u16 = 8;
pub(crate) const BLK_ROWS_OUT_COLORS: u16 = 9;
pub(crate) const BLK_ROWS_OUT_WEIGHTS: u16 = 10;
pub(crate) const BLK_ROWS_OUT_DENSE: u16 = 11;
pub(crate) const BLK_ROWS_IN_OFFSETS: u16 = 12;
pub(crate) const BLK_ROWS_IN_COLORS: u16 = 13;
pub(crate) const BLK_ROWS_IN_WEIGHTS: u16 = 14;
pub(crate) const BLK_ROWS_IN_DENSE: u16 = 15;
pub(crate) const BLK_OUT_MIN: u16 = 16;
pub(crate) const BLK_OUT_MAX: u16 = 17;
pub(crate) const BLK_IN_MIN: u16 = 18;
pub(crate) const BLK_IN_MAX: u16 = 19;
pub(crate) const BLK_OUT_MIN_ARG: u16 = 20;
pub(crate) const BLK_OUT_MAX_ARG: u16 = 21;
pub(crate) const BLK_IN_MIN_ARG: u16 = 22;
pub(crate) const BLK_IN_MAX_ARG: u16 = 23;
pub(crate) const BLK_OUT_NZ: u16 = 24;
pub(crate) const BLK_IN_NZ: u16 = 25;
pub(crate) const BLK_RED_SUM: u16 = 26;
pub(crate) const BLK_RED_SIZES: u16 = 27;
pub(crate) const BLK_RED_DIRTY: u16 = 28;
/// v2-only padding block: `count == payload_len` zero bytes inserted so
/// the next (mappable) payload lands on a [`MAP_ALIGN`] boundary.
pub(crate) const BLK_PAD: u16 = 0xFFFF;

/// Element width (bytes) of a block pinned to raw encoding and aligned
/// in the mapped layout, or `None` for blocks that stay packed. The
/// mappable set is the columns a [`crate::MappedStore`] serves as
/// borrowed slices: the graph CSR, the partition (so a coloring can be
/// answered without decoding), the accumulator degree planes, and the
/// reduced weight matrix (so a quotient weight can be answered without
/// decoding).
pub(crate) fn mappable_width(id: u16) -> Option<usize> {
    match id {
        BLK_GRAPH_OFFSETS | BLK_PART_OFFSETS => Some(8),
        BLK_GRAPH_TARGETS | BLK_PART_MEMBERS => Some(4),
        BLK_GRAPH_WEIGHTS | BLK_ENG_DOUT | BLK_ENG_DIN | BLK_RED_SUM => Some(8),
        _ => None,
    }
}

/// Whether a block id is raw-pinned and aligned in the mapped layout.
pub(crate) fn is_mappable(id: u16) -> bool {
    mappable_width(id).is_some()
}

/// Everything a checkpoint holds: the state needed to rebuild a
/// [`qsc_core::rothko::RothkoRun`] (and optionally its lockstep
/// [`qsc_core::reduced::ReducedDelta`]) bit-identically.
#[derive(Clone, Debug)]
pub struct CheckpointData {
    /// The compacted graph the run currently refines.
    pub graph: Graph,
    /// The run's configuration. `initial` is not persisted (it only
    /// matters at construction; restore rebuilds from the snapshot's
    /// partition) and comes back as `None`.
    pub config: RothkoConfig,
    /// The run's resumable state.
    pub run: RunSnapshot,
    /// The reduced-instance state, when the writer maintained one.
    pub reduced: Option<ReducedSnapshot>,
    /// WAL sequence number this checkpoint covers: every record with
    /// `seq <= wal_seq` is already folded into this state, and recovery
    /// replays strictly newer records only.
    pub wal_seq: u64,
}

/// Size accounting for one encoded checkpoint — the numbers
/// `BENCH_persist.json` reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointStats {
    /// Total file bytes (header + block headers + payloads).
    pub file_bytes: u64,
    /// Natural (fixed-width, uncompressed) bytes of every column — the
    /// compression-ratio baseline.
    pub natural_bytes: u64,
    /// Encoded payload bytes across all blocks.
    pub encoded_bytes: u64,
    /// Number of blocks written.
    pub blocks: u32,
}

impl CheckpointStats {
    /// Natural bytes over encoded payload bytes (∞-safe: 0 when empty).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            0.0
        } else {
            self.natural_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar blob (block 0)
// ---------------------------------------------------------------------------

struct ScalarWriter {
    buf: Vec<u8>,
}

impl ScalarWriter {
    fn new() -> Self {
        ScalarWriter { buf: Vec::new() }
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn flag(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.buf.push(1);
                self.u64(x);
            }
            None => self.buf.push(0),
        }
    }
}

struct ScalarReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ScalarReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ScalarReader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(PersistError::Truncated {
                context: "scalar block ended early",
            })?;
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        crate::le::le_u64(self.take(8)?)
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        crate::le::le_f64(self.take(8)?)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn flag(&mut self) -> Result<bool, PersistError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt {
                context: "boolean scalar is neither 0 nor 1",
            }),
        }
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        if self.flag()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.u64()?).map_err(|_| PersistError::Corrupt {
            context: "scalar value overflows usize",
        })
    }
    fn finish(self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt {
                context: "scalar block has trailing bytes",
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct BlockSink {
    out: Vec<u8>,
    stats: CheckpointStats,
    layout: Layout,
}

impl BlockSink {
    /// Append one block: header, then payload. v2 headers carry a CRC
    /// over their own first 24 bytes so a damaged header field (id,
    /// enc, count, length, even the payload CRC itself) is caught at
    /// open instead of misdirecting a decoder.
    fn emit(&mut self, id: u16, enc: u8, count: usize, payload: &[u8], natural: usize) {
        let start = self.out.len();
        self.out.extend_from_slice(&id.to_le_bytes());
        self.out.push(enc);
        self.out.push(0); // reserved
        self.out.extend_from_slice(&(count as u64).to_le_bytes());
        self.out
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.out.extend_from_slice(&crc32(payload).to_le_bytes());
        if self.layout == Layout::MappedRaw {
            let hcrc = crc32(&self.out[start..start + BLOCK_HEADER_V1]);
            self.out.extend_from_slice(&hcrc.to_le_bytes());
        }
        self.out.extend_from_slice(payload);
        self.stats.blocks += 1;
        self.stats.encoded_bytes += payload.len() as u64;
        self.stats.natural_bytes += natural as u64;
    }
    /// Append a block, first inserting a padding block if the mapped
    /// layout needs this payload on a [`MAP_ALIGN`] boundary.
    fn push_block(&mut self, id: u16, enc: u8, count: usize, payload: &[u8], natural: usize) {
        if self.layout == Layout::MappedRaw && is_mappable(id) {
            let payload_at = FILE_HEADER + self.out.len() + BLOCK_HEADER_V2;
            if !payload_at.is_multiple_of(MAP_ALIGN) {
                // A pad block shifts the next payload by its own header
                // plus `pad` zero bytes; solve for the shift that lands
                // the payload on the boundary.
                let pad = (MAP_ALIGN - ((payload_at + BLOCK_HEADER_V2) % MAP_ALIGN)) % MAP_ALIGN;
                let zeros = [0u8; MAP_ALIGN];
                self.emit(BLK_PAD, ENC_RAW, pad, &zeros[..pad], 0);
            }
            debug_assert!(
                (FILE_HEADER + self.out.len() + BLOCK_HEADER_V2).is_multiple_of(MAP_ALIGN)
            );
        }
        self.emit(id, enc, count, payload, natural);
    }
    /// Is this column pinned to raw little-endian encoding (no
    /// size-first selection) under the current layout?
    fn raw_pinned(&self, id: u16) -> bool {
        self.layout == Layout::MappedRaw && is_mappable(id)
    }
    fn u64s(&mut self, id: u16, vals: &[u64]) {
        let (enc, payload) = if self.raw_pinned(id) {
            let mut raw = Vec::with_capacity(vals.len() * 8);
            for &v in vals {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            (ENC_RAW, raw)
        } else {
            encode_u64s(vals)
        };
        self.push_block(id, enc, vals.len(), &payload, natural_bytes(vals.len(), 8));
    }
    fn usizes(&mut self, id: u16, vals: &[usize]) {
        let wide: Vec<u64> = vals.iter().map(|&v| v as u64).collect();
        self.u64s(id, &wide);
    }
    fn u32s(&mut self, id: u16, vals: &[u32]) {
        let (enc, payload) = if self.raw_pinned(id) {
            let mut raw = Vec::with_capacity(vals.len() * 4);
            for &v in vals {
                raw.extend_from_slice(&v.to_le_bytes());
            }
            (ENC_RAW, raw)
        } else {
            encode_u32s(vals)
        };
        self.push_block(id, enc, vals.len(), &payload, natural_bytes(vals.len(), 4));
    }
    fn f64s(&mut self, id: u16, vals: &[f64]) {
        let (enc, payload) = if self.raw_pinned(id) {
            let mut raw = Vec::with_capacity(vals.len() * 8);
            for &v in vals {
                raw.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            (ENC_RAW, raw)
        } else {
            encode_f64s(vals)
        };
        self.push_block(id, enc, vals.len(), &payload, natural_bytes(vals.len(), 8));
    }
    fn bools(&mut self, id: u16, vals: &[bool]) {
        let (enc, payload) = encode_bools(vals);
        self.push_block(id, enc, vals.len(), &payload, natural_bytes(vals.len(), 1));
    }
}

fn split_mean_tag(m: SplitMean) -> u8 {
    match m {
        SplitMean::Arithmetic => 0,
        SplitMean::Geometric => 1,
    }
}

fn storage_tag(s: StorageMode) -> u8 {
    match s {
        StorageMode::Dense => 0,
        StorageMode::Sparse => 1,
        StorageMode::Auto => 2,
    }
}

/// Encode a checkpoint in the default packed layout.
#[must_use]
pub fn encode_checkpoint(data: &CheckpointData) -> (Vec<u8>, CheckpointStats) {
    encode_checkpoint_with(data, Layout::Packed)
}

/// Encode a checkpoint in the given layout, returning the file bytes
/// plus size accounting.
#[must_use]
pub fn encode_checkpoint_with(data: &CheckpointData, layout: Layout) -> (Vec<u8>, CheckpointStats) {
    let g = &data.graph;
    let p = &data.run.partition;
    let n = g.num_nodes();
    let k = p.num_colors();

    // Scalar blob first: everything fixed-size, one block.
    let mut s = ScalarWriter::new();
    s.u64(n as u64);
    s.flag(g.is_directed());
    let c = &data.config;
    s.u64(c.max_colors as u64);
    s.f64(c.target_error);
    s.f64(c.alpha);
    s.f64(c.beta);
    s.u8(split_mean_tag(c.split_mean));
    s.opt_u64(c.max_iterations.map(|v| v as u64));
    s.opt_u64(c.threads.map(|v| v as u64));
    s.u64(c.batch as u64);
    s.flag(c.coarsen);
    s.flag(c.fast_math);
    s.u8(storage_tag(c.storage));
    s.u64(data.run.iterations as u64);
    s.u64(data.run.merges as u64);
    s.f64(data.run.last_max_error);
    s.flag(data.run.done);
    s.u64(k as u64);
    let eng = data.run.engine.as_ref();
    s.flag(eng.is_some());
    if let Some(e) = eng {
        s.u64(e.k as u64);
        s.flag(e.symmetric);
        s.flag(e.track_summaries);
        s.flag(e.sparse_accum);
        s.flag(e.promote);
        s.f64(e.last_beta);
    }
    s.flag(data.reduced.is_some());
    if let Some(r) = &data.reduced {
        s.u64(r.k as u64);
        s.flag(r.symmetric);
    }
    s.u64(data.wal_seq);
    if layout == Layout::MappedRaw {
        // v2 appends the edge count so a mapped reader can cross-check
        // the CSR it serves without re-deriving it eagerly.
        s.u64(g.num_edges() as u64);
    }

    let mut sink = BlockSink {
        out: Vec::new(),
        stats: CheckpointStats::default(),
        layout,
    };
    sink.push_block(BLK_SCALARS, ENC_RAW, s.buf.len(), &s.buf, s.buf.len());

    // Graph CSR (out direction only — symmetric in-arrays are its clone,
    // directed in-arrays a counting sort; both recomputed on load).
    let (offs, tgts, wts) = g.out_adjacency();
    sink.usizes(BLK_GRAPH_OFFSETS, offs);
    sink.u32s(BLK_GRAPH_TARGETS, tgts);
    sink.f64s(BLK_GRAPH_WEIGHTS, wts);

    // Partition member lists, columnar: class offsets + concatenated
    // members in stored (semantic) order.
    let mut part_offsets = Vec::with_capacity(k + 1);
    let mut part_members: Vec<u32> = Vec::with_capacity(n);
    part_offsets.push(0usize);
    for color in 0..k {
        part_members.extend_from_slice(p.members(color as u32));
        part_offsets.push(part_members.len());
    }
    sink.usizes(BLK_PART_OFFSETS, &part_offsets);
    sink.u32s(BLK_PART_MEMBERS, &part_members);

    if let Some(e) = eng {
        sink.f64s(BLK_ENG_DOUT, &e.dout);
        sink.f64s(BLK_ENG_DIN, &e.din);
        for (snap, ids) in [
            (
                &e.rows_out,
                [
                    BLK_ROWS_OUT_OFFSETS,
                    BLK_ROWS_OUT_COLORS,
                    BLK_ROWS_OUT_WEIGHTS,
                    BLK_ROWS_OUT_DENSE,
                ],
            ),
            (
                &e.rows_in,
                [
                    BLK_ROWS_IN_OFFSETS,
                    BLK_ROWS_IN_COLORS,
                    BLK_ROWS_IN_WEIGHTS,
                    BLK_ROWS_IN_DENSE,
                ],
            ),
        ] {
            sink.usizes(ids[0], &snap.offsets);
            sink.u32s(ids[1], &snap.colors);
            sink.f64s(ids[2], &snap.weights);
            sink.bools(ids[3], &snap.dense);
        }
        sink.f64s(BLK_OUT_MIN, &e.out_min);
        sink.f64s(BLK_OUT_MAX, &e.out_max);
        sink.f64s(BLK_IN_MIN, &e.in_min);
        sink.f64s(BLK_IN_MAX, &e.in_max);
        sink.u32s(BLK_OUT_MIN_ARG, &e.out_min_arg);
        sink.u32s(BLK_OUT_MAX_ARG, &e.out_max_arg);
        sink.u32s(BLK_IN_MIN_ARG, &e.in_min_arg);
        sink.u32s(BLK_IN_MAX_ARG, &e.in_max_arg);
        sink.u32s(BLK_OUT_NZ, &e.out_nz);
        sink.u32s(BLK_IN_NZ, &e.in_nz);
    }

    if let Some(r) = &data.reduced {
        sink.f64s(BLK_RED_SUM, &r.sum);
        sink.usizes(BLK_RED_SIZES, &r.sizes);
        sink.u32s(BLK_RED_DIRTY, &r.dirty);
    }

    // File = header (magic, version, block count, header CRC) + blocks.
    let version = match layout {
        Layout::Packed => CHECKPOINT_VERSION,
        Layout::MappedRaw => CHECKPOINT_VERSION_MAPPED,
    };
    let mut file = Vec::with_capacity(FILE_HEADER + sink.out.len());
    file.extend_from_slice(CHECKPOINT_MAGIC);
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&sink.stats.blocks.to_le_bytes());
    let hcrc = crc32(&file);
    file.extend_from_slice(&hcrc.to_le_bytes());
    file.extend_from_slice(&sink.out);
    let mut stats = sink.stats;
    stats.file_bytes = file.len() as u64;
    (file, stats)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct RawBlock<'a> {
    enc: u8,
    count: usize,
    payload: &'a [u8],
}

struct BlockMap<'a> {
    version: u32,
    blocks: Vec<(u16, RawBlock<'a>)>,
}

impl<'a> BlockMap<'a> {
    fn get(&self, id: u16) -> Result<&RawBlock<'a>, PersistError> {
        self.blocks
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, b)| b)
            .ok_or(PersistError::Corrupt {
                context: "checkpoint is missing a required block",
            })
    }
}

/// Column access the checkpoint assembler is generic over. The packed
/// path ([`BlockMap`]) decodes owned vectors from encoded payloads; the
/// mapped path ([`crate::MappedStore`]) serves raw-pinned columns as
/// borrowed slices straight out of a memory map. The `*_col` hooks are
/// where zero-copy plugs in — their defaults fall back to owned
/// decoding, so a source only overrides the columns it can actually
/// map.
pub(crate) trait ColumnSource {
    /// Format version the bytes declared (validated by the source).
    fn version(&self) -> u32;
    /// The raw scalar blob (block 0), already CRC-checked.
    fn scalar_payload(&self) -> Result<&[u8], PersistError>;
    fn u64s(&self, id: u16) -> Result<Vec<u64>, PersistError>;
    fn u32s(&self, id: u16) -> Result<Vec<u32>, PersistError>;
    fn f64s(&self, id: u16) -> Result<Vec<f64>, PersistError>;
    fn bools(&self, id: u16) -> Result<Vec<bool>, PersistError>;
    fn usizes(&self, id: u16) -> Result<Vec<usize>, PersistError> {
        self.u64s(id)?
            .into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| PersistError::Corrupt {
                    context: "offset column element overflows usize",
                })
            })
            .collect()
    }
    fn usize_col(&self, id: u16) -> Result<ColumnBuf<usize>, PersistError> {
        Ok(self.usizes(id)?.into())
    }
    fn u32_col(&self, id: u16) -> Result<ColumnBuf<NodeId>, PersistError> {
        Ok(self.u32s(id)?.into())
    }
    fn f64_col(&self, id: u16) -> Result<ColumnBuf<f64>, PersistError> {
        Ok(self.f64s(id)?.into())
    }
}

impl ColumnSource for BlockMap<'_> {
    fn version(&self) -> u32 {
        self.version
    }
    fn scalar_payload(&self) -> Result<&[u8], PersistError> {
        let b = self.get(BLK_SCALARS)?;
        if b.enc != ENC_RAW || b.count != b.payload.len() {
            return Err(PersistError::Corrupt {
                context: "scalar block has a non-raw encoding",
            });
        }
        Ok(b.payload)
    }
    fn u64s(&self, id: u16) -> Result<Vec<u64>, PersistError> {
        let b = self.get(id)?;
        decode_u64s(b.enc, b.payload, b.count)
    }
    fn u32s(&self, id: u16) -> Result<Vec<u32>, PersistError> {
        let b = self.get(id)?;
        decode_u32s(b.enc, b.payload, b.count)
    }
    fn f64s(&self, id: u16) -> Result<Vec<f64>, PersistError> {
        let b = self.get(id)?;
        decode_f64s(b.enc, b.payload, b.count)
    }
    fn bools(&self, id: u16) -> Result<Vec<bool>, PersistError> {
        let b = self.get(id)?;
        decode_bools(b.enc, b.payload, b.count)
    }
}

fn parse_blocks(bytes: &[u8]) -> Result<BlockMap<'_>, PersistError> {
    if bytes.len() < FILE_HEADER {
        return Err(PersistError::Truncated {
            context: "checkpoint shorter than its header",
        });
    }
    if &bytes[0..8] != CHECKPOINT_MAGIC {
        return Err(PersistError::BadMagic { kind: "checkpoint" });
    }
    let version = crate::le::le_u32(&bytes[8..12])?;
    if version != CHECKPOINT_VERSION && version != CHECKPOINT_VERSION_MAPPED {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: CHECKPOINT_VERSION_MAPPED,
        });
    }
    let block_count = crate::le::le_u32(&bytes[12..16])?;
    let hcrc = crate::le::le_u32(&bytes[16..20])?;
    if crc32(&bytes[0..16]) != hcrc {
        return Err(PersistError::CrcMismatch {
            context: "checkpoint header",
        });
    }
    let block_header = if version == CHECKPOINT_VERSION {
        BLOCK_HEADER_V1
    } else {
        BLOCK_HEADER_V2
    };
    let mut pos = FILE_HEADER;
    let mut blocks = Vec::with_capacity(block_count as usize);
    for _ in 0..block_count {
        let hdr = bytes
            .get(pos..pos + block_header)
            .ok_or(PersistError::Truncated {
                context: "checkpoint block header",
            })?;
        let id = crate::le::le_u16(&hdr[0..2])?;
        let enc = hdr[2];
        let count = usize::try_from(crate::le::le_u64(&hdr[4..12])?).map_err(|_| {
            PersistError::Corrupt {
                context: "block element count overflows usize",
            }
        })?;
        let len = usize::try_from(crate::le::le_u64(&hdr[12..20])?).map_err(|_| {
            PersistError::Corrupt {
                context: "block payload length overflows usize",
            }
        })?;
        let pcrc = crate::le::le_u32(&hdr[20..24])?;
        if version == CHECKPOINT_VERSION_MAPPED {
            // v2 headers guard themselves: the CRC covers id, enc,
            // count, length and the payload CRC, so no header flip can
            // misdirect the decoder (v1 leaves `enc` unguarded).
            let want = crate::le::le_u32(&hdr[24..28])?;
            if crc32(&hdr[..BLOCK_HEADER_V1]) != want {
                return Err(PersistError::CrcMismatch {
                    context: "checkpoint block header",
                });
            }
        }
        pos += block_header;
        let payload_at = pos;
        let payload = bytes.get(pos..pos + len).ok_or(PersistError::Truncated {
            context: "checkpoint block payload",
        })?;
        pos += len;
        if crc32(payload) != pcrc {
            return Err(PersistError::CrcMismatch {
                context: "checkpoint block payload",
            });
        }
        if version == CHECKPOINT_VERSION_MAPPED {
            if id == BLK_PAD {
                // Alignment filler: must be exactly its declared zero
                // bytes, and never looked up by id.
                if count != len || payload.iter().any(|&b| b != 0) {
                    return Err(PersistError::Corrupt {
                        context: "padding block holds nonzero bytes",
                    });
                }
                continue;
            }
            if let Some(width) = mappable_width(id) {
                if enc != ENC_RAW {
                    return Err(PersistError::Corrupt {
                        context: "mappable block is not raw-encoded in the mapped layout",
                    });
                }
                if count.checked_mul(width) != Some(len) {
                    return Err(PersistError::Corrupt {
                        context: "mappable block length disagrees with its element count",
                    });
                }
                if !payload_at.is_multiple_of(MAP_ALIGN) {
                    return Err(PersistError::Misaligned {
                        context: "mappable block payload is off its alignment boundary",
                    });
                }
            }
        }
        if blocks.iter().any(|(i, _)| *i == id) {
            return Err(PersistError::Corrupt {
                context: "duplicate block id in checkpoint",
            });
        }
        blocks.push((
            id,
            RawBlock {
                enc,
                count,
                payload,
            },
        ));
    }
    if pos != bytes.len() {
        return Err(PersistError::Corrupt {
            context: "checkpoint has trailing bytes after the last block",
        });
    }
    Ok(BlockMap { version, blocks })
}

fn check_offsets(
    offsets: &[usize],
    entries: usize,
    context: &'static str,
) -> Result<(), PersistError> {
    if offsets.first() != Some(&0) || offsets.last() != Some(&entries) {
        return Err(PersistError::Corrupt { context });
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PersistError::Corrupt { context });
    }
    Ok(())
}

fn decode_rows<S: ColumnSource>(
    src: &S,
    ids: [u16; 4],
    expect_rows: Option<usize>,
) -> Result<RowsSnapshot, PersistError> {
    let offsets = src.usizes(ids[0])?;
    let colors = src.u32s(ids[1])?;
    let weights = src.f64s(ids[2])?;
    let dense = src.bools(ids[3])?;
    match expect_rows {
        None => {
            if !offsets.is_empty() || !colors.is_empty() || !weights.is_empty() || !dense.is_empty()
            {
                return Err(PersistError::Corrupt {
                    context: "accumulator row columns present for a direction that has none",
                });
            }
        }
        Some(n) => {
            if offsets.len() != n + 1 || dense.len() != n {
                return Err(PersistError::Corrupt {
                    context: "accumulator row column count does not match node count",
                });
            }
            check_offsets(
                &offsets,
                colors.len(),
                "accumulator row offsets are not monotone",
            )?;
            if colors.len() != weights.len() {
                return Err(PersistError::Corrupt {
                    context: "accumulator row colors/weights lengths differ",
                });
            }
            // Entries must be sorted ascending (strictly) per row — the
            // tier contract — and index live colors only.
            for v in 0..n {
                let row = &colors[offsets[v]..offsets[v + 1]];
                if row.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(PersistError::Corrupt {
                        context: "accumulator row entries are not strictly ascending",
                    });
                }
            }
        }
    }
    Ok(RowsSnapshot {
        offsets,
        colors,
        weights,
        dense,
    })
}

fn check_matrix(
    vals_len: usize,
    expect: Option<usize>,
    context: &'static str,
) -> Result<(), PersistError> {
    let want = expect.unwrap_or(0);
    if vals_len != want {
        return Err(PersistError::Corrupt { context });
    }
    Ok(())
}

/// The engine presence scalars: enough to know which blocks must exist
/// and how long their columns have to be.
pub(crate) struct EngineScalars {
    pub k: usize,
    pub symmetric: bool,
    pub track_summaries: bool,
    pub sparse_accum: bool,
    pub promote: bool,
    pub last_beta: f64,
}

/// The reduced-instance presence scalars.
pub(crate) struct ReducedScalars {
    pub k: usize,
    pub symmetric: bool,
}

/// The decoded scalar blob (block 0): run config, counters, presence
/// flags and cross-check values — everything fixed-size. A mapped
/// store parses this once at open; full assembly reuses the same
/// parse.
pub(crate) struct ScalarState {
    pub n: usize,
    pub directed: bool,
    pub config: RothkoConfig,
    pub iterations: usize,
    pub merges: usize,
    pub last_max_error: f64,
    pub done: bool,
    pub k: usize,
    pub engine: Option<EngineScalars>,
    pub reduced: Option<ReducedScalars>,
    pub wal_seq: u64,
    /// v2 only: the writer's edge count, cross-checked against the CSR
    /// during assembly.
    pub num_edges: Option<u64>,
}

/// Parse the scalar blob for the given (already validated) format
/// version.
pub(crate) fn parse_scalars(version: u32, payload: &[u8]) -> Result<ScalarState, PersistError> {
    let mut s = ScalarReader::new(payload);
    let n = s.usize()?;
    let directed = s.flag()?;
    let config = RothkoConfig {
        max_colors: s.usize()?,
        target_error: s.f64()?,
        alpha: s.f64()?,
        beta: s.f64()?,
        split_mean: match s.u8()? {
            0 => SplitMean::Arithmetic,
            1 => SplitMean::Geometric,
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown split-mean tag",
                })
            }
        },
        initial: None,
        max_iterations: s.opt_u64()?.map(|v| v as usize),
        threads: s.opt_u64()?.map(|v| v as usize),
        batch: s.usize()?,
        coarsen: s.flag()?,
        fast_math: s.flag()?,
        storage: match s.u8()? {
            0 => StorageMode::Dense,
            1 => StorageMode::Sparse,
            2 => StorageMode::Auto,
            _ => {
                return Err(PersistError::Corrupt {
                    context: "unknown storage-mode tag",
                })
            }
        },
    };
    if config.batch == 0 {
        return Err(PersistError::Corrupt {
            context: "checkpoint config has batch size 0",
        });
    }
    let iterations = s.usize()?;
    let merges = s.usize()?;
    let last_max_error = s.f64()?;
    let done = s.flag()?;
    let k = s.usize()?;
    let engine = if s.flag()? {
        Some(EngineScalars {
            k: s.usize()?,
            symmetric: s.flag()?,
            track_summaries: s.flag()?,
            sparse_accum: s.flag()?,
            promote: s.flag()?,
            last_beta: s.f64()?,
        })
    } else {
        None
    };
    let reduced = if s.flag()? {
        Some(ReducedScalars {
            k: s.usize()?,
            symmetric: s.flag()?,
        })
    } else {
        None
    };
    let wal_seq = s.u64()?;
    let num_edges = if version == CHECKPOINT_VERSION_MAPPED {
        Some(s.u64()?)
    } else {
        None
    };
    s.finish()?;
    Ok(ScalarState {
        n,
        directed,
        config,
        iterations,
        merges,
        last_max_error,
        done,
        k,
        engine,
        reduced,
        wal_seq,
        num_edges,
    })
}

/// Assemble a fully validated [`CheckpointData`] from any column
/// source, checking every structural invariant with typed errors while
/// the data is still plain columns — the panicking constructors
/// downstream (`Partition::from_classes`, the `from_snapshot` family)
/// only ever see witnessed-consistent input.
pub(crate) fn assemble_checkpoint<S: ColumnSource>(
    src: &S,
) -> Result<CheckpointData, PersistError> {
    let sc = parse_scalars(src.version(), src.scalar_payload()?)?;
    let (n, k) = (sc.n, sc.k);

    // Graph: the columns flow into the typed-error CSR constructor,
    // which validates lengths, offset monotonicity, target range and
    // row order before any panicking code can see them. A mapped
    // source hands borrowed columns here, so the CSR sits on the page
    // cache instead of being copied out.
    let graph = Graph::from_mapped_columns(
        n,
        sc.directed,
        src.usize_col(BLK_GRAPH_OFFSETS)?,
        src.u32_col(BLK_GRAPH_TARGETS)?,
        src.f64_col(BLK_GRAPH_WEIGHTS)?,
    )
    .map_err(|_| PersistError::Corrupt {
        context: "graph CSR columns failed validation",
    })?;
    if let Some(m) = sc.num_edges {
        if graph.num_edges() as u64 != m {
            return Err(PersistError::Corrupt {
                context: "graph edge count disagrees with the scalar block",
            });
        }
    }

    // Partition.
    let part_offsets = src.usizes(BLK_PART_OFFSETS)?;
    let part_members = src.u32s(BLK_PART_MEMBERS)?;
    if part_offsets.len() != k + 1 {
        return Err(PersistError::Corrupt {
            context: "partition offsets length does not match color count",
        });
    }
    check_offsets(
        &part_offsets,
        part_members.len(),
        "partition offsets are not monotone",
    )?;
    if part_members.len() != n {
        return Err(PersistError::Corrupt {
            context: "partition member count does not match node count",
        });
    }
    let mut seen = vec![false; n];
    for &v in &part_members {
        let slot = seen.get_mut(v as usize).ok_or(PersistError::Corrupt {
            context: "partition member id out of range",
        })?;
        if *slot {
            return Err(PersistError::Corrupt {
                context: "partition member appears twice",
            });
        }
        *slot = true;
    }
    // n members, none twice, all in range => exact cover of 0..n.
    let classes: Vec<Vec<NodeId>> = (0..k)
        .map(|c| part_members[part_offsets[c]..part_offsets[c + 1]].to_vec())
        .collect();
    let partition = Partition::from_classes(n, classes);

    // Engine.
    let engine = if let Some(es) = &sc.engine {
        let EngineScalars {
            k: ek,
            symmetric,
            track_summaries,
            sparse_accum,
            promote,
            last_beta,
        } = *es;
        if ek != k {
            return Err(PersistError::Corrupt {
                context: "engine color count disagrees with partition",
            });
        }
        if symmetric == sc.directed {
            return Err(PersistError::Corrupt {
                context: "engine symmetry flag disagrees with graph direction",
            });
        }
        if promote != (track_summaries && sparse_accum) {
            return Err(PersistError::Corrupt {
                context: "engine promote flag inconsistent with its mode flags",
            });
        }
        // Accumulator planes: whole-axis columns a mapped source can
        // serve zero-copy (restore advises them sequential).
        let dout = src.f64_col(BLK_ENG_DOUT)?;
        let din = src.f64_col(BLK_ENG_DIN)?;
        let dense_expect = if sparse_accum { None } else { Some(n * k) };
        check_matrix(
            dout.len(),
            dense_expect,
            "dense accumulator length mismatch",
        )?;
        check_matrix(
            din.len(),
            if sparse_accum || symmetric {
                None
            } else {
                Some(n * k)
            },
            "dense in-accumulator length mismatch",
        )?;
        let rows_out = decode_rows(
            src,
            [
                BLK_ROWS_OUT_OFFSETS,
                BLK_ROWS_OUT_COLORS,
                BLK_ROWS_OUT_WEIGHTS,
                BLK_ROWS_OUT_DENSE,
            ],
            (sparse_accum && n > 0).then_some(n),
        )?;
        let rows_in = decode_rows(
            src,
            [
                BLK_ROWS_IN_OFFSETS,
                BLK_ROWS_IN_COLORS,
                BLK_ROWS_IN_WEIGHTS,
                BLK_ROWS_IN_DENSE,
            ],
            (sparse_accum && !symmetric && n > 0).then_some(n),
        )?;
        if sparse_accum {
            // Entry colors must index live colors (the split-correctness
            // writer invariant: columns >= k are zero, hence absent).
            if rows_out
                .colors
                .iter()
                .chain(rows_in.colors.iter())
                .any(|&c| c as usize >= k)
            {
                return Err(PersistError::Corrupt {
                    context: "accumulator row entry color out of range",
                });
            }
        }
        let mat_expect = if track_summaries { Some(k * k) } else { None };
        let in_mat_expect = if track_summaries && !symmetric {
            Some(k * k)
        } else {
            None
        };
        let out_min = src.f64s(BLK_OUT_MIN)?;
        let out_max = src.f64s(BLK_OUT_MAX)?;
        let in_min = src.f64s(BLK_IN_MIN)?;
        let in_max = src.f64s(BLK_IN_MAX)?;
        let out_min_arg = src.u32s(BLK_OUT_MIN_ARG)?;
        let out_max_arg = src.u32s(BLK_OUT_MAX_ARG)?;
        let in_min_arg = src.u32s(BLK_IN_MIN_ARG)?;
        let in_max_arg = src.u32s(BLK_IN_MAX_ARG)?;
        let out_nz = src.u32s(BLK_OUT_NZ)?;
        let in_nz = src.u32s(BLK_IN_NZ)?;
        for (vals, expect) in [
            (out_min.len(), mat_expect),
            (out_max.len(), mat_expect),
            (in_min.len(), in_mat_expect),
            (in_max.len(), in_mat_expect),
            (out_min_arg.len(), mat_expect),
            (out_max_arg.len(), mat_expect),
            (in_min_arg.len(), in_mat_expect),
            (in_max_arg.len(), in_mat_expect),
            (out_nz.len(), mat_expect),
            (in_nz.len(), in_mat_expect),
        ] {
            check_matrix(vals, expect, "pair-summary matrix length mismatch")?;
        }
        for &a in out_min_arg
            .iter()
            .chain(&out_max_arg)
            .chain(&in_min_arg)
            .chain(&in_max_arg)
        {
            if a != NO_ARG && a as usize >= n {
                return Err(PersistError::Corrupt {
                    context: "pair-summary witness id out of range",
                });
            }
        }
        Some(EngineSnapshot {
            n,
            k,
            symmetric,
            track_summaries,
            sparse_accum,
            promote,
            last_beta,
            dout,
            din,
            rows_out,
            rows_in,
            out_min,
            out_max,
            in_min,
            in_max,
            out_min_arg,
            out_max_arg,
            in_min_arg,
            in_max_arg,
            out_nz,
            in_nz,
        })
    } else {
        None
    };

    // Reduced instance.
    let reduced = if let Some(rs) = &sc.reduced {
        let (rk, rsym) = (rs.k, rs.symmetric);
        if rk != k {
            return Err(PersistError::Corrupt {
                context: "reduced color count disagrees with partition",
            });
        }
        let sum = src.f64s(BLK_RED_SUM)?;
        let sizes = src.usizes(BLK_RED_SIZES)?;
        let dirty = src.u32s(BLK_RED_DIRTY)?;
        if sum.len() != rk * rk || sizes.len() != rk {
            return Err(PersistError::Corrupt {
                context: "reduced matrix length mismatch",
            });
        }
        if dirty.iter().any(|&c| c as usize >= rk) {
            return Err(PersistError::Corrupt {
                context: "reduced dirty color out of range",
            });
        }
        let mut flagged = vec![false; rk];
        for &c in &dirty {
            if flagged[c as usize] {
                return Err(PersistError::Corrupt {
                    context: "reduced dirty color listed twice",
                });
            }
            flagged[c as usize] = true;
        }
        Some(ReducedSnapshot {
            k: rk,
            sum,
            sizes,
            symmetric: rsym,
            dirty,
        })
    } else {
        None
    };

    Ok(CheckpointData {
        graph,
        config: sc.config,
        run: RunSnapshot {
            partition,
            engine,
            iterations: sc.iterations,
            merges: sc.merges,
            last_max_error: sc.last_max_error,
            done: sc.done,
        },
        reduced,
        wal_seq: sc.wal_seq,
    })
}

/// Decode a checkpoint from bytes (either layout), validating every
/// structural invariant before touching a panicking constructor.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointData, PersistError> {
    let map = parse_blocks(bytes)?;
    assemble_checkpoint(&map)
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Write a checkpoint atomically: encode, write to a sibling temp file,
/// fsync it, rename over `path`, fsync the parent directory. A crash at
/// any point leaves either the old checkpoint or the new one, never a
/// torn file.
pub fn write_checkpoint_file(
    path: &Path,
    data: &CheckpointData,
) -> Result<CheckpointStats, PersistError> {
    write_checkpoint_file_with(path, data, Layout::Packed)
}

/// [`write_checkpoint_file`], with an explicit on-disk layout.
pub fn write_checkpoint_file_with(
    path: &Path,
    data: &CheckpointData,
    layout: Layout,
) -> Result<CheckpointStats, PersistError> {
    let (bytes, stats) = encode_checkpoint_with(data, layout);
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself. Directory fsync is best-effort on
        // platforms where opening a directory for write is not allowed.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(stats)
}

/// Read and fully validate a checkpoint file.
pub fn read_checkpoint_file(path: &Path) -> Result<CheckpointData, PersistError> {
    let bytes = fs::read(path)?;
    decode_checkpoint(&bytes)
}
