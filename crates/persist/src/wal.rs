//! The write-ahead log: a command log of the *input* batches fed to a
//! maintained run — edge-event batches, node-churn batches, maintain
//! calls — appended in application order and replayed through the same
//! public API after a restore.
//!
//! Logging inputs (not resulting state) keeps records tiny and leans on
//! the workspace determinism contract for correctness: replaying the
//! same batches through [`qsc_core::rothko::RothkoRun::apply_edge_batch`]
//! / `apply_node_batch` / `maintain` reproduces the writer's state bit
//! for bit (for exactly representable weights — reweights are
//! reconstructed as `old + delta`, which equals the writer's weight
//! exactly in that regime, the same caveat the engine's own contract
//! carries).
//!
//! ## On-disk layout
//!
//! The log is a directory of segments `wal-<first_seq>.seg`. Each
//! segment starts with a 24-byte header (magic, version, first sequence
//! number, CRC of those) followed by records:
//!
//! ```text
//!   [len: u32]  [crc: u32]  [seq: u64]  [type: u8]  [payload: len-9 bytes]
//! ```
//!
//! `len` counts everything after `crc`; `crc` guards exactly those
//! bytes. Sequence numbers are global (they continue across segments),
//! start at 1, and must be contiguous — a gap means a lost segment and
//! fails recovery with [`PersistError::SequenceGap`].
//!
//! ## Torn tails
//!
//! Appends are buffered and fsynced in batches ([`WalWriter::sync`] and
//! a byte-count auto-sync), so a crash can leave a partial record at the
//! end of the *last* segment. Recovery handles this the standard way: it
//! scans records until the first one that fails to parse or checksum;
//! in the last segment that tail is dropped cleanly
//! (recover-to-last-complete-batch), in any earlier segment the same
//! condition is a hard [`PersistError`] — a non-last segment was sealed
//! by rotation and must be intact. The flip side (shared with every
//! scan-forward WAL): bytes after a damaged record in the last segment
//! are unreachable, so a mid-segment bit flip there reads as a shorter
//! log, not an error.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use qsc_graph::delta::EdgeEvent;

use crate::codec::{crc32, get_varint, put_varint, unzigzag, zigzag};
use crate::error::PersistError;

/// WAL segment magic.
pub const WAL_MAGIC: &[u8; 8] = b"QSC_WAL\0";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

const REC_EDGE_BATCH: u8 = 1;
const REC_NODE_BATCH: u8 = 2;
const REC_MAINTAIN: u8 = 3;

/// One logged command, in the order the writer applied it.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An edge batch: the events passed to `RothkoRun::apply_edge_batch`.
    EdgeBatch(Vec<EdgeEvent>),
    /// A node-churn batch: the inputs that rebuild a
    /// `qsc_core::rothko::NodeChurnBatch` (the remap is recomputed by
    /// replaying the same mutations — it is a pure function of them).
    NodeBatch {
        /// Colors joined by the appended nodes, in insertion order.
        inserted_colors: Vec<u32>,
        /// The batch's edge events over the grown pre-compaction id space.
        edge_events: Vec<EdgeEvent>,
        /// Removed nodes (pre-compaction ids), in removal order.
        removed: Vec<u32>,
    },
    /// A `RothkoRun::maintain` call.
    Maintain,
}

fn encode_edge_events(out: &mut Vec<u8>, events: &[EdgeEvent]) {
    put_varint(out, events.len() as u64);
    let mut prev = 0i64;
    for e in events {
        put_varint(out, zigzag(i64::from(e.source) - prev));
        prev = i64::from(e.source);
    }
    let mut prev = 0i64;
    for e in events {
        put_varint(out, zigzag(i64::from(e.target) - prev));
        prev = i64::from(e.target);
    }
    for e in events {
        out.extend_from_slice(&e.delta.to_bits().to_le_bytes());
    }
}

fn decode_edge_events(buf: &[u8], pos: &mut usize) -> Result<Vec<EdgeEvent>, PersistError> {
    let count = usize::try_from(get_varint(buf, pos)?).map_err(|_| PersistError::Corrupt {
        context: "edge event count overflows usize",
    })?;
    // Cheap sanity bound before allocating: every event needs >= 10 bytes.
    if count > buf.len().saturating_sub(*pos) / 10 + 1 {
        return Err(PersistError::Corrupt {
            context: "edge event count exceeds record size",
        });
    }
    let decode_ids = |pos: &mut usize| -> Result<Vec<u32>, PersistError> {
        let mut ids = Vec::with_capacity(count);
        let mut prev = 0i64;
        for _ in 0..count {
            prev += unzigzag(get_varint(buf, pos)?);
            ids.push(u32::try_from(prev).map_err(|_| PersistError::Corrupt {
                context: "edge event node id out of range",
            })?);
        }
        Ok(ids)
    };
    let sources = decode_ids(pos)?;
    let targets = decode_ids(pos)?;
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        let raw = buf.get(*pos..*pos + 8).ok_or(PersistError::Truncated {
            context: "edge event delta missing",
        })?;
        *pos += 8;
        events.push(EdgeEvent {
            source: sources[i],
            target: targets[i],
            delta: crate::le::le_f64(raw)?,
        });
    }
    Ok(events)
}

fn encode_record(rec: &WalRecord) -> (u8, Vec<u8>) {
    let mut payload = Vec::new();
    match rec {
        WalRecord::EdgeBatch(events) => {
            encode_edge_events(&mut payload, events);
            (REC_EDGE_BATCH, payload)
        }
        WalRecord::NodeBatch {
            inserted_colors,
            edge_events,
            removed,
        } => {
            put_varint(&mut payload, inserted_colors.len() as u64);
            for &c in inserted_colors {
                put_varint(&mut payload, u64::from(c));
            }
            put_varint(&mut payload, removed.len() as u64);
            let mut prev = 0i64;
            for &v in removed {
                put_varint(&mut payload, zigzag(i64::from(v) - prev));
                prev = i64::from(v);
            }
            encode_edge_events(&mut payload, edge_events);
            (REC_NODE_BATCH, payload)
        }
        WalRecord::Maintain => (REC_MAINTAIN, payload),
    }
}

fn decode_record(kind: u8, payload: &[u8]) -> Result<WalRecord, PersistError> {
    let mut pos = 0;
    let rec = match kind {
        REC_EDGE_BATCH => WalRecord::EdgeBatch(decode_edge_events(payload, &mut pos)?),
        REC_NODE_BATCH => {
            let n_ins = usize::try_from(get_varint(payload, &mut pos)?).map_err(|_| {
                PersistError::Corrupt {
                    context: "inserted-node count overflows usize",
                }
            })?;
            if n_ins > payload.len().saturating_sub(pos) + 1 {
                return Err(PersistError::Corrupt {
                    context: "inserted-node count exceeds record size",
                });
            }
            let mut inserted_colors = Vec::with_capacity(n_ins);
            for _ in 0..n_ins {
                inserted_colors.push(u32::try_from(get_varint(payload, &mut pos)?).map_err(
                    |_| PersistError::Corrupt {
                        context: "inserted color out of range",
                    },
                )?);
            }
            let n_rem = usize::try_from(get_varint(payload, &mut pos)?).map_err(|_| {
                PersistError::Corrupt {
                    context: "removed-node count overflows usize",
                }
            })?;
            if n_rem > payload.len().saturating_sub(pos) + 1 {
                return Err(PersistError::Corrupt {
                    context: "removed-node count exceeds record size",
                });
            }
            let mut removed = Vec::with_capacity(n_rem);
            let mut prev = 0i64;
            for _ in 0..n_rem {
                prev += unzigzag(get_varint(payload, &mut pos)?);
                removed.push(u32::try_from(prev).map_err(|_| PersistError::Corrupt {
                    context: "removed node id out of range",
                })?);
            }
            let edge_events = decode_edge_events(payload, &mut pos)?;
            WalRecord::NodeBatch {
                inserted_colors,
                edge_events,
                removed,
            }
        }
        REC_MAINTAIN => WalRecord::Maintain,
        _ => {
            return Err(PersistError::Corrupt {
                context: "unknown WAL record type",
            })
        }
    };
    if pos != payload.len() {
        return Err(PersistError::Corrupt {
            context: "WAL record has trailing bytes",
        });
    }
    Ok(rec)
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:020}.seg"))
}

/// List segment files in `dir`, sorted by their first sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
        {
            if let Ok(first_seq) = num.parse::<u64>() {
                segs.push((first_seq, entry.path()));
            }
        }
    }
    segs.sort_unstable_by_key(|&(s, _)| s);
    Ok(segs)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appender with batched fsync and size-based segment rotation.
pub struct WalWriter {
    dir: PathBuf,
    file: fs::File,
    next_seq: u64,
    segment_bytes: u64,
    written_in_segment: u64,
    unsynced: bool,
    /// Auto-fsync after this many buffered bytes (fsync batching; 0
    /// fsyncs every append).
    sync_every_bytes: u64,
    unsynced_bytes: u64,
}

impl WalWriter {
    /// Open a fresh segment in `dir` whose first record will carry
    /// sequence number `next_seq`.
    pub fn create(
        dir: &Path,
        next_seq: u64,
        segment_bytes: u64,
        sync_every_bytes: u64,
    ) -> Result<Self, PersistError> {
        let file = Self::new_segment(dir, next_seq)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            next_seq,
            segment_bytes: segment_bytes.max(64),
            written_in_segment: 0,
            unsynced: false,
            sync_every_bytes,
            unsynced_bytes: 0,
        })
    }

    fn new_segment(dir: &Path, first_seq: u64) -> Result<fs::File, PersistError> {
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&first_seq.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        let mut file = fs::File::create(segment_path(dir, first_seq))?;
        file.write_all(&header)?;
        Ok(file)
    }

    /// Sequence number of the most recently appended record (0 before
    /// the first append).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Append one record, returning its sequence number. The bytes are
    /// written immediately but only fsynced per the batching policy —
    /// call [`Self::sync`] for a durability point.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, PersistError> {
        if self.written_in_segment >= self.segment_bytes {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let (kind, payload) = encode_record(rec);
        let mut body = Vec::with_capacity(9 + payload.len());
        body.extend_from_slice(&seq.to_le_bytes());
        body.push(kind);
        body.extend_from_slice(&payload);
        let mut frame = Vec::with_capacity(8 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        self.written_in_segment += frame.len() as u64;
        self.unsynced = true;
        self.unsynced_bytes += frame.len() as u64;
        if self.unsynced_bytes >= self.sync_every_bytes {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Flush and fsync everything appended so far.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if self.unsynced {
            self.file.sync_all()?;
            self.unsynced = false;
            self.unsynced_bytes = 0;
        }
        Ok(())
    }

    /// Seal the current segment (fsync) and start a new one. The new
    /// segment's name carries the next sequence number.
    pub fn rotate(&mut self) -> Result<(), PersistError> {
        self.sync()?;
        self.file = Self::new_segment(&self.dir, self.next_seq)?;
        self.written_in_segment = 0;
        Ok(())
    }

    /// Delete every segment that holds only records with
    /// `seq <= covered_seq` (checkpoint-triggered truncation). The
    /// current (open) segment is never deleted.
    pub fn truncate_covered(&mut self, covered_seq: u64) -> Result<(), PersistError> {
        let segs = list_segments(&self.dir)?;
        for (i, (first_seq, path)) in segs.iter().enumerate() {
            // A segment's records are covered iff the *next* segment
            // starts at or below covered_seq + 1 (its records all have
            // seq < next segment's first). The open segment stays.
            let next_first = segs.get(i + 1).map(|&(s, _)| s);
            match next_first {
                Some(next) if next <= covered_seq + 1 && *first_seq < next => {
                    fs::remove_file(path)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Scan every segment in `dir` and return the records with
/// `seq > after_seq`, in order, validating CRCs and sequence continuity.
/// A torn tail in the last segment is dropped cleanly; damage anywhere
/// else is a typed error (see the module docs).
pub fn read_wal(dir: &Path, after_seq: u64) -> Result<Vec<(u64, WalRecord)>, PersistError> {
    let segs = list_segments(dir)?;
    let mut out = Vec::new();
    let mut expected_next: Option<u64> = None;
    for (i, (first_seq, path)) in segs.iter().enumerate() {
        let last = i + 1 == segs.len();
        let bytes = fs::read(path)?;
        if bytes.len() < 24 {
            if last {
                // A segment torn before its header finished: nothing in
                // it was ever acknowledged; drop it.
                break;
            }
            return Err(PersistError::Truncated {
                context: "WAL segment shorter than its header",
            });
        }
        if &bytes[0..8] != WAL_MAGIC {
            return Err(PersistError::BadMagic {
                kind: "WAL segment",
            });
        }
        let version = crate::le::le_u32(&bytes[8..12])?;
        if version != WAL_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: WAL_VERSION,
            });
        }
        let header_seq = crate::le::le_u64(&bytes[12..20])?;
        let hcrc = crate::le::le_u32(&bytes[20..24])?;
        if crc32(&bytes[0..20]) != hcrc {
            return Err(PersistError::CrcMismatch {
                context: "WAL segment header",
            });
        }
        if header_seq != *first_seq {
            return Err(PersistError::Corrupt {
                context: "WAL segment name disagrees with its header",
            });
        }
        if let Some(expected) = expected_next {
            if *first_seq != expected {
                return Err(PersistError::SequenceGap {
                    expected,
                    found: *first_seq,
                });
            }
        }
        let mut next_seq = *first_seq;
        let mut pos = 24usize;
        loop {
            if pos == bytes.len() {
                break;
            }
            let parsed = parse_one_record(&bytes, pos);
            match parsed {
                Ok((seq, rec, new_pos)) => {
                    if seq != next_seq {
                        return Err(PersistError::SequenceGap {
                            expected: next_seq,
                            found: seq,
                        });
                    }
                    next_seq += 1;
                    pos = new_pos;
                    if seq > after_seq {
                        out.push((seq, rec));
                    }
                }
                Err(e) => {
                    if last {
                        // Torn tail: unacknowledged bytes; recover to
                        // the last complete record.
                        break;
                    }
                    return Err(e);
                }
            }
        }
        expected_next = Some(next_seq);
    }
    Ok(out)
}

fn parse_one_record(bytes: &[u8], pos: usize) -> Result<(u64, WalRecord, usize), PersistError> {
    let frame = bytes.get(pos..pos + 8).ok_or(PersistError::Truncated {
        context: "WAL record frame header",
    })?;
    let len = crate::le::le_u32(&frame[0..4])? as usize;
    let crc = crate::le::le_u32(&frame[4..8])?;
    if len < 9 {
        return Err(PersistError::Corrupt {
            context: "WAL record shorter than its fixed fields",
        });
    }
    let body = bytes
        .get(pos + 8..pos + 8 + len)
        .ok_or(PersistError::Truncated {
            context: "WAL record body",
        })?;
    if crc32(body) != crc {
        return Err(PersistError::CrcMismatch {
            context: "WAL record",
        });
    }
    let seq = crate::le::le_u64(&body[0..8])?;
    let kind = body[8];
    let rec = decode_record(kind, &body[9..])?;
    Ok((seq, rec, pos + 8 + len))
}

/// Last sequence number present in `dir`'s WAL (0 when empty),
/// tolerating a torn tail in the last segment. Used to reopen a store
/// for appending.
pub fn last_wal_seq(dir: &Path) -> Result<u64, PersistError> {
    let segs = list_segments(dir)?;
    let Some((first_seq, path)) = segs.last() else {
        return Ok(0);
    };
    let bytes = fs::read(path)?;
    let mut last = first_seq.saturating_sub(1);
    if bytes.len() < 24 {
        // Torn before the header: the segment holds nothing.
        return Ok(last);
    }
    let mut pos = 24usize;
    while pos < bytes.len() {
        match parse_one_record(&bytes, pos) {
            Ok((seq, _, new_pos)) => {
                last = seq;
                pos = new_pos;
            }
            Err(_) => break,
        }
    }
    Ok(last)
}
