//! Columnar checkpoints + WAL replay for the incremental engine: warm
//! restarts that restore `RothkoRun` / `ReducedDelta` state bit-identical
//! to the writer, instead of recomputing it from scratch.
//!
//! Two artifacts live in a store directory (see [`store::Store`]):
//! a **checkpoint** (full columnar snapshot of the stack) and a **WAL**
//! (the input batches logged since that snapshot). Recovery loads the
//! checkpoint columns straight into engine state and replays the WAL
//! tail through the public API.
//!
//! # Checkpoint format (`CHECKPOINT`, versions 1 and 2)
//!
//! All integers little-endian. The file is a 20-byte header followed by
//! `block_count` self-describing blocks:
//!
//! ```text
//! header:  magic  b"QSC_CKPT"            8 bytes
//!          version u32                   4 bytes   (1 = packed, 2 = mapped)
//!          block_count u32               4 bytes
//!          crc32 over the 16 bytes above 4 bytes
//! block:   id u16 | enc u8 | reserved u8 (= 0)
//!          count u64                     logical element count
//!          payload_len u64               encoded payload bytes
//!          crc32 u32                     over the payload
//!          crc32 u32                     over the 24 header bytes above (v2 only)
//!          payload                       payload_len bytes
//! ```
//!
//! Block ids are assigned once per version and **never reused**:
//!
//! | id    | column                                   | element |
//! |-------|------------------------------------------|---------|
//! | 0     | scalars (header blob, see below)         | bytes   |
//! | 1–3   | graph CSR: out offsets / targets / weights | u64 / u32 / f64 |
//! | 4–5   | partition: member offsets / member lists | u64 / u32 |
//! | 6–7   | engine accumulators: dout / din          | f64     |
//! | 8–11  | sparse rows out: offsets / colors / weights / dense flags | u64 / u32 / f64 / bool |
//! | 12–15 | sparse rows in: same four columns        |         |
//! | 16–19 | summaries: out\_min / out\_max / in\_min / in\_max | f64 |
//! | 20–23 | witness args for the four summaries      | u32     |
//! | 24–25 | nonzero counts: out / in                 | u32     |
//! | 26–28 | reduced instance: sums / sizes / dirty queue | f64 / u64 / u32 |
//!
//! The scalar blob (block 0) packs dimensions, the full `RothkoConfig`
//! (minus the non-persistable `initial` partition), run counters, engine
//! mode flags, and the WAL coverage sequence, each as varints / raw f64
//! bits in a fixed order. Blocks for absent state (no engine, dense
//! storage, symmetric graphs) are simply omitted; presence flags in the
//! scalar blob say which to expect.
//!
//! # Column encodings
//!
//! Each block's `enc` byte names how its payload was encoded. Encoders
//! pick whichever applicable scheme is smallest for that column:
//!
//! * **raw (0)** — native little-endian bytes.
//! * **varint (1)** — LEB128, 7 bits per byte. Small magnitudes (sizes,
//!   counts) shrink to 1–2 bytes.
//! * **delta (2)** — consecutive differences, zigzag-mapped to unsigned,
//!   then varint. Sorted columns (CSR offsets, member offsets) become
//!   streams of tiny gaps.
//! * **shuffle (3)** — f64 columns split into 8 byte planes (all byte 0s,
//!   then all byte 1s, …) and run/literal RLE-compressed per plane.
//!   Uniform weights and repeated exponents collapse to runs.
//! * **bitmap (4)** — bools packed LSB-first, 8 per byte.
//!
//! Floats round-trip through `to_bits`, so `-0.0`, infinities and NaN
//! payloads survive exactly; restored state is bit-identical.
//!
//! # Mapped layout (version 2)
//!
//! Version 2 ([`checkpoint::Layout::MappedRaw`]) holds the same blocks
//! with three changes, so a reader can serve the large columns straight
//! out of a memory map ([`MappedStore`]):
//!
//! * **Raw pinning.** The *mappable* columns — graph CSR (ids 1–3),
//!   partition (4–5), accumulator planes (6–7), reduced sums (26) — are
//!   always stored as `enc = 0` (raw little-endian), never compressed,
//!   so their payload bytes *are* the in-memory representation
//!   (`u64`-widened offsets, `u32` ids, `f64` bit images). Small or
//!   irregular columns keep size-first encoding selection.
//! * **Alignment.** Every mappable payload starts at a file offset that
//!   is a multiple of 64. The writer inserts explicit padding blocks
//!   (id `0xFFFF`, `count == payload_len` zero bytes) to get there;
//!   readers verify the zeros and skip them.
//! * **Guarded headers.** Each v2 block header ends with a CRC over its
//!   own first 24 bytes, so no single header flip (id, enc, count,
//!   length, or the payload CRC itself) can misdirect a decoder —
//!   version 1 leaves the `enc` byte unguarded and relies on the
//!   payload CRC alone.
//!
//! The v2 scalar blob additionally appends the graph's edge count
//! (u64) after `wal_seq`, cross-checked against the served CSR during
//! full assembly. Payload CRCs still guard every block; a
//! [`MappedStore`] verifies each one **lazily on the block's first
//! touch** (headers and scalars eagerly at open), which keeps
//! open-to-first-query cost proportional to the columns actually
//! touched instead of the file size.
//!
//! # WAL format (`wal-<first_seq>.seg`, version 1)
//!
//! A segment is a 24-byte header (`b"QSC_WAL\0"`, version u32, first
//! sequence u64, crc32) followed by length-prefixed records:
//! `len u32 | crc32 u32 | seq u64 | type u8 | payload`. Records are
//! **inputs** — edge batches, node-churn batches, maintain markers —
//! replayed through the same public calls the writer made. Sequence
//! numbers are global and contiguous across segments; an unparseable
//! tail in the *last* segment is dropped cleanly (a torn write), while
//! damage in a sealed segment is a hard error. See [`wal`] for details.
//!
//! # Versioning policy
//!
//! Readers accept exactly the versions they know (currently: 1, 2) and
//! reject anything else with [`PersistError::UnsupportedVersion`] — no
//! silent best-effort parsing of future formats. Format evolution adds
//! new block ids / record types under a bumped version number; existing
//! ids keep their meaning forever and are never reassigned. Unknown
//! block ids under a known version are an error, not ignorable padding:
//! version 1 files contain exactly the blocks documented here.
//!
//! # Corruption handling
//!
//! Every failure mode maps to a typed [`PersistError`]; decoding never
//! panics on hostile bytes. Structural validation (offset monotonicity,
//! id ranges, partition coverage, flag consistency) runs before any
//! state constructor with invariants is called, so a CRC-valid but
//! semantically poisoned file is caught as [`PersistError::Corrupt`].

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod codec;
pub mod error;
mod le;
pub mod mapped;
pub mod store;
pub mod wal;

pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, encode_checkpoint_with, read_checkpoint_file,
    write_checkpoint_file, write_checkpoint_file_with, CheckpointData, CheckpointStats, Layout,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION, CHECKPOINT_VERSION_MAPPED,
};
pub use error::PersistError;
pub use mapped::MappedStore;
pub use store::{Recovered, Store, StoreOptions, CHECKPOINT_FILE};
pub use wal::{last_wal_seq, read_wal, WalRecord, WalWriter, WAL_MAGIC, WAL_VERSION};
