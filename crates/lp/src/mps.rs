//! Minimal MPS reader/writer.
//!
//! The Mittelmann benchmark LPs used by the paper are distributed as MPS
//! files. This module supports the common subset needed to load such files
//! into the canonical `max cᵀx, Ax ≤ b, x ≥ 0` form:
//!
//! * Sections: `NAME`, `ROWS` (`N`, `L`, `G`, `E`), `COLUMNS`, `RHS`,
//!   `ENDATA`. `BOUNDS` other than the default `x ≥ 0` and `RANGES` are not
//!   supported and produce an error.
//! * By MPS convention the objective is *minimized*; [`read_mps`] returns
//!   the minimization sense so callers can negate if they want the canonical
//!   maximization form (see [`MpsProblem::into_max_problem`]).
//! * `G` rows (`≥`) are negated into `≤` rows; `E` rows become a pair of
//!   inequalities.

use crate::problem::LpProblem;
use qsc_linalg::SparseMatrix;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from MPS parsing.
#[derive(Debug)]
pub enum MpsError {
    /// Malformed content.
    Parse { line: usize, message: String },
    /// Feature outside the supported subset.
    Unsupported { line: usize, feature: String },
    /// IO error.
    Io(std::io::Error),
}

impl std::fmt::Display for MpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpsError::Parse { line, message } => {
                write!(f, "MPS parse error on line {line}: {message}")
            }
            MpsError::Unsupported { line, feature } => {
                write!(f, "unsupported MPS feature on line {line}: {feature}")
            }
            MpsError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for MpsError {}

impl From<std::io::Error> for MpsError {
    fn from(e: std::io::Error) -> Self {
        MpsError::Io(e)
    }
}

/// Optimization sense of an MPS file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (the MPS default).
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// A parsed MPS problem, kept in `A x ≤ b, x ≥ 0` form with an explicit
/// optimization sense for the objective.
#[derive(Clone, Debug)]
pub struct MpsProblem {
    /// Problem name (from the `NAME` record).
    pub name: String,
    /// Sense of the objective.
    pub sense: Sense,
    /// Constraints and objective, already in `≤` form.
    pub problem: LpProblem,
}

impl MpsProblem {
    /// Convert to the canonical maximization problem (negating the objective
    /// if the MPS sense was minimization). The optimal value of the returned
    /// problem is the negation of the MPS optimum in that case.
    pub fn into_max_problem(self) -> LpProblem {
        match self.sense {
            Sense::Maximize => self.problem,
            Sense::Minimize => {
                let c: Vec<f64> = self.problem.c.iter().map(|&v| -v).collect();
                LpProblem::new(self.problem.name, self.problem.a, self.problem.b, c)
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RowKind {
    Objective,
    Less,
    Greater,
    Equal,
}

/// Read an MPS file from a reader.
pub fn read_mps<R: Read>(reader: R) -> Result<MpsProblem, MpsError> {
    let reader = BufReader::new(reader);
    let mut name = String::from("mps");
    let mut section = String::new();
    let mut row_kinds: Vec<RowKind> = Vec::new();
    let mut row_names: HashMap<String, usize> = HashMap::new();
    let mut objective_row: Option<usize> = None;
    let mut col_names: HashMap<String, usize> = HashMap::new();
    // entries[(row, col)] = value, col indexed into col_names.
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() || line.starts_with('*') {
            continue;
        }
        let is_header = !line.starts_with(' ') && !line.starts_with('\t');
        let fields: Vec<&str> = line.split_whitespace().collect();
        if is_header {
            let keyword = fields[0].to_uppercase();
            match keyword.as_str() {
                "NAME" => {
                    if fields.len() > 1 {
                        name = fields[1].to_string();
                    }
                    continue;
                }
                "ROWS" | "COLUMNS" | "RHS" | "ENDATA" | "OBJSENSE" => {
                    section = keyword;
                    continue;
                }
                "BOUNDS" | "RANGES" => {
                    section = keyword.clone();
                    continue;
                }
                other => {
                    return Err(MpsError::Unsupported {
                        line: lineno + 1,
                        feature: other.to_string(),
                    })
                }
            }
        }
        match section.as_str() {
            "ROWS" => {
                if fields.len() < 2 {
                    return Err(MpsError::Parse {
                        line: lineno + 1,
                        message: "short ROWS record".into(),
                    });
                }
                let kind = match fields[0].to_uppercase().as_str() {
                    "N" => RowKind::Objective,
                    "L" => RowKind::Less,
                    "G" => RowKind::Greater,
                    "E" => RowKind::Equal,
                    other => {
                        return Err(MpsError::Parse {
                            line: lineno + 1,
                            message: format!("unknown row type {other}"),
                        })
                    }
                };
                let idx = row_kinds.len();
                row_kinds.push(kind);
                row_names.insert(fields[1].to_string(), idx);
                if kind == RowKind::Objective && objective_row.is_none() {
                    objective_row = Some(idx);
                }
            }
            "COLUMNS" => {
                if fields.len() < 3 {
                    return Err(MpsError::Parse {
                        line: lineno + 1,
                        message: "short COLUMNS record".into(),
                    });
                }
                if fields[1].to_uppercase() == "'MARKER'" || fields.contains(&"'MARKER'") {
                    return Err(MpsError::Unsupported {
                        line: lineno + 1,
                        feature: "integer markers".into(),
                    });
                }
                let next_col = col_names.len();
                let col = *col_names.entry(fields[0].to_string()).or_insert(next_col);
                let mut i = 1;
                while i + 1 < fields.len() {
                    let row_name = fields[i];
                    let value: f64 = fields[i + 1].parse().map_err(|_| MpsError::Parse {
                        line: lineno + 1,
                        message: format!("bad value {}", fields[i + 1]),
                    })?;
                    let row = *row_names.get(row_name).ok_or_else(|| MpsError::Parse {
                        line: lineno + 1,
                        message: format!("unknown row {row_name}"),
                    })?;
                    entries.push((row, col, value));
                    i += 2;
                }
            }
            "RHS" => {
                if fields.len() < 3 {
                    return Err(MpsError::Parse {
                        line: lineno + 1,
                        message: "short RHS record".into(),
                    });
                }
                let mut i = 1;
                while i + 1 < fields.len() {
                    let row_name = fields[i];
                    let value: f64 = fields[i + 1].parse().map_err(|_| MpsError::Parse {
                        line: lineno + 1,
                        message: format!("bad rhs {}", fields[i + 1]),
                    })?;
                    let row = *row_names.get(row_name).ok_or_else(|| MpsError::Parse {
                        line: lineno + 1,
                        message: format!("unknown row {row_name}"),
                    })?;
                    rhs.insert(row, value);
                    i += 2;
                }
            }
            "BOUNDS" => {
                return Err(MpsError::Unsupported {
                    line: lineno + 1,
                    feature: "BOUNDS".into(),
                });
            }
            "RANGES" => {
                return Err(MpsError::Unsupported {
                    line: lineno + 1,
                    feature: "RANGES".into(),
                });
            }
            "OBJSENSE" => {
                // handled below via keyword on its own data line
                if fields[0].to_uppercase().contains("MAX") {
                    // flagged via name hack below
                    name.push_str("|MAXIMIZE");
                }
            }
            _ => {
                return Err(MpsError::Parse {
                    line: lineno + 1,
                    message: format!("data outside a known section: {line}"),
                })
            }
        }
    }

    let obj_row = objective_row.ok_or(MpsError::Parse {
        line: 0,
        message: "no objective (N) row".into(),
    })?;
    let n = col_names.len();

    // Assemble constraint rows in ≤ form.
    let mut out_rows: Vec<Vec<(u32, f64)>> = Vec::new();
    let mut out_b: Vec<f64> = Vec::new();
    // Map original row -> list of (output row, multiplier).
    let mut row_map: Vec<Vec<(usize, f64)>> = vec![Vec::new(); row_kinds.len()];
    for (ri, kind) in row_kinds.iter().enumerate() {
        let bi = rhs.get(&ri).copied().unwrap_or(0.0);
        match kind {
            RowKind::Objective => {}
            RowKind::Less => {
                row_map[ri].push((out_rows.len(), 1.0));
                out_rows.push(Vec::new());
                out_b.push(bi);
            }
            RowKind::Greater => {
                row_map[ri].push((out_rows.len(), -1.0));
                out_rows.push(Vec::new());
                out_b.push(-bi);
            }
            RowKind::Equal => {
                row_map[ri].push((out_rows.len(), 1.0));
                out_rows.push(Vec::new());
                out_b.push(bi);
                row_map[ri].push((out_rows.len(), -1.0));
                out_rows.push(Vec::new());
                out_b.push(-bi);
            }
        }
    }
    let mut c = vec![0.0; n];
    for (row, col, value) in entries {
        if row == obj_row {
            c[col] = value;
        } else {
            for &(out_row, mult) in &row_map[row] {
                out_rows[out_row].push((col as u32, mult * value));
            }
        }
    }
    let m = out_rows.len();
    let mut triplets = Vec::new();
    for (i, row) in out_rows.into_iter().enumerate() {
        for (j, v) in row {
            triplets.push((i as u32, j, v));
        }
    }
    let sense = if name.ends_with("|MAXIMIZE") {
        name.truncate(name.len() - "|MAXIMIZE".len());
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    Ok(MpsProblem {
        name: name.clone(),
        sense,
        problem: LpProblem::new(name, SparseMatrix::from_triplets(m, n, &triplets), out_b, c),
    })
}

/// Write a problem (interpreted as `max cᵀx, Ax ≤ b, x ≥ 0`) as an MPS file
/// with an `OBJSENSE MAXIMIZE` marker.
pub fn write_mps<W: Write>(problem: &LpProblem, mut writer: W) -> Result<(), MpsError> {
    writeln!(writer, "NAME {}", problem.name)?;
    writeln!(writer, "OBJSENSE")?;
    writeln!(writer, "    MAXIMIZE")?;
    writeln!(writer, "ROWS")?;
    writeln!(writer, " N  COST")?;
    for i in 0..problem.num_rows() {
        writeln!(writer, " L  R{i}")?;
    }
    writeln!(writer, "COLUMNS")?;
    for j in 0..problem.num_cols() {
        if problem.c[j] != 0.0 {
            writeln!(writer, "    X{j}  COST  {}", problem.c[j])?;
        }
        for i in 0..problem.num_rows() {
            let v = problem.a.get(i, j);
            if v != 0.0 {
                writeln!(writer, "    X{j}  R{i}  {v}")?;
            }
        }
    }
    writeln!(writer, "RHS")?;
    for i in 0..problem.num_rows() {
        if problem.b[i] != 0.0 {
            writeln!(writer, "    RHS  R{i}  {}", problem.b[i])?;
        }
    }
    writeln!(writer, "ENDATA")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex;

    const SAMPLE: &str = "\
NAME          SAMPLE
ROWS
 N  COST
 L  LIM1
 G  LIM2
COLUMNS
    X1  COST  1.0  LIM1  1.0
    X1  LIM2  1.0
    X2  COST  2.0  LIM1  1.0
RHS
    RHS  LIM1  4.0  LIM2  1.0
ENDATA
";

    #[test]
    fn parses_sample_and_solves() {
        let mps = read_mps(SAMPLE.as_bytes()).unwrap();
        assert_eq!(mps.name, "SAMPLE");
        assert_eq!(mps.sense, Sense::Minimize);
        // Two constraints: x1 + x2 <= 4 and -x1 <= -1 (from x1 >= 1).
        assert_eq!(mps.problem.num_rows(), 2);
        assert_eq!(mps.problem.num_cols(), 2);
        // Minimize x1 + 2 x2 => max -(x1 + 2x2): optimum at x = (1, 0),
        // value -1 for the max form.
        let max_form = mps.into_max_problem();
        let sol = simplex::solve(&max_form);
        assert!((sol.objective + 1.0).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn equality_rows_become_two_inequalities() {
        let text = "\
NAME EQ
ROWS
 N obj
 E bal
COLUMNS
    x obj 1.0 bal 1.0
    y obj 1.0 bal 1.0
RHS
    r bal 2.0
ENDATA
";
        let mps = read_mps(text.as_bytes()).unwrap();
        assert_eq!(mps.problem.num_rows(), 2);
        // x + y <= 2 and -(x + y) <= -2.
        let b = &mps.problem.b;
        assert!(b.contains(&2.0) && b.contains(&-2.0));
    }

    #[test]
    fn unsupported_bounds_error() {
        let text = "\
NAME B
ROWS
 N obj
 L r1
COLUMNS
    x obj 1.0 r1 1.0
RHS
    rhs r1 1.0
BOUNDS
 UP BND x 5.0
ENDATA
";
        assert!(matches!(
            read_mps(text.as_bytes()),
            Err(MpsError::Unsupported { .. })
        ));
    }

    #[test]
    fn round_trip_through_writer() {
        let lp = crate::generators::block_lp(&crate::generators::BlockLpSpec {
            name: "rt".into(),
            block_rows: 2,
            block_cols: 2,
            rows_per_block: 2,
            cols_per_block: 2,
            density: 1.0,
            noise: 0.0,
            seed: 1,
        });
        let mut buffer = Vec::new();
        write_mps(&lp, &mut buffer).unwrap();
        let parsed = read_mps(buffer.as_slice()).unwrap();
        assert_eq!(parsed.sense, Sense::Maximize);
        let reparsed = parsed.into_max_problem();
        assert_eq!(reparsed.num_rows(), lp.num_rows());
        assert_eq!(reparsed.num_cols(), lp.num_cols());
        let a = simplex::solve(&lp).objective;
        let b = simplex::solve(&reparsed).objective;
        assert!((a - b).abs() < 1e-6);
    }
}
