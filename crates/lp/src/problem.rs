//! The linear-programming problem model.
//!
//! All problems are kept in the paper's canonical form (Eq. 2):
//!
//! ```text
//! maximize  cᵀ x    subject to    A x ≤ b,   x ≥ 0
//! ```
//!
//! with `A ∈ R^{m×n}` stored sparsely.

use qsc_linalg::SparseMatrix;

/// A linear program `max cᵀx s.t. Ax ≤ b, x ≥ 0`.
#[derive(Clone, Debug)]
pub struct LpProblem {
    /// Optional human-readable name.
    pub name: String,
    /// Constraint matrix `A` (`m × n`).
    pub a: SparseMatrix,
    /// Right-hand side `b` (length `m`).
    pub b: Vec<f64>,
    /// Objective coefficients `c` (length `n`).
    pub c: Vec<f64>,
}

impl LpProblem {
    /// Construct a problem, validating dimensions.
    pub fn new(name: impl Into<String>, a: SparseMatrix, b: Vec<f64>, c: Vec<f64>) -> Self {
        assert_eq!(a.rows(), b.len(), "b length must equal the number of rows");
        assert_eq!(
            a.cols(),
            c.len(),
            "c length must equal the number of columns"
        );
        LpProblem {
            name: name.into(),
            a,
            b,
            c,
        }
    }

    /// Construct from dense row data.
    pub fn from_dense(
        name: impl Into<String>,
        rows: &[Vec<f64>],
        b: Vec<f64>,
        c: Vec<f64>,
    ) -> Self {
        let m = rows.len();
        let n = rows.first().map_or(0, |r| r.len());
        let mut triplets = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "ragged constraint rows");
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triplets.push((i as u32, j as u32, v));
                }
            }
        }
        Self::new(name, SparseMatrix::from_triplets(m, n, &triplets), b, c)
    }

    /// Number of constraints `m`.
    pub fn num_rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of variables `n`.
    pub fn num_cols(&self) -> usize {
        self.a.cols()
    }

    /// Number of non-zero constraint coefficients.
    pub fn num_nonzeros(&self) -> usize {
        self.a.nnz()
    }

    /// Objective value `cᵀ x` of a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_cols());
        qsc_linalg::vec_ops::dot(&self.c, x)
    }

    /// Whether `x` is feasible within tolerance `tol` (`x ≥ -tol` and
    /// `Ax ≤ b + tol` componentwise).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_cols() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        let ax = self.a.matvec(x);
        ax.iter().zip(&self.b).all(|(&lhs, &rhs)| lhs <= rhs + tol)
    }

    /// Maximum constraint violation of `x` (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let ax = self.a.matvec(x);
        let constraint = ax
            .iter()
            .zip(&self.b)
            .map(|(&lhs, &rhs)| (lhs - rhs).max(0.0))
            .fold(0.0f64, f64::max);
        let bound = x.iter().map(|&v| (-v).max(0.0)).fold(0.0f64, f64::max);
        constraint.max(bound)
    }

    /// The extended matrix `𝑨` of Eq. (3): `(m+1) × (n+1)` with `b` as the
    /// last column and `cᵀ` as the last row (the `∞` corner is omitted).
    /// Returned as a triplet list for building the coloring graph.
    pub fn extended_matrix_triplets(&self) -> Vec<(u32, u32, f64)> {
        let m = self.num_rows() as u32;
        let n = self.num_cols() as u32;
        let mut triplets: Vec<(u32, u32, f64)> = self.a.triplets().collect();
        for (i, &bi) in self.b.iter().enumerate() {
            if bi != 0.0 {
                triplets.push((i as u32, n, bi));
            }
        }
        for (j, &cj) in self.c.iter().enumerate() {
            if cj != 0.0 {
                triplets.push((m, j as u32, cj));
            }
        }
        triplets
    }
}

/// Status of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The iteration limit was reached before convergence; the reported
    /// solution is the best found so far.
    IterationLimit,
    /// Early-stopped at the requested tolerance (interior-point only).
    EarlyStopped,
}

/// Result of solving an LP.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value `cᵀ x` of the reported point (`-inf` if infeasible).
    pub objective: f64,
    /// The primal point.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
}

impl LpSolution {
    /// Whether the solver proved optimality.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LpProblem {
        // max x0 + x1 s.t. x0 + x1 <= 1, x0 <= 0.75
        LpProblem::from_dense(
            "tiny",
            &[vec![1.0, 1.0], vec![1.0, 0.0]],
            vec![1.0, 0.75],
            vec![1.0, 1.0],
        )
    }

    #[test]
    fn dimensions_and_objective() {
        let lp = tiny();
        assert_eq!(lp.num_rows(), 2);
        assert_eq!(lp.num_cols(), 2);
        assert_eq!(lp.num_nonzeros(), 3);
        assert_eq!(lp.objective_value(&[0.5, 0.5]), 1.0);
    }

    #[test]
    fn feasibility_checks() {
        let lp = tiny();
        assert!(lp.is_feasible(&[0.5, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 0.0], 1e-9));
        assert!(lp.max_violation(&[1.0, 0.5]) > 0.4);
        assert_eq!(lp.max_violation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn extended_matrix_has_b_and_c() {
        let lp = tiny();
        let t = lp.extended_matrix_triplets();
        // A entries (3) + b entries (2) + c entries (2).
        assert_eq!(t.len(), 7);
        assert!(t.contains(&(0, 2, 1.0))); // b_0 in last column
        assert!(t.contains(&(2, 0, 1.0))); // c_0 in last row
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        LpProblem::from_dense("bad", &[vec![1.0]], vec![1.0, 2.0], vec![1.0]);
    }
}
