//! Dense two-phase primal simplex, cold or warm-started.
//!
//! Solves `max cᵀx s.t. Ax ≤ b, x ≥ 0` via the standard tableau method:
//! slack variables turn the inequalities into equalities, negative
//! right-hand sides are handled with phase-1 artificial variables, and
//! Dantzig pricing (with a Bland's-rule fallback to guarantee termination)
//! drives the pivoting. Intended for the small-to-medium LPs of this
//! reproduction — the reduced LPs produced by quasi-stable coloring have at
//! most a few hundred rows.
//!
//! # Warm starts
//!
//! [`solve_warm`] restarts from a [`SimplexBasis`] captured from a previous
//! solve of a *related* problem — the sweep pipeline's reduced LPs across
//! adjacent color budgets, which grow by one row or one column per split
//! while keeping existing row/column indices stable. The warm path builds
//! the slack-form tableau, realizes the previous optimal basis with one
//! Gauss–Jordan pass (new rows become basic in their own slack), and — when
//! that basis is still primal feasible — reoptimizes with phase-2 pivots
//! only, skipping phase 1 entirely. If the basis has gone singular or
//! primal infeasible, it falls back to the cold two-phase solve, so the
//! returned solution always equals the cold one's objective (warm-starting
//! changes the pivot path, never the optimum).

use crate::problem::{LpProblem, LpSolution, LpStatus};

/// Configuration of the simplex solver.
#[derive(Clone, Debug)]
pub struct SimplexConfig {
    /// Numerical tolerance for reduced costs, ratio tests and feasibility.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases.
    pub max_iterations: usize,
    /// After this many pivots without improvement, switch to Bland's rule to
    /// prevent cycling.
    pub bland_threshold: usize,
}

impl Default for SimplexConfig {
    fn default() -> Self {
        SimplexConfig {
            tolerance: 1e-9,
            max_iterations: 50_000,
            bland_threshold: 1_000,
        }
    }
}

/// Solve an LP with the default configuration.
pub fn solve(problem: &LpProblem) -> LpSolution {
    solve_with(problem, &SimplexConfig::default())
}

/// Solve an LP with an explicit configuration.
pub fn solve_with(problem: &LpProblem, config: &SimplexConfig) -> LpSolution {
    solve_two_phase(problem, config)
}

/// A non-artificial basic variable of the tableau.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BasicVar {
    /// Original (structural) variable `x_j`.
    Structural(usize),
    /// Slack variable of constraint row `i`.
    Slack(usize),
}

/// The basis of an optimal tableau: one basic variable per constraint row,
/// captured by [`solve_warm`] so the next, related problem can restart from
/// it instead of from scratch.
#[derive(Clone, Debug)]
pub struct SimplexBasis {
    /// Basic variable of each row, in row order.
    pub basic: Vec<BasicVar>,
}

/// Result of a [`solve_warm`] call.
#[derive(Clone, Debug)]
pub struct WarmSolve {
    /// The solution (always equal, in objective, to a cold solve).
    pub solution: LpSolution,
    /// The final basis, for warm-starting the next solve (`None` when the
    /// solve did not end at an optimum or the basis was not representable
    /// without artificials).
    pub basis: Option<SimplexBasis>,
    /// Whether the warm basis was actually used (`false`: cold fallback —
    /// no basis supplied, basis singular, or basis primal infeasible).
    pub warm_used: bool,
}

/// Solve an LP, restarting from `warm` when possible (see the module docs).
/// The warm basis may come from a problem with fewer rows and/or columns;
/// surviving indices must refer to the same rows/columns. Falls back to the
/// cold two-phase method whenever the warm basis cannot be realized or is
/// primal infeasible, so the result matches [`solve_with`] in objective
/// either way.
pub fn solve_warm(
    problem: &LpProblem,
    config: &SimplexConfig,
    warm: Option<&SimplexBasis>,
) -> WarmSolve {
    if let Some(basis) = warm {
        if let Some(mut result) = try_warm(problem, config, basis) {
            result.warm_used = true;
            return result;
        }
    }
    let (solution, basis) = solve_two_phase_extracting(problem, config);
    WarmSolve {
        solution,
        basis,
        warm_used: false,
    }
}

/// Attempt the warm path: realize `basis` on a fresh slack-form tableau and
/// reoptimize with phase-2 pivots. Returns `None` when the basis is
/// singular or primal infeasible for this problem (caller falls back).
fn try_warm(
    problem: &LpProblem,
    config: &SimplexConfig,
    basis: &SimplexBasis,
) -> Option<WarmSolve> {
    let m = problem.num_rows();
    let n = problem.num_cols();
    // Assign a basic variable to every row: rows that existed in the warm
    // basis keep theirs (when still valid and unclaimed), new rows get
    // their own slack.
    let mut used = vec![false; n + m];
    let mut target = Vec::with_capacity(m);
    for i in 0..m {
        let col = match basis.basic.get(i) {
            Some(&BasicVar::Structural(j)) if j < n && !used[j] => j,
            Some(&BasicVar::Slack(r)) if r < m && !used[n + r] => n + r,
            _ => {
                if used[n + i] {
                    return None; // row's own slack already claimed elsewhere
                }
                n + i
            }
        };
        used[col] = true;
        target.push(col);
    }

    // Slack-form tableau: no sign flips, no artificials. (Negative rhs
    // entries are fine as long as the *realized basis* turns them
    // non-negative.)
    let total = n + m;
    let mut s = Simplex {
        rows: vec![vec![0.0; total + 1]; m],
        obj: vec![0.0; total + 1],
        basis: (0..m).map(|i| n + i).collect(),
        n,
        m,
        num_artificial: 0,
        config: config.clone(),
        iterations: 0,
    };
    for i in 0..m {
        for (j, v) in problem.a.row(i) {
            s.rows[i][j as usize] = v;
        }
        s.rows[i][n + i] = 1.0;
        s.rows[i][total] = problem.b[i];
    }

    // Realize the warm basis with one Gauss–Jordan pass. Target columns are
    // distinct, and each pivot leaves previously pivoted unit columns
    // untouched, so one pass suffices; a (near-)zero pivot means the basis
    // is singular for this problem.
    for (i, &col) in target.iter().enumerate() {
        if s.rows[i][col].abs() <= 1e-8 {
            return None;
        }
        s.pivot(i, col);
    }

    // The warm basis must still be primal feasible to seed phase 2.
    let feas_tol = config.tolerance.max(1e-7);
    if (0..m).any(|i| s.rows[i][total] < -feas_tol) {
        return None;
    }

    s.set_phase2_objective(&problem.c);
    let status = s.pivot_loop(false);
    let solution = match status {
        LoopStatus::Optimal => s.report(LpStatus::Optimal, None),
        LoopStatus::Unbounded => s.report(LpStatus::Unbounded, Some(f64::INFINITY)),
        LoopStatus::IterationLimit => s.report(LpStatus::IterationLimit, None),
    };
    let basis = (solution.status == LpStatus::Optimal)
        .then(|| extract_basis(&s))
        .flatten();
    Some(WarmSolve {
        solution,
        basis,
        warm_used: false, // set by the caller
    })
}

/// Capture the final basis of a tableau as [`BasicVar`]s. Rows left with a
/// basic artificial (possible after a degenerate phase 1) are recorded as
/// their own slack when that slack is free; if it is not, the basis is not
/// representable and `None` is returned.
fn extract_basis(s: &Simplex) -> Option<SimplexBasis> {
    let mut slack_used = vec![false; s.m];
    let mut basic: Vec<Option<BasicVar>> = Vec::with_capacity(s.m);
    for &b in &s.basis {
        if b < s.n {
            basic.push(Some(BasicVar::Structural(b)));
        } else if b < s.n + s.m {
            slack_used[b - s.n] = true;
            basic.push(Some(BasicVar::Slack(b - s.n)));
        } else {
            basic.push(None); // artificial, resolved below
        }
    }
    for (i, slot) in basic.iter_mut().enumerate() {
        if slot.is_none() {
            if slack_used[i] {
                return None;
            }
            slack_used[i] = true;
            *slot = Some(BasicVar::Slack(i));
        }
    }
    Some(SimplexBasis {
        basic: basic.into_iter().map(Option::unwrap).collect(),
    })
}

struct Simplex {
    /// Constraint rows of the tableau: `m` rows, each of length
    /// `total_vars + 1` (last entry = rhs).
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `total_vars + 1`; the last entry
    /// holds the negated objective value of the current basis.
    obj: Vec<f64>,
    /// Index of the basic variable of each row.
    basis: Vec<usize>,
    n: usize,
    m: usize,
    num_artificial: usize,
    config: SimplexConfig,
    iterations: usize,
}

impl Simplex {
    fn new(problem: &LpProblem, config: SimplexConfig) -> Self {
        let m = problem.num_rows();
        let n = problem.num_cols();
        // Variable layout: [0..n) original, [n..n+m) slacks,
        // [n+m..n+m+num_artificial) artificials (one per negative-rhs row).
        let negative_rows: Vec<bool> = problem.b.iter().map(|&bi| bi < 0.0).collect();
        let num_artificial = negative_rows.iter().filter(|&&x| x).count();
        let total = n + m + num_artificial;

        let mut rows = vec![vec![0.0; total + 1]; m];
        let mut basis = vec![0usize; m];
        let mut artificial_cursor = 0usize;
        for i in 0..m {
            let sign = if negative_rows[i] { -1.0 } else { 1.0 };
            for (j, v) in problem.a.row(i) {
                rows[i][j as usize] = sign * v;
            }
            rows[i][n + i] = sign; // slack
            rows[i][total] = sign * problem.b[i];
            if negative_rows[i] {
                let art = n + m + artificial_cursor;
                rows[i][art] = 1.0;
                basis[i] = art;
                artificial_cursor += 1;
            } else {
                basis[i] = n + i;
            }
        }

        Simplex {
            rows,
            obj: vec![0.0; total + 1],
            basis,
            n,
            m,
            num_artificial,
            config,
            iterations: 0,
        }
    }

    fn total_vars(&self) -> usize {
        self.n + self.m + self.num_artificial
    }

    fn pivot_loop(&mut self, _phase1: bool) -> LoopStatus {
        let tol = self.config.tolerance;
        let total = self.total_vars();
        let mut stalled = 0usize;
        loop {
            if self.iterations >= self.config.max_iterations {
                return LoopStatus::IterationLimit;
            }
            let use_bland = stalled >= self.config.bland_threshold;
            // Entering variable: positive reduced cost (maximization).
            let mut entering: Option<usize> = None;
            let mut best = tol;
            for j in 0..total {
                let rc = self.obj[j];
                if rc > tol {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if rc > best {
                        best = rc;
                        entering = Some(j);
                    }
                }
            }
            let Some(enter) = entering else {
                return LoopStatus::Optimal;
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.m {
                let a = self.rows[i][enter];
                if a > tol {
                    let ratio = self.rows[i][total] / a;
                    if ratio < best_ratio - tol
                        || (use_bland
                            && (ratio - best_ratio).abs() <= tol
                            && leave.is_none_or(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave_row) = leave else {
                return LoopStatus::Unbounded;
            };
            let before = self.obj[total];
            self.pivot(leave_row, enter);
            let after = self.obj[total];
            if (after - before).abs() <= tol {
                stalled += 1;
            } else {
                stalled = 0;
            }
            self.iterations += 1;
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let total = self.total_vars();
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > 0.0);
        for j in 0..=total {
            self.rows[row][j] /= pivot_val;
        }
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor != 0.0 {
                for j in 0..=total {
                    self.rows[i][j] -= factor * self.rows[row][j];
                }
            }
        }
        let factor = self.obj[col];
        if factor != 0.0 {
            for j in 0..=total {
                self.obj[j] -= factor * self.rows[row][j];
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivot any artificial variables that remain basic (at
    /// value zero) out of the basis where possible.
    fn evict_artificials(&mut self) {
        let art_start = self.n + self.m;
        let total = self.total_vars();
        for i in 0..self.m {
            if self.basis[i] >= art_start {
                // Find a non-artificial column with a non-zero entry.
                if let Some(col) =
                    (0..art_start).find(|&j| self.rows[i][j].abs() > self.config.tolerance)
                {
                    self.pivot(i, col);
                } else {
                    // Redundant row: zero it (the artificial stays basic at 0).
                    for j in 0..=total {
                        if j < art_start {
                            self.rows[i][j] = 0.0;
                        }
                    }
                }
            }
        }
    }

    fn report(&self, status: LpStatus, objective_override: Option<f64>) -> LpSolution {
        let total = self.total_vars();
        let mut x = vec![0.0; self.n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n {
                x[b] = self.rows[i][total];
            }
        }
        let objective = objective_override.unwrap_or(-self.obj[total]);
        LpSolution {
            status,
            objective,
            x,
            iterations: self.iterations,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LoopStatus {
    Optimal,
    Unbounded,
    IterationLimit,
}

// The phase-2 objective needs the problem's `c`; `Simplex::phase2_costs`
// cannot see it, so `solve_with` is implemented as a free function that
// threads the coefficients through. To keep the solver self-contained we
// instead rebuild the reduced costs here.
impl Simplex {
    fn set_phase2_objective(&mut self, c: &[f64]) {
        let total = self.total_vars();
        let mut obj = vec![0.0; total + 1];
        obj[..self.n].copy_from_slice(c);
        // Price out the basic variables: for each row whose basic variable
        // has a non-zero objective coefficient, subtract c_B * row.
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = if b < self.n { c[b] } else { 0.0 };
            if cb != 0.0 {
                for (j, slot) in obj.iter_mut().enumerate().take(total + 1) {
                    *slot -= cb * self.rows[i][j];
                }
                // The basic column itself becomes 0 (it is the identity in
                // this row); adding cb back keeps reduced cost of the basic
                // variable at 0, which the subtraction already achieves since
                // rows[i][b] == 1.
            }
        }
        // Artificial variables must never re-enter.
        for slot in obj.iter_mut().take(total).skip(self.n + self.m) {
            *slot = f64::NEG_INFINITY;
        }
        self.obj = obj;
    }
}

/// Internal re-implementation of [`solve_with`] wiring phase 2 correctly.
pub(crate) fn solve_two_phase(problem: &LpProblem, config: &SimplexConfig) -> LpSolution {
    solve_two_phase_extracting(problem, config).0
}

/// The cold two-phase solve, additionally capturing the optimal basis for
/// warm-starting a subsequent related solve.
fn solve_two_phase_extracting(
    problem: &LpProblem,
    config: &SimplexConfig,
) -> (LpSolution, Option<SimplexBasis>) {
    let mut s = Simplex::new(problem, config.clone());
    let tol = config.tolerance;
    if s.num_artificial > 0 {
        let total = s.total_vars();
        let mut obj = vec![0.0; total + 1];
        for (i, &b) in s.basis.clone().iter().enumerate() {
            if b >= s.n + s.m {
                for (j, slot) in obj.iter_mut().enumerate().take(total + 1) {
                    *slot += s.rows[i][j];
                }
            }
        }
        for slot in obj.iter_mut().take(total).skip(s.n + s.m) {
            *slot -= 1.0;
        }
        s.obj = obj;
        let status = s.pivot_loop(true);
        if status == LoopStatus::IterationLimit {
            return (s.report(LpStatus::IterationLimit, None), None);
        }
        // `obj[total]` holds the negated phase-1 objective, i.e. the total
        // residual infeasibility (sum of artificial values).
        let infeasibility = s.obj[s.total_vars()];
        if infeasibility > tol.max(1e-7) {
            return (
                LpSolution {
                    status: LpStatus::Infeasible,
                    objective: f64::NEG_INFINITY,
                    x: vec![0.0; s.n],
                    iterations: s.iterations,
                },
                None,
            );
        }
        s.evict_artificials();
    }
    s.set_phase2_objective(&problem.c);
    let status = s.pivot_loop(false);
    let solution = match status {
        LoopStatus::Optimal => s.report(LpStatus::Optimal, None),
        LoopStatus::Unbounded => s.report(LpStatus::Unbounded, Some(f64::INFINITY)),
        LoopStatus::IterationLimit => s.report(LpStatus::IterationLimit, None),
    };
    let basis = (solution.status == LpStatus::Optimal)
        .then(|| extract_basis(&s))
        .flatten();
    (solution, basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpProblem;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => opt 36 at (2,6).
        let lp = LpProblem::from_dense(
            "textbook",
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 36.0, 1e-7);
        assert_close(sol.x[0], 2.0, 1e-7);
        assert_close(sol.x[1], 6.0, 1e-7);
        assert!(lp.is_feasible(&sol.x, 1e-7));
    }

    #[test]
    fn paper_fig3_original_lp() {
        // The 5x3 LP of Fig. 3(a); the paper reports optimal value 128.157.
        let lp = LpProblem::from_dense(
            "fig3",
            &[
                vec![4.0, 8.0, 2.0],
                vec![6.0, 5.0, 1.0],
                vec![7.0, 4.0, 2.0],
                vec![3.0, 1.0, 22.0],
                vec![2.0, 3.0, 21.0],
            ],
            vec![20.0, 20.0, 21.0, 50.0, 51.0],
            vec![9.0, 10.0, 50.0],
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 128.157, 0.01);
        assert!(lp.is_feasible(&sol.x, 1e-7));
    }

    #[test]
    fn unbounded_detection() {
        // max x with only constraint -x <= 1: unbounded.
        let lp = LpProblem::from_dense("unbounded", &[vec![-1.0]], vec![1.0], vec![1.0]);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn infeasible_detection() {
        // x <= -1 with x >= 0 is infeasible.
        let lp = LpProblem::from_dense("infeasible", &[vec![1.0]], vec![-1.0], vec![1.0]);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_feasible_problem() {
        // max x + y s.t. -x <= -1 (i.e. x >= 1), x + y <= 3 => opt 3.
        let lp = LpProblem::from_dense(
            "negative-rhs",
            &[vec![-1.0, 0.0], vec![1.0, 1.0]],
            vec![-1.0, 3.0],
            vec![1.0, 1.0],
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 3.0, 1e-7);
        assert!(sol.x[0] >= 1.0 - 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the optimum.
        let lp = LpProblem::from_dense(
            "degenerate",
            &[
                vec![1.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
                vec![1.0, 0.0],
            ],
            vec![1.0, 1.0, 2.0, 1.0],
            vec![1.0, 1.0],
        );
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0, 1e-7);
    }

    #[test]
    fn zero_objective() {
        let lp = LpProblem::from_dense("zero", &[vec![1.0]], vec![5.0], vec![0.0]);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0, 1e-9);
    }

    #[test]
    fn warm_restart_from_own_basis_is_free() {
        let lp = LpProblem::from_dense(
            "textbook",
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let config = SimplexConfig::default();
        let cold = solve_warm(&lp, &config, None);
        assert!(!cold.warm_used);
        assert_eq!(cold.solution.status, LpStatus::Optimal);
        let basis = cold.basis.expect("optimal solve yields a basis");
        let warm = solve_warm(&lp, &config, Some(&basis));
        assert!(warm.warm_used);
        assert_eq!(warm.solution.status, LpStatus::Optimal);
        assert_close(warm.solution.objective, cold.solution.objective, 1e-9);
        assert_eq!(warm.solution.iterations, 0, "optimal basis needs no pivots");
    }

    #[test]
    fn warm_start_after_adding_row_and_column_matches_cold() {
        let lp = LpProblem::from_dense(
            "base",
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let config = SimplexConfig::default();
        let basis = solve_warm(&lp, &config, None).basis.unwrap();
        // Grow: one extra column (new variable) and one extra row.
        let grown = LpProblem::from_dense(
            "grown",
            &[
                vec![1.0, 0.0, 1.0],
                vec![0.0, 2.0, 0.5],
                vec![3.0, 2.0, 2.0],
                vec![1.0, 1.0, 1.0],
            ],
            vec![4.0, 12.0, 18.0, 9.0],
            vec![3.0, 5.0, 4.0],
        );
        let warm = solve_warm(&grown, &config, Some(&basis));
        let cold = solve(&grown);
        assert_eq!(warm.solution.status, cold.status);
        assert_close(warm.solution.objective, cold.objective, 1e-9);
        assert!(grown.is_feasible(&warm.solution.x, 1e-7));
    }

    #[test]
    fn warm_start_falls_back_when_basis_goes_infeasible() {
        let lp = LpProblem::from_dense(
            "base",
            &[vec![1.0, 1.0], vec![1.0, 0.0]],
            vec![5.0, 3.0],
            vec![2.0, 1.0],
        );
        let config = SimplexConfig::default();
        let basis = solve_warm(&lp, &config, None).basis.unwrap();
        // Flip a rhs negative: the old basis is primal infeasible, forcing
        // the phase-1 fallback; the answer must still match the cold solve.
        let changed = LpProblem::from_dense(
            "changed",
            &[vec![1.0, 1.0], vec![-1.0, 0.0]],
            vec![5.0, -1.0],
            vec![2.0, 1.0],
        );
        let warm = solve_warm(&changed, &config, Some(&basis));
        let cold = solve(&changed);
        assert_eq!(warm.solution.status, cold.status);
        assert_close(warm.solution.objective, cold.objective, 1e-9);
    }

    #[test]
    fn warm_start_matches_cold_on_random_growing_lps() {
        // Seeded pseudo-random growth chains: start from a feasible random
        // LP, repeatedly append a row or column, and check warm == cold at
        // every step.
        for seed in 0..5u64 {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0
            };
            let mut rows: Vec<Vec<f64>> =
                (0..3).map(|_| (0..3).map(|_| next()).collect()).collect();
            let mut b: Vec<f64> = (0..3).map(|_| 5.0 + next()).collect();
            let mut c: Vec<f64> = (0..3).map(|_| next()).collect();
            let mut basis: Option<SimplexBasis> = None;
            let config = SimplexConfig::default();
            for step in 0..6usize {
                if step % 2 == 0 {
                    // New row.
                    rows.push((0..c.len()).map(|_| next()).collect());
                    b.push(5.0 + next());
                } else {
                    // New column.
                    for row in rows.iter_mut() {
                        row.push(next());
                    }
                    c.push(next());
                }
                let lp = LpProblem::from_dense("chain", &rows, b.clone(), c.clone());
                let warm = solve_warm(&lp, &config, basis.as_ref());
                let cold = solve(&lp);
                assert_eq!(warm.solution.status, cold.status, "seed {seed} step {step}");
                assert_close(warm.solution.objective, cold.objective, 1e-7);
                basis = warm.basis;
            }
        }
    }

    #[test]
    fn respects_iteration_limit() {
        let lp = LpProblem::from_dense(
            "limited",
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let config = SimplexConfig {
            max_iterations: 1,
            ..Default::default()
        };
        let sol = solve_with(&lp, &config);
        assert_eq!(sol.status, LpStatus::IterationLimit);
    }
}
