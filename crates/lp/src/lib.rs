//! # qsc-lp
//!
//! Linear programming substrate and the LP application of quasi-stable
//! coloring (Sec. 4.1 of the paper).
//!
//! * [`problem::LpProblem`] — LPs in the paper's canonical form
//!   `max cᵀx, Ax ≤ b, x ≥ 0`.
//! * [`simplex`] — dense two-phase primal simplex (the exact reference
//!   solver for small/medium problems and all reduced problems).
//! * [`interior_point`] — primal-dual interior-point method with an
//!   early-stopping mode (the Tulip stand-in, and the early-stopping
//!   baseline of Table 1).
//! * [`reduce`] — LP dimensionality reduction via quasi-stable coloring of
//!   the extended matrix (Eq. 3–6, Theorem 2), including the Fig. 3 example.
//! * [`sweep`] — warm-started budget sweeps: one coloring refinement
//!   threaded through every budget, the reduced problem's aggregates
//!   patched per split, and each reduced solve restarted from the previous
//!   optimal basis ([`simplex::solve_warm`]).
//! * [`generators`] — structured, compressible LP generators standing in for
//!   the Mittelmann benchmark instances of Table 3.
//! * [`mps`] — minimal MPS reader/writer for loading external LPs.
//!
//! ## Example: approximate a structured LP
//!
//! ```
//! use qsc_lp::generators::{block_lp, BlockLpSpec};
//! use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
//! use qsc_lp::simplex;
//!
//! let lp = block_lp(&BlockLpSpec {
//!     name: "demo".into(),
//!     block_rows: 4, block_cols: 3,
//!     rows_per_block: 5, cols_per_block: 5,
//!     density: 0.8, noise: 0.02, seed: 1,
//! });
//! let exact = simplex::solve(&lp).objective;
//! let reduced = reduce_with_rothko(
//!     &lp,
//!     &LpColoringConfig::with_max_colors(12),
//!     LpReductionVariant::SqrtNormalized,
//! );
//! let approx = simplex::solve(&reduced.problem).objective;
//! let relative_error = (exact / approx).max(approx / exact);
//! assert!(relative_error < 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod generators;
pub mod interior_point;
pub mod mps;
pub mod problem;
pub mod reduce;
pub mod simplex;
pub mod sweep;

pub use problem::{LpProblem, LpSolution, LpStatus};
pub use reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant, ReducedLp};
pub use simplex::{BasicVar, SimplexBasis, SimplexConfig, WarmSolve};
pub use sweep::{sweep_lp, LpDeltaSnapshot, LpSweepPoint, ReducedLpColorKind, ReducedLpDelta};
