//! LP dimensionality reduction via quasi-stable coloring (Sec. 4.1).
//!
//! The LP `max cᵀx, Ax ≤ b, x ≥ 0` is associated with the weighted bipartite
//! graph of its extended matrix `𝑨` (Eq. 3): one node per row (plus one for
//! the objective row `cᵀ`) and one node per column (plus one for the
//! right-hand side `b`). A quasi-stable coloring of that graph — with the
//! objective row and the rhs column pinned to their own colors — induces the
//! reduced LP of Eq. (5)/(6). Theorem 2 guarantees that the reduced optimum
//! converges to the true optimum as the coloring error `q → 0`.

use crate::problem::LpProblem;
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_core::Partition;
use qsc_graph::GraphBuilder;
use qsc_linalg::SparseMatrix;

/// Which reduced-matrix weighting to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LpReductionVariant {
    /// Eq. (6): `Â(r,s) = A(P_r,Q_s)/√(|P_r||Q_s|)`, `b̂(r) = b(P_r)/√|P_r|`,
    /// `ĉ(s) = c(Q_s)/√|Q_s|`.
    #[default]
    SqrtNormalized,
    /// The Grohe et al. variant: `Â'(r,s) = A(P_r,Q_s)/|Q_s|`,
    /// `b̂'(r) = b(P_r)`, `ĉ'(s) = c(Q_s)/|Q_s|`.
    GroheAverage,
}

/// Configuration for coloring an LP's extended matrix.
#[derive(Clone, Debug)]
pub struct LpColoringConfig {
    /// Total color budget for the bipartite coloring (rows + columns,
    /// including the two reserved colors for the objective row and the rhs
    /// column).
    pub max_colors: usize,
    /// Alternative stopping rule: maximum q-error target.
    pub target_error: f64,
    /// Witness weighting exponents; the paper uses `α = 1, β = 0` for LPs.
    pub alpha: f64,
    /// See `alpha`.
    pub beta: f64,
    /// Split rule for the Rothko algorithm.
    pub split_mean: SplitMean,
}

impl LpColoringConfig {
    /// Budget-based configuration with the paper's LP weights.
    pub fn with_max_colors(max_colors: usize) -> Self {
        LpColoringConfig {
            max_colors,
            target_error: 0.0,
            alpha: 1.0,
            beta: 0.0,
            split_mean: SplitMean::Arithmetic,
        }
    }

    /// Error-target configuration with the paper's LP weights.
    pub fn with_target_error(q: f64) -> Self {
        LpColoringConfig {
            max_colors: usize::MAX,
            target_error: q,
            alpha: 1.0,
            beta: 0.0,
            split_mean: SplitMean::Arithmetic,
        }
    }
}

/// The result of reducing an LP through a coloring.
#[derive(Clone, Debug)]
pub struct ReducedLp {
    /// The reduced problem (Eq. 5).
    pub problem: LpProblem,
    /// For each original row, the index of the reduced row it maps to.
    pub row_of: Vec<u32>,
    /// For each original column, the index of the reduced column it maps to.
    pub col_of: Vec<u32>,
    /// Sizes |P_r| of the reduced rows.
    pub row_sizes: Vec<usize>,
    /// Sizes |Q_s| of the reduced columns.
    pub col_sizes: Vec<usize>,
    /// Maximum q-error of the coloring that produced this reduction.
    pub max_q_error: f64,
    /// The weighting variant used.
    pub variant: LpReductionVariant,
}

impl ReducedLp {
    /// Number of rows of the reduced LP.
    pub fn num_rows(&self) -> usize {
        self.problem.num_rows()
    }

    /// Number of columns of the reduced LP.
    pub fn num_cols(&self) -> usize {
        self.problem.num_cols()
    }

    /// Compression ratio in terms of non-zeros of the constraint matrix.
    pub fn compression_ratio(&self, original: &LpProblem) -> f64 {
        original.num_nonzeros().max(1) as f64 / self.problem.num_nonzeros().max(1) as f64
    }

    /// Lift a reduced solution `x̂` back to the original variable space
    /// (`x = Vᵀ x̂`, Eq. 10).
    pub fn lift_solution(&self, x_hat: &[f64]) -> Vec<f64> {
        assert_eq!(x_hat.len(), self.num_cols());
        self.col_of
            .iter()
            .map(|&s| {
                let s = s as usize;
                match self.variant {
                    LpReductionVariant::SqrtNormalized => {
                        x_hat[s] / (self.col_sizes[s] as f64).sqrt()
                    }
                    LpReductionVariant::GroheAverage => x_hat[s],
                }
            })
            .collect()
    }
}

/// A row/column coloring of an LP's extended matrix.
#[derive(Clone, Debug)]
pub struct LpColoring {
    /// Color of each original row, in `0..num_row_colors`.
    pub row_colors: Vec<u32>,
    /// Color of each original column, in `0..num_col_colors`.
    pub col_colors: Vec<u32>,
    /// Number of row colors (excluding the reserved objective-row color).
    pub num_row_colors: usize,
    /// Number of column colors (excluding the reserved rhs-column color).
    pub num_col_colors: usize,
    /// Maximum q-error of the underlying coloring of the extended matrix.
    pub max_q_error: f64,
}

/// Build the coloring graph of the LP's extended matrix (Eq. 3) together
/// with the pinned initial partition.
///
/// Node layout: constraint rows `0..m`, the objective row at `m`, columns
/// `m+1..m+1+n`, the rhs column at `m+1+n`. The initial partition is
/// `{constraint rows}, {objective row}, {columns}, {rhs column}` — global
/// colors `0..4` in that order; the objective row and rhs column stay
/// singletons because Rothko only ever splits colors. Shared by
/// [`color_lp`] and the budget sweep (`crate::sweep`), which relies on this
/// exact layout to classify split events as row or column splits.
pub fn coloring_graph(problem: &LpProblem) -> (qsc_graph::Graph, Partition) {
    let m = problem.num_rows();
    let n = problem.num_cols();
    let total_nodes = m + 1 + n + 1;
    let obj_row = m as u32;
    let rhs_col = (m + 1 + n) as u32;
    let col_node = |j: usize| (m + 1 + j) as u32;

    let mut builder = GraphBuilder::new_directed(total_nodes);
    for (i, j, v) in problem.a.triplets() {
        builder.add_edge(i, col_node(j as usize), v);
    }
    for (i, &bi) in problem.b.iter().enumerate() {
        if bi != 0.0 {
            builder.add_edge(i as u32, rhs_col, bi);
        }
    }
    for (j, &cj) in problem.c.iter().enumerate() {
        if cj != 0.0 {
            builder.add_edge(obj_row, col_node(j), cj);
        }
    }
    let graph = builder.build();

    let mut assignment = vec![0u32; total_nodes];
    assignment[obj_row as usize] = 1;
    for j in 0..n {
        assignment[col_node(j) as usize] = 2;
    }
    assignment[rhs_col as usize] = 3;
    (graph, Partition::from_assignment(&assignment))
}

/// Color the extended matrix of `problem` with the Rothko algorithm.
pub fn color_lp(problem: &LpProblem, config: &LpColoringConfig) -> LpColoring {
    let m = problem.num_rows();
    let n = problem.num_cols();
    let col_node = |j: usize| (m + 1 + j) as u32;
    let (graph, initial) = coloring_graph(problem);

    let rothko_config = RothkoConfig {
        max_colors: config.max_colors.max(4),
        target_error: config.target_error,
        alpha: config.alpha,
        beta: config.beta,
        split_mean: config.split_mean,
        initial: Some(initial),
        ..Default::default()
    };
    let coloring = Rothko::new(rothko_config).run(&graph);
    let p = &coloring.partition;

    // Re-number row colors and column colors independently.
    let mut row_color_ids: Vec<u32> = Vec::new();
    let mut row_colors = vec![0u32; m];
    for (i, rc) in row_colors.iter_mut().enumerate() {
        let c = p.color_of(i as u32);
        let idx = match row_color_ids.iter().position(|&x| x == c) {
            Some(idx) => idx,
            None => {
                row_color_ids.push(c);
                row_color_ids.len() - 1
            }
        };
        *rc = idx as u32;
    }
    let mut col_color_ids: Vec<u32> = Vec::new();
    let mut col_colors = vec![0u32; n];
    for (j, cc) in col_colors.iter_mut().enumerate() {
        let c = p.color_of(col_node(j));
        let idx = match col_color_ids.iter().position(|&x| x == c) {
            Some(idx) => idx,
            None => {
                col_color_ids.push(c);
                col_color_ids.len() - 1
            }
        };
        *cc = idx as u32;
    }

    LpColoring {
        row_colors,
        col_colors,
        num_row_colors: row_color_ids.len(),
        num_col_colors: col_color_ids.len(),
        max_q_error: coloring.max_q_error,
    }
}

/// Build the reduced LP from an explicit row/column coloring.
pub fn reduce_lp(
    problem: &LpProblem,
    coloring: &LpColoring,
    variant: LpReductionVariant,
) -> ReducedLp {
    let k = coloring.num_row_colors;
    let l = coloring.num_col_colors;
    let mut row_sizes = vec![0usize; k];
    for &r in &coloring.row_colors {
        row_sizes[r as usize] += 1;
    }
    let mut col_sizes = vec![0usize; l];
    for &c in &coloring.col_colors {
        col_sizes[c as usize] += 1;
    }

    // Aggregate A, b, c by color.
    let mut a_sum = vec![0.0f64; k * l];
    for (i, j, v) in problem.a.triplets() {
        let r = coloring.row_colors[i as usize] as usize;
        let s = coloring.col_colors[j as usize] as usize;
        a_sum[r * l + s] += v;
    }
    let mut b_sum = vec![0.0f64; k];
    for (i, &bi) in problem.b.iter().enumerate() {
        b_sum[coloring.row_colors[i] as usize] += bi;
    }
    let mut c_sum = vec![0.0f64; l];
    for (j, &cj) in problem.c.iter().enumerate() {
        c_sum[coloring.col_colors[j] as usize] += cj;
    }

    let mut triplets = Vec::new();
    for r in 0..k {
        for s in 0..l {
            let v = a_sum[r * l + s];
            if v != 0.0 {
                let scaled = match variant {
                    LpReductionVariant::SqrtNormalized => {
                        v / ((row_sizes[r] * col_sizes[s]) as f64).sqrt()
                    }
                    LpReductionVariant::GroheAverage => v / col_sizes[s] as f64,
                };
                triplets.push((r as u32, s as u32, scaled));
            }
        }
    }
    let b_hat: Vec<f64> = (0..k)
        .map(|r| match variant {
            LpReductionVariant::SqrtNormalized => b_sum[r] / (row_sizes[r] as f64).sqrt(),
            LpReductionVariant::GroheAverage => b_sum[r],
        })
        .collect();
    let c_hat: Vec<f64> = (0..l)
        .map(|s| match variant {
            LpReductionVariant::SqrtNormalized => c_sum[s] / (col_sizes[s] as f64).sqrt(),
            LpReductionVariant::GroheAverage => c_sum[s] / col_sizes[s] as f64,
        })
        .collect();

    let reduced_problem = LpProblem::new(
        format!("{}-reduced-{}x{}", problem.name, k, l),
        SparseMatrix::from_triplets(k, l, &triplets),
        b_hat,
        c_hat,
    );
    ReducedLp {
        problem: reduced_problem,
        row_of: coloring.row_colors.clone(),
        col_of: coloring.col_colors.clone(),
        row_sizes,
        col_sizes,
        max_q_error: coloring.max_q_error,
        variant,
    }
}

/// Convenience: color the LP with Rothko and build the reduced LP.
pub fn reduce_with_rothko(
    problem: &LpProblem,
    config: &LpColoringConfig,
    variant: LpReductionVariant,
) -> ReducedLp {
    let coloring = color_lp(problem, config);
    reduce_lp(problem, &coloring, variant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex;

    fn fig3_problem() -> LpProblem {
        LpProblem::from_dense(
            "fig3",
            &[
                vec![4.0, 8.0, 2.0],
                vec![6.0, 5.0, 1.0],
                vec![7.0, 4.0, 2.0],
                vec![3.0, 1.0, 22.0],
                vec![2.0, 3.0, 21.0],
            ],
            vec![20.0, 20.0, 21.0, 50.0, 51.0],
            vec![9.0, 10.0, 50.0],
        )
    }

    /// The exact partition shown in Fig. 3(b): rows {1,2,3}, {4,5}; columns
    /// {x1,x2}, {x3}.
    fn fig3_coloring() -> LpColoring {
        LpColoring {
            row_colors: vec![0, 0, 0, 1, 1],
            col_colors: vec![0, 0, 1],
            num_row_colors: 2,
            num_col_colors: 2,
            max_q_error: 1.0,
        }
    }

    #[test]
    fn fig3_example_reduced_matrix_matches_paper() {
        let lp = fig3_problem();
        let reduced = reduce_lp(&lp, &fig3_coloring(), LpReductionVariant::SqrtNormalized);
        assert_eq!(reduced.num_rows(), 2);
        assert_eq!(reduced.num_cols(), 2);
        // Â(1,1) = 34/√(3·2), Â(1,2) = 5/√(3·1), Â(2,1) = 9/√(2·2),
        // Â(2,2) = 43/√(2·1); b̂ = (61/√3, 101/√2); ĉ = (19/√2, 50).
        let a = &reduced.problem.a;
        assert!((a.get(0, 0) - 34.0 / 6f64.sqrt()).abs() < 1e-9);
        assert!((a.get(0, 1) - 5.0 / 3f64.sqrt()).abs() < 1e-9);
        assert!((a.get(1, 0) - 9.0 / 2.0).abs() < 1e-9);
        assert!((a.get(1, 1) - 43.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((reduced.problem.b[0] - 61.0 / 3f64.sqrt()).abs() < 1e-9);
        assert!((reduced.problem.b[1] - 101.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((reduced.problem.c[0] - 19.0 / 2f64.sqrt()).abs() < 1e-9);
        assert!((reduced.problem.c[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_example_objective_values_match_paper() {
        // The paper reports: original optimum 128.157, reduced optimum
        // 130.199.
        let lp = fig3_problem();
        let original = simplex::solve(&lp);
        assert!((original.objective - 128.157).abs() < 0.01);

        let reduced = reduce_lp(&lp, &fig3_coloring(), LpReductionVariant::SqrtNormalized);
        let reduced_sol = simplex::solve(&reduced.problem);
        assert!(
            (reduced_sol.objective - 130.199).abs() < 0.01,
            "reduced optimum {} != 130.199",
            reduced_sol.objective
        );
    }

    #[test]
    fn stable_coloring_reduction_is_exact() {
        // Theorem 2 with q = 0: a stable (q = 0) coloring preserves the LP
        // optimum exactly. Build an LP with duplicated rows and columns so
        // the coloring with q = 0 is non-trivial.
        let lp = LpProblem::from_dense(
            "duplicated",
            &[
                vec![1.0, 1.0, 2.0, 2.0],
                vec![1.0, 1.0, 2.0, 2.0],
                vec![3.0, 3.0, 1.0, 1.0],
            ],
            vec![10.0, 10.0, 12.0],
            vec![2.0, 2.0, 5.0, 5.0],
        );
        let config = LpColoringConfig::with_target_error(0.0);
        let reduced = reduce_with_rothko(&lp, &config, LpReductionVariant::SqrtNormalized);
        assert!(reduced.max_q_error <= 1e-9);
        assert!(reduced.num_rows() < lp.num_rows() || reduced.num_cols() < lp.num_cols());
        let original = simplex::solve(&lp);
        let red = simplex::solve(&reduced.problem);
        assert!(
            (original.objective - red.objective).abs() < 1e-6,
            "exact reduction changed the optimum: {} vs {}",
            original.objective,
            red.objective
        );
    }

    #[test]
    fn rothko_coloring_separates_rows_and_columns() {
        let lp = fig3_problem();
        let coloring = color_lp(&lp, &LpColoringConfig::with_max_colors(6));
        assert_eq!(coloring.row_colors.len(), 5);
        assert_eq!(coloring.col_colors.len(), 3);
        assert!(coloring.num_row_colors >= 1);
        assert!(coloring.num_col_colors >= 1);
        // Budget respected: the total number of colors (rows + cols +
        // reserved obj/rhs) is at most 6, so the visible ones are at most 4.
        assert!(coloring.num_row_colors + coloring.num_col_colors <= 4);
    }

    #[test]
    fn more_colors_reduce_error_on_block_lp() {
        let lp = crate::generators::block_lp(&crate::generators::BlockLpSpec {
            name: "block".into(),
            block_rows: 4,
            block_cols: 3,
            rows_per_block: 6,
            cols_per_block: 6,
            density: 0.7,
            noise: 0.05,
            seed: 3,
        });
        let exact = simplex::solve(&lp).objective;
        let coarse = simplex::solve(
            &reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(6),
                LpReductionVariant::SqrtNormalized,
            )
            .problem,
        )
        .objective;
        let fine = simplex::solve(
            &reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(16),
                LpReductionVariant::SqrtNormalized,
            )
            .problem,
        )
        .objective;
        let rel = |v: f64| (v / exact).max(exact / v);
        assert!(
            rel(fine) <= rel(coarse) + 0.25,
            "finer coloring should not be much worse: coarse {} fine {} exact {}",
            coarse,
            fine,
            exact
        );
        // The fine reduction should be within ~30% of the optimum on this
        // highly structured instance.
        assert!(
            rel(fine) < 1.3,
            "fine relative error too large: {}",
            rel(fine)
        );
    }

    #[test]
    fn lift_solution_has_original_dimension() {
        let lp = fig3_problem();
        let reduced = reduce_lp(&lp, &fig3_coloring(), LpReductionVariant::SqrtNormalized);
        let sol = simplex::solve(&reduced.problem);
        let lifted = reduced.lift_solution(&sol.x);
        assert_eq!(lifted.len(), 3);
        // The lifted point is non-negative.
        assert!(lifted.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn grohe_variant_also_exact_for_stable_coloring() {
        let lp = LpProblem::from_dense(
            "duplicated2",
            &[vec![1.0, 1.0], vec![1.0, 1.0]],
            vec![4.0, 4.0],
            vec![3.0, 3.0],
        );
        let config = LpColoringConfig::with_target_error(0.0);
        let reduced = reduce_with_rothko(&lp, &config, LpReductionVariant::GroheAverage);
        let original = simplex::solve(&lp);
        let red = simplex::solve(&reduced.problem);
        assert!((original.objective - red.objective).abs() < 1e-6);
    }
}
