//! Warm-started LP budget sweeps: the LP instantiation of the sweep
//! pipeline (see `qsc_core::sweep`).
//!
//! The cold path pays, per color budget, a fresh Rothko run over the
//! extended-matrix graph, an `O(nnz)` re-aggregation of `A`/`b`/`c` into
//! the reduced problem, and a from-scratch two-phase simplex solve.
//! [`sweep_lp`] instead threads one refinement through all budgets:
//!
//! * the coloring advances incrementally (`ColoringSweep`);
//! * the reduced problem's aggregate sums are patched per split in
//!   `O(nnz(moved rows/columns))` — each split moves a set of original rows
//!   (or columns) from their color's aggregate into a fresh one, so only
//!   the moved entries are touched ([`ReducedLpDelta`]);
//! * the emitted reduced problem is patched in place per checkpoint
//!   ([`PatchedReducedLp`]: only rows/columns dirtied since the last
//!   checkpoint are re-derived, `O(dirty · k)` instead of the dense
//!   `O(k·l)` re-emission);
//! * the simplex solve restarts from the previous budget's optimal basis
//!   (`solve_warm`), which stays meaningful because a split *appends* one
//!   reduced row or column while keeping all existing indices stable.
//!
//! Reduced row/column colors are numbered by first appearance at sweep
//! start plus appearance order of splits, which can differ from the cold
//! [`crate::reduce::reduce_lp`] numbering — the reduced problems are equal up to that
//! permutation, so their optima coincide (within floating-point tolerance;
//! `tests/tests/sweep_equivalence.rs` pins this down).

use crate::problem::{LpProblem, LpStatus};
use crate::reduce::{coloring_graph, LpColoringConfig, LpReductionVariant};
use crate::simplex::{self, SimplexBasis, SimplexConfig};
use qsc_core::partition::{MergeEvent, SplitEvent};
use qsc_core::rothko::RothkoConfig;
use qsc_core::sweep::ColoringSweep;
use qsc_linalg::{lanes, SparseMatrix};
use std::time::Instant;

/// One budget point of a warm-started LP sweep.
#[derive(Clone, Debug)]
pub struct LpSweepPoint {
    /// The requested color budget (extended-matrix colors, incl. the two
    /// reserved ones).
    pub budget: usize,
    /// Rows of the reduced LP at this checkpoint.
    pub rows: usize,
    /// Columns of the reduced LP at this checkpoint.
    pub cols: usize,
    /// Objective value of the reduced LP.
    pub objective: f64,
    /// Solver status of the reduced solve.
    pub status: LpStatus,
    /// Exact maximum q-error of the checkpoint coloring.
    pub max_q_error: f64,
    /// Wall-clock seconds from the start of the sweep until this budget's
    /// solution was ready (cumulative).
    pub cumulative_seconds: f64,
    /// Simplex pivots of the reduced solve.
    pub simplex_iterations: usize,
    /// Whether the reduced solve reused the previous budget's basis.
    pub warm_used: bool,
}

/// Which side of the bipartite extended matrix a global color aggregates.
#[derive(Clone, Copy, Debug)]
enum ColorKind {
    /// Reduced row with this local index.
    Row(u32),
    /// Reduced column with this local index.
    Col(u32),
    /// The pinned objective row / rhs column (never split).
    Pinned,
}

/// Public mirror of the global-color classification, exposed through
/// [`LpDeltaSnapshot`] so the persistence layer can serialize it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReducedLpColorKind {
    /// Reduced row with this local index.
    Row(u32),
    /// Reduced column with this local index.
    Col(u32),
    /// The pinned objective row / rhs column (never split).
    Pinned,
}

/// A [`ReducedLpDelta`]'s complete logical state minus the problem it
/// borrows, captured by [`ReducedLpDelta::snapshot`] and restored by
/// [`ReducedLpDelta::from_snapshot`] against the *same* [`LpProblem`]
/// (the column-major copy of `A` is rebuilt from the problem rather than
/// stored — it is redundant with it). The pending dirty rows/columns are
/// included in exact order, for the same reason as
/// `qsc_core::reduced::ReducedSnapshot`: un-drained dirtiness must
/// survive a restore or the next re-emission misses updates.
#[derive(Clone, Debug, PartialEq)]
pub struct LpDeltaSnapshot {
    /// Per original row: its reduced (local) row color.
    pub row_local: Vec<u32>,
    /// Per original column: its reduced (local) column color.
    pub col_local: Vec<u32>,
    /// Per global partition color: what it aggregates.
    pub kind_of_global: Vec<ReducedLpColorKind>,
    /// Tight row-major `num_rows × num_cols` aggregate of `A`.
    pub a_sum: Vec<f64>,
    /// Per reduced row: aggregate of `b`.
    pub b_sum: Vec<f64>,
    /// Per reduced column: aggregate of `c`.
    pub c_sum: Vec<f64>,
    /// Original rows per reduced row.
    pub row_sizes: Vec<usize>,
    /// Original columns per reduced column.
    pub col_sizes: Vec<usize>,
    /// Pending dirty reduced rows, in first-dirtied order.
    pub dirty_rows: Vec<u32>,
    /// Pending dirty reduced columns, in first-dirtied order.
    pub dirty_cols: Vec<u32>,
}

/// Incrementally maintained reduced-LP aggregates: `A`, `b`, `c` summed by
/// (row color × column color), patched per [`SplitEvent`] of the
/// extended-matrix coloring in `O(nnz(moved))`.
pub struct ReducedLpDelta<'p> {
    problem: &'p LpProblem,
    /// Per original row/column: its reduced (local) color.
    row_local: Vec<u32>,
    col_local: Vec<u32>,
    /// Per *global* partition color: what it aggregates.
    kind_of_global: Vec<ColorKind>,
    /// `a_sum[r][s] = Σ A(i,j)` over rows `i` of color `r`, columns `j` of
    /// color `s`.
    a_sum: Vec<Vec<f64>>,
    b_sum: Vec<f64>,
    c_sum: Vec<f64>,
    row_sizes: Vec<usize>,
    col_sizes: Vec<usize>,
    /// Column-major copy of `A` for column splits.
    csc: Vec<Vec<(u32, f64)>>,
    /// Reduced rows / columns whose aggregates or sizes changed since the
    /// last [`Self::take_dirty`] — a row split touches only the parent and
    /// child reduced rows, a column split only the parent and child
    /// reduced columns, so [`PatchedReducedLp`] can re-emit in
    /// `O(dirty · k)` instead of the dense `O(k·l)` sweep.
    dirty_rows: Vec<u32>,
    dirty_row_flag: Vec<bool>,
    dirty_cols: Vec<u32>,
    dirty_col_flag: Vec<bool>,
}

impl<'p> ReducedLpDelta<'p> {
    /// Build the single-color aggregates (every row in reduced row 0, every
    /// column in reduced column 0), matching the sweep's pinned initial
    /// partition.
    pub fn new(problem: &'p LpProblem) -> Self {
        let m = problem.num_rows();
        let n = problem.num_cols();
        let mut csc: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut a_total = 0.0f64;
        for (i, j, v) in problem.a.triplets() {
            csc[j as usize].push((i, v));
            a_total += v;
        }
        ReducedLpDelta {
            problem,
            row_local: vec![0; m],
            col_local: vec![0; n],
            // Global colors of the initial partition: 0 = constraint rows,
            // 1 = objective row, 2 = columns, 3 = rhs column.
            kind_of_global: vec![
                ColorKind::Row(0),
                ColorKind::Pinned,
                ColorKind::Col(0),
                ColorKind::Pinned,
            ],
            a_sum: vec![vec![a_total]],
            b_sum: vec![problem.b.iter().sum()],
            c_sum: vec![problem.c.iter().sum()],
            row_sizes: vec![m],
            col_sizes: vec![n],
            csc,
            dirty_rows: vec![0],
            dirty_row_flag: vec![true],
            dirty_cols: vec![0],
            dirty_col_flag: vec![true],
        }
    }

    /// Capture the complete logical state for persistence; see
    /// [`LpDeltaSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> LpDeltaSnapshot {
        let cols = self.col_sizes.len();
        let mut a_sum = Vec::with_capacity(self.row_sizes.len() * cols);
        for row in &self.a_sum {
            debug_assert_eq!(row.len(), cols);
            a_sum.extend_from_slice(row);
        }
        LpDeltaSnapshot {
            row_local: self.row_local.clone(),
            col_local: self.col_local.clone(),
            kind_of_global: self
                .kind_of_global
                .iter()
                .map(|k| match k {
                    ColorKind::Row(r) => ReducedLpColorKind::Row(*r),
                    ColorKind::Col(s) => ReducedLpColorKind::Col(*s),
                    ColorKind::Pinned => ReducedLpColorKind::Pinned,
                })
                .collect(),
            a_sum,
            b_sum: self.b_sum.clone(),
            c_sum: self.c_sum.clone(),
            row_sizes: self.row_sizes.clone(),
            col_sizes: self.col_sizes.clone(),
            dirty_rows: self.dirty_rows.clone(),
            dirty_cols: self.dirty_cols.clone(),
        }
    }

    /// Rebuild from a snapshot against the problem it was captured from,
    /// bit-identical to the instance that produced it. The column-major
    /// copy of `A` is re-derived from `problem` exactly as [`Self::new`]
    /// builds it.
    ///
    /// # Panics
    /// On snapshots whose dimensions disagree with each other or with
    /// `problem` (the persistence layer validates untrusted bytes before
    /// constructing a snapshot; this is a backstop).
    #[must_use]
    pub fn from_snapshot(problem: &'p LpProblem, snap: &LpDeltaSnapshot) -> Self {
        let m = problem.num_rows();
        let n = problem.num_cols();
        assert_eq!(
            snap.row_local.len(),
            m,
            "lp snapshot row map length mismatch"
        );
        assert_eq!(
            snap.col_local.len(),
            n,
            "lp snapshot column map length mismatch"
        );
        let rows = snap.row_sizes.len();
        let cols = snap.col_sizes.len();
        assert_eq!(
            snap.a_sum.len(),
            rows * cols,
            "lp snapshot aggregate length mismatch"
        );
        assert_eq!(snap.b_sum.len(), rows, "lp snapshot b length mismatch");
        assert_eq!(snap.c_sum.len(), cols, "lp snapshot c length mismatch");
        let mut csc: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, j, v) in problem.a.triplets() {
            csc[j as usize].push((i, v));
        }
        let mut dirty_row_flag = vec![false; rows];
        for &r in &snap.dirty_rows {
            assert!((r as usize) < rows, "lp snapshot dirty row out of range");
            dirty_row_flag[r as usize] = true;
        }
        let mut dirty_col_flag = vec![false; cols];
        for &s in &snap.dirty_cols {
            assert!((s as usize) < cols, "lp snapshot dirty column out of range");
            dirty_col_flag[s as usize] = true;
        }
        ReducedLpDelta {
            problem,
            row_local: snap.row_local.clone(),
            col_local: snap.col_local.clone(),
            kind_of_global: snap
                .kind_of_global
                .iter()
                .map(|k| match k {
                    ReducedLpColorKind::Row(r) => ColorKind::Row(*r),
                    ReducedLpColorKind::Col(s) => ColorKind::Col(*s),
                    ReducedLpColorKind::Pinned => ColorKind::Pinned,
                })
                .collect(),
            a_sum: snap
                .a_sum
                .chunks(cols.max(1))
                .map(<[f64]>::to_vec)
                .collect(),
            b_sum: snap.b_sum.clone(),
            c_sum: snap.c_sum.clone(),
            row_sizes: snap.row_sizes.clone(),
            col_sizes: snap.col_sizes.clone(),
            csc,
            dirty_rows: snap.dirty_rows.clone(),
            dirty_row_flag,
            dirty_cols: snap.dirty_cols.clone(),
            dirty_col_flag,
        }
    }

    /// Take the reduced rows and columns dirtied since the last call (in
    /// first-dirtied order), clearing the dirty state.
    pub fn take_dirty(&mut self) -> (Vec<u32>, Vec<u32>) {
        for &r in &self.dirty_rows {
            self.dirty_row_flag[r as usize] = false;
        }
        for &s in &self.dirty_cols {
            self.dirty_col_flag[s as usize] = false;
        }
        (
            std::mem::take(&mut self.dirty_rows),
            std::mem::take(&mut self.dirty_cols),
        )
    }

    fn mark_dirty_row(&mut self, r: u32) {
        if self.dirty_row_flag.len() <= r as usize {
            self.dirty_row_flag.resize(r as usize + 1, false);
        }
        if !self.dirty_row_flag[r as usize] {
            self.dirty_row_flag[r as usize] = true;
            self.dirty_rows.push(r);
        }
    }

    fn mark_dirty_col(&mut self, s: u32) {
        if self.dirty_col_flag.len() <= s as usize {
            self.dirty_col_flag.resize(s as usize + 1, false);
        }
        if !self.dirty_col_flag[s as usize] {
            self.dirty_col_flag[s as usize] = true;
            self.dirty_cols.push(s);
        }
    }

    /// Rows of the reduced LP.
    pub fn num_rows(&self) -> usize {
        self.row_sizes.len()
    }

    /// Columns of the reduced LP.
    pub fn num_cols(&self) -> usize {
        self.col_sizes.len()
    }

    /// Patch the aggregates for one split of the extended-matrix coloring.
    /// Events must be applied in order. Cost: `O(nnz(moved rows/columns))`.
    pub fn apply_split(&mut self, event: &SplitEvent) {
        let m = self.problem.num_rows();
        let kind = self.kind_of_global[event.parent as usize];
        debug_assert_eq!(event.child as usize, self.kind_of_global.len());
        match kind {
            ColorKind::Row(parent) => {
                let child = self.row_sizes.len() as u32;
                self.kind_of_global.push(ColorKind::Row(child));
                let cols = self.col_sizes.len();
                self.a_sum.push(vec![0.0; cols]);
                self.b_sum.push(0.0);
                self.row_sizes.push(0);
                let p = parent as usize;
                let c = child as usize;
                for &node in &event.moved_nodes {
                    let i = node as usize; // row nodes are ids 0..m
                    debug_assert!(i < m, "row split moved a non-row node");
                    for (j, v) in self.problem.a.row(i) {
                        let s = self.col_local[j as usize] as usize;
                        self.a_sum[p][s] -= v;
                        self.a_sum[c][s] += v;
                    }
                    self.b_sum[p] -= self.problem.b[i];
                    self.b_sum[c] += self.problem.b[i];
                    self.row_local[i] = child;
                }
                self.row_sizes[p] -= event.moved_nodes.len();
                self.row_sizes[c] = event.moved_nodes.len();
                self.mark_dirty_row(parent);
                self.mark_dirty_row(child);
            }
            ColorKind::Col(parent) => {
                let child = self.col_sizes.len() as u32;
                self.kind_of_global.push(ColorKind::Col(child));
                for row in self.a_sum.iter_mut() {
                    row.push(0.0);
                }
                self.c_sum.push(0.0);
                self.col_sizes.push(0);
                let p = parent as usize;
                let c = child as usize;
                for &node in &event.moved_nodes {
                    // Column nodes are ids m+1 .. m+1+n.
                    let j = node as usize - (m + 1);
                    for &(i, v) in &self.csc[j] {
                        let r = self.row_local[i as usize] as usize;
                        self.a_sum[r][p] -= v;
                        self.a_sum[r][c] += v;
                    }
                    self.c_sum[p] -= self.problem.c[j];
                    self.c_sum[c] += self.problem.c[j];
                    self.col_local[j] = child;
                }
                self.col_sizes[p] -= event.moved_nodes.len();
                self.col_sizes[c] = event.moved_nodes.len();
                self.mark_dirty_col(parent);
                self.mark_dirty_col(child);
            }
            ColorKind::Pinned => unreachable!("pinned singleton colors are never split"),
        }
    }

    /// Patch the aggregates for one merge of the extended-matrix coloring —
    /// the dual of [`Self::apply_split`]. Both global colors must aggregate
    /// the same side of the bipartite matrix (two reduced rows or two
    /// reduced columns; merging across sides or into a pinned color is a
    /// logic error and panics). `O(k + l)`: the loser's aggregates fold
    /// into the winner's and the local/global last ids relabel into the
    /// freed slots. Dirty marks follow the `qsc_core::reduced::ReducedDelta` convention —
    /// an id at or past the new count marks a removed reduced row/column.
    pub fn apply_merge(&mut self, event: &MergeEvent) {
        let m = self.problem.num_rows();
        let kinds = (
            self.kind_of_global[event.winner as usize],
            self.kind_of_global[event.loser as usize],
        );
        // Global relabel: swap_remove is exactly "last takes the loser's
        // slot".
        debug_assert_eq!(
            event.relabeled,
            (event.loser as usize != self.kind_of_global.len() - 1)
                .then_some(self.kind_of_global.len() as u32 - 1)
        );
        self.kind_of_global.swap_remove(event.loser as usize);
        match kinds {
            (ColorKind::Row(winner), ColorKind::Row(loser)) => {
                let w = winner as usize;
                let l = loser as usize;
                let last = self.row_sizes.len() - 1;
                let folded = std::mem::take(&mut self.a_sum[l]);
                lanes::fold_add(&mut self.a_sum[w], &folded);
                self.b_sum[w] += self.b_sum[l];
                self.row_sizes[w] += self.row_sizes[l];
                for &node in &event.moved_nodes {
                    debug_assert!((node as usize) < m, "row merge moved a non-row node");
                    self.row_local[node as usize] = winner;
                }
                // Relabel local last -> l.
                self.a_sum.swap_remove(l);
                self.b_sum.swap_remove(l);
                self.row_sizes.swap_remove(l);
                if l != last {
                    for slot in self.row_local.iter_mut() {
                        if *slot == last as u32 {
                            *slot = loser;
                        }
                    }
                    // The relabeled local id keeps its global color: fix
                    // the global record that pointed at the old local last.
                    for kind in self.kind_of_global.iter_mut() {
                        if let ColorKind::Row(r) = kind {
                            if *r == last as u32 {
                                *r = loser;
                            }
                        }
                    }
                    self.mark_dirty_row(loser);
                }
                self.mark_dirty_row(winner);
                self.mark_dirty_row(last as u32);
            }
            (ColorKind::Col(winner), ColorKind::Col(loser)) => {
                let w = winner as usize;
                let l = loser as usize;
                let last = self.col_sizes.len() - 1;
                for row in self.a_sum.iter_mut() {
                    row[w] += row[l];
                    row.swap_remove(l);
                }
                self.c_sum[w] += self.c_sum[l];
                self.col_sizes[w] += self.col_sizes[l];
                for &node in &event.moved_nodes {
                    let j = node as usize - (m + 1);
                    self.col_local[j] = winner;
                }
                self.c_sum.swap_remove(l);
                self.col_sizes.swap_remove(l);
                if l != last {
                    for slot in self.col_local.iter_mut() {
                        if *slot == last as u32 {
                            *slot = loser;
                        }
                    }
                    for kind in self.kind_of_global.iter_mut() {
                        if let ColorKind::Col(s) = kind {
                            if *s == last as u32 {
                                *s = loser;
                            }
                        }
                    }
                    self.mark_dirty_col(loser);
                }
                self.mark_dirty_col(winner);
                self.mark_dirty_col(last as u32);
            }
            _ => panic!("LP merges must combine two reduced rows or two reduced columns"),
        }
    }

    /// Build the reduced problem from the maintained aggregates with the
    /// given weighting variant — `O(k·l)`, no rescan of the original LP.
    /// Same construction as [`crate::reduce::reduce_lp`], modulo the
    /// sweep's color numbering.
    pub fn reduced_problem(&self, variant: LpReductionVariant) -> LpProblem {
        let k = self.num_rows();
        let l = self.num_cols();
        let mut triplets = Vec::new();
        for r in 0..k {
            for s in 0..l {
                let scaled = self.scaled_entry(variant, r, s);
                if scaled != 0.0 {
                    triplets.push((r as u32, s as u32, scaled));
                }
            }
        }
        let b_hat: Vec<f64> = (0..k).map(|r| self.scaled_b(variant, r)).collect();
        let c_hat: Vec<f64> = (0..l).map(|s| self.scaled_c(variant, s)).collect();
        LpProblem::new(
            format!("{}-sweep-{}x{}", self.problem.name, k, l),
            SparseMatrix::from_triplets(k, l, &triplets),
            b_hat,
            c_hat,
        )
    }

    /// Scaled reduced-matrix entry `(r, s)` under `variant` (the
    /// [`Self::reduced_problem`] formula).
    fn scaled_entry(&self, variant: LpReductionVariant, r: usize, s: usize) -> f64 {
        let v = self.a_sum[r][s];
        if v == 0.0 {
            return 0.0;
        }
        match variant {
            LpReductionVariant::SqrtNormalized => {
                v / ((self.row_sizes[r] * self.col_sizes[s]) as f64).sqrt()
            }
            LpReductionVariant::GroheAverage => v / self.col_sizes[s] as f64,
        }
    }

    /// Scaled reduced rhs entry `r` under `variant`.
    fn scaled_b(&self, variant: LpReductionVariant, r: usize) -> f64 {
        match variant {
            LpReductionVariant::SqrtNormalized => self.b_sum[r] / (self.row_sizes[r] as f64).sqrt(),
            LpReductionVariant::GroheAverage => self.b_sum[r],
        }
    }

    /// Scaled reduced objective entry `s` under `variant`.
    fn scaled_c(&self, variant: LpReductionVariant, s: usize) -> f64 {
        match variant {
            LpReductionVariant::SqrtNormalized => self.c_sum[s] / (self.col_sizes[s] as f64).sqrt(),
            LpReductionVariant::GroheAverage => self.c_sum[s] / self.col_sizes[s] as f64,
        }
    }

    /// Cross-check the maintained aggregates against a from-scratch
    /// re-aggregation under the current row/column coloring.
    pub fn verify(&self) -> Result<(), String> {
        let k = self.num_rows();
        let l = self.num_cols();
        let mut a_fresh = vec![0.0f64; k * l];
        for (i, j, v) in self.problem.a.triplets() {
            a_fresh
                [self.row_local[i as usize] as usize * l + self.col_local[j as usize] as usize] +=
                v;
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        for r in 0..k {
            for s in 0..l {
                if !close(self.a_sum[r][s], a_fresh[r * l + s]) {
                    return Err(format!(
                        "a_sum[{r}][{s}]: delta {} vs scratch {}",
                        self.a_sum[r][s],
                        a_fresh[r * l + s]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The incrementally *emitted* reduced LP: the scaled sparse rows, rhs and
/// objective a [`ReducedLpDelta::reduced_problem`] call would produce,
/// patched in place per checkpoint from the delta's dirty rows/columns
/// (`O(dirty · k)`) instead of re-derived with the dense `O(k·l)` sweep —
/// the LP twin of `qsc_core::reduced::PatchedReducedGraph`. Values are
/// computed by the same formulas on the same aggregates, so the emitted
/// problem is identical to the re-derived one (entry predicate
/// `a_sum != 0`, row-major order included).
pub struct PatchedReducedLp {
    variant: LpReductionVariant,
    /// Scaled entries per reduced row, sorted by reduced column.
    rows: Vec<Vec<(u32, f64)>>,
    b_hat: Vec<f64>,
    c_hat: Vec<f64>,
}

impl PatchedReducedLp {
    /// Build the emitted instance from the delta's current aggregates
    /// (full sweep, once) and clear its dirty state.
    pub fn new(delta: &mut ReducedLpDelta<'_>, variant: LpReductionVariant) -> Self {
        delta.take_dirty();
        let k = delta.num_rows();
        let l = delta.num_cols();
        let mut emitter = PatchedReducedLp {
            variant,
            rows: Vec::with_capacity(k),
            b_hat: (0..k).map(|r| delta.scaled_b(variant, r)).collect(),
            c_hat: (0..l).map(|s| delta.scaled_c(variant, s)).collect(),
        };
        for r in 0..k {
            let row = emitter.build_row(delta, r);
            emitter.rows.push(row);
        }
        emitter
    }

    /// Re-synchronize with the delta: rebuild dirty rows (including rows
    /// of freshly split colors) and patch dirty columns in the clean rows.
    /// A dirty id at or past the current row/column count marks a reduced
    /// row/column removed by a merge: its row is dropped by the resize and
    /// its column is deleted from every clean row.
    pub fn sync(&mut self, delta: &mut ReducedLpDelta<'_>) {
        let k = delta.num_rows();
        let l = delta.num_cols();
        let (dirty_rows, dirty_cols) = delta.take_dirty();
        self.rows.resize_with(k, Vec::new);
        self.b_hat.resize(k, 0.0);
        self.c_hat.resize(l, 0.0);
        let mut row_is_dirty = vec![false; k];
        for &r in &dirty_rows {
            if (r as usize) >= k {
                continue; // removed reduced row: dropped by the resize
            }
            row_is_dirty[r as usize] = true;
            let row = self.build_row(delta, r as usize);
            self.rows[r as usize] = row;
            self.b_hat[r as usize] = delta.scaled_b(self.variant, r as usize);
        }
        for &s in &dirty_cols {
            if (s as usize) < l {
                self.c_hat[s as usize] = delta.scaled_c(self.variant, s as usize);
            }
        }
        for (r, row) in self.rows.iter_mut().enumerate() {
            if row_is_dirty[r] {
                continue;
            }
            for &s in &dirty_cols {
                let w = if (s as usize) >= l {
                    0.0 // removed reduced column: delete it
                } else {
                    delta.scaled_entry(self.variant, r, s as usize)
                };
                qsc_core::reduced::patch_sorted_row(row, s, w);
            }
        }
    }

    /// Emit the reduced problem (`O(nnz)`; same name, values and triplet
    /// order as [`ReducedLpDelta::reduced_problem`]).
    pub fn to_problem(&self, name: &str) -> LpProblem {
        let k = self.rows.len();
        let l = self.c_hat.len();
        let mut triplets = Vec::new();
        for (r, row) in self.rows.iter().enumerate() {
            for &(s, w) in row {
                triplets.push((r as u32, s, w));
            }
        }
        LpProblem::new(
            format!("{}-sweep-{}x{}", name, k, l),
            SparseMatrix::from_triplets(k, l, &triplets),
            self.b_hat.clone(),
            self.c_hat.clone(),
        )
    }

    fn build_row(&self, delta: &ReducedLpDelta<'_>, r: usize) -> Vec<(u32, f64)> {
        let l = delta.num_cols();
        let mut row = Vec::new();
        for s in 0..l {
            let w = delta.scaled_entry(self.variant, r, s);
            if w != 0.0 {
                row.push((s as u32, w));
            }
        }
        row
    }
}

/// Sweep the coloring-based LP reduction over `budgets` (non-decreasing;
/// each is clamped to at least 4 for the two reserved colors plus one row
/// and one column color), solving each reduced problem with a warm-started
/// simplex.
pub fn sweep_lp(
    problem: &LpProblem,
    budgets: &[usize],
    config: &LpColoringConfig,
    variant: LpReductionVariant,
) -> Vec<LpSweepPoint> {
    assert!(
        budgets.windows(2).all(|w| w[1] >= w[0]),
        "sweep budgets must be non-decreasing (the sweep only refines)"
    );
    let (graph, initial) = coloring_graph(problem);
    let rothko_config = RothkoConfig {
        max_colors: config.max_colors.max(4),
        target_error: config.target_error,
        alpha: config.alpha,
        beta: config.beta,
        split_mean: config.split_mean,
        initial: Some(initial),
        ..Default::default()
    };
    let mut sweep = ColoringSweep::new(&graph, rothko_config);
    let mut delta = ReducedLpDelta::new(problem);
    let mut emitter = PatchedReducedLp::new(&mut delta, variant);
    let simplex_config = SimplexConfig::default();
    let mut basis: Option<SimplexBasis> = None;
    // qsc-audit: allow(no-wallclock-in-results) -- feeds only the reported elapsed_ms metric; objectives, bases and colorings are pure functions of the instance
    let start = Instant::now();
    budgets
        .iter()
        .map(|&budget| {
            let checkpoint = sweep.advance_to(budget.max(4), |_, ev| delta.apply_split(ev));
            // Patch the emitted reduced LP in place: only rows/columns the
            // splits since the last checkpoint dirtied are re-derived.
            emitter.sync(&mut delta);
            let reduced = emitter.to_problem(&problem.name);
            let warm = simplex::solve_warm(&reduced, &simplex_config, basis.as_ref());
            basis = warm.basis;
            LpSweepPoint {
                budget,
                rows: delta.num_rows(),
                cols: delta.num_cols(),
                objective: warm.solution.objective,
                status: warm.solution.status,
                max_q_error: checkpoint.max_q_error,
                cumulative_seconds: start.elapsed().as_secs_f64(),
                simplex_iterations: warm.solution.iterations,
                warm_used: warm.warm_used,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::reduce_with_rothko;

    fn block_problem(seed: u64) -> LpProblem {
        crate::generators::block_lp(&crate::generators::BlockLpSpec {
            name: format!("sweep-block-{seed}"),
            block_rows: 3,
            block_cols: 3,
            rows_per_block: 5,
            cols_per_block: 4,
            density: 0.8,
            noise: 0.05,
            seed,
        })
    }

    #[test]
    fn sweep_objectives_match_cold_reductions() {
        let lp = block_problem(3);
        let budgets = [6usize, 10, 16, 24];
        let config = LpColoringConfig::with_max_colors(usize::MAX);
        let points = sweep_lp(&lp, &budgets, &config, LpReductionVariant::SqrtNormalized);
        assert_eq!(points.len(), budgets.len());
        for (point, &budget) in points.iter().zip(budgets.iter()) {
            let cold_reduced = reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(budget),
                LpReductionVariant::SqrtNormalized,
            );
            let cold = simplex::solve(&cold_reduced.problem);
            assert_eq!(point.rows, cold_reduced.num_rows(), "budget {budget}");
            assert_eq!(point.cols, cold_reduced.num_cols(), "budget {budget}");
            assert_eq!(point.status, cold.status, "budget {budget}");
            assert!(
                (point.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "budget {budget}: warm {} vs cold {}",
                point.objective,
                cold.objective
            );
        }
        // Later budgets reuse the earlier basis at least once.
        assert!(points.iter().skip(1).any(|p| p.warm_used));
    }

    #[test]
    fn delta_tracks_splits_exactly() {
        let lp = block_problem(9);
        let budgets = [5usize, 9, 15];
        let config = LpColoringConfig::with_max_colors(usize::MAX);
        let (graph, initial) = coloring_graph(&lp);
        let rothko_config = RothkoConfig {
            max_colors: usize::MAX,
            alpha: config.alpha,
            beta: config.beta,
            initial: Some(initial),
            ..Default::default()
        };
        let mut sweep = ColoringSweep::new(&graph, rothko_config);
        let mut delta = ReducedLpDelta::new(&lp);
        for &b in &budgets {
            sweep.advance_to(b, |_, ev| delta.apply_split(ev));
            assert_eq!(delta.verify(), Ok(()));
            let sizes: usize = delta.row_sizes.iter().sum();
            assert_eq!(sizes, lp.num_rows());
            let sizes: usize = delta.col_sizes.iter().sum();
            assert_eq!(sizes, lp.num_cols());
        }
    }

    #[test]
    fn merges_keep_patched_emission_identical_to_dense() {
        // Refine the extended-matrix coloring, then coarsen it back by
        // merging row colors and column colors: the patched emitted LP must
        // stay identical to the dense re-derivation at every step, and the
        // aggregates must match a from-scratch re-aggregation.
        let lp = block_problem(13);
        let (graph, initial) = coloring_graph(&lp);
        let rothko_config = RothkoConfig {
            max_colors: usize::MAX,
            initial: Some(initial),
            ..Default::default()
        };
        let mut sweep = ColoringSweep::new(&graph, rothko_config);
        let mut delta = ReducedLpDelta::new(&lp);
        sweep.advance_to(12, |_, ev| delta.apply_split(ev));
        let mut emitter = PatchedReducedLp::new(&mut delta, LpReductionVariant::SqrtNormalized);
        let mut p = sweep.partition().clone();
        // Merge compatible (same-kind, unpinned) global color pairs until
        // none are left. Kinds mirror ReducedLpDelta's bookkeeping: row
        // nodes are ids 0..m, column nodes m+1..m+1+n.
        let m = lp.num_rows();
        loop {
            let k = p.num_colors() as u32;
            let kind_of = |p: &qsc_core::Partition, c: u32| {
                let node = p.members(c)[0] as usize;
                if p.size(c) == 1 && (node == m || node == m + 1 + lp.num_cols()) {
                    2 // pinned objective row / rhs column
                } else if node < m {
                    0
                } else {
                    1
                }
            };
            let mut pair = None;
            'outer: for a in 0..k {
                for b in (a + 1)..k {
                    let (ka, kb) = (kind_of(&p, a), kind_of(&p, b));
                    if ka == kb && ka != 2 {
                        pair = Some((a, b));
                        break 'outer;
                    }
                }
            }
            let Some((a, b)) = pair else { break };
            let ev = p.merge_colors(a, b);
            delta.apply_merge(&ev);
            assert_eq!(delta.verify(), Ok(()));
            emitter.sync(&mut delta);
            let patched = emitter.to_problem(&lp.name);
            let dense = delta.reduced_problem(LpReductionVariant::SqrtNormalized);
            assert_eq!(patched.num_rows(), dense.num_rows());
            assert_eq!(patched.num_cols(), dense.num_cols());
            assert_eq!(patched.b, dense.b);
            assert_eq!(patched.c, dense.c);
            let pt: Vec<_> = patched.a.triplets().collect();
            let dt: Vec<_> = dense.a.triplets().collect();
            assert_eq!(pt, dt);
        }
        assert_eq!(delta.num_rows(), 1);
        assert_eq!(delta.num_cols(), 1);
    }

    #[test]
    fn grohe_variant_sweep_is_consistent() {
        let lp = block_problem(5);
        let points = sweep_lp(
            &lp,
            &[6, 12],
            &LpColoringConfig::with_max_colors(usize::MAX),
            LpReductionVariant::GroheAverage,
        );
        for p in &points {
            assert_eq!(p.status, LpStatus::Optimal);
            assert!(p.objective.is_finite());
        }
    }
}
