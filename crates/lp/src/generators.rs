//! Structured LP generators.
//!
//! The paper evaluates on four Mittelmann-benchmark LPs (`qap15`,
//! `nug08-3rd`, `supportcase10`, `ex10`; Table 3). Those files are external
//! downloads, so this module provides seeded generators producing LPs with
//! the same *structural* property that makes them compressible: constraint
//! matrices containing blocks of near-identical rows and columns. See
//! `DESIGN.md` ("Substitutions") for the mapping.
//!
//! All generated problems are feasible (the origin is feasible: `b > 0`) and
//! bounded (every variable has a positive coefficient in some constraint).

use crate::problem::LpProblem;
use qsc_linalg::SparseMatrix;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Specification of a block-structured LP.
#[derive(Clone, Debug)]
pub struct BlockLpSpec {
    /// Problem name.
    pub name: String,
    /// Number of row blocks.
    pub block_rows: usize,
    /// Number of column blocks.
    pub block_cols: usize,
    /// Rows per block.
    pub rows_per_block: usize,
    /// Columns per block.
    pub cols_per_block: usize,
    /// Probability that a (row-block, column-block) pair is non-zero.
    pub density: f64,
    /// Relative perturbation applied to every expanded coefficient
    /// (`0.0` yields an exactly block-constant, perfectly compressible LP).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate a block-structured LP: a small random "blueprint" LP expanded by
/// replicating each row and column `rows_per_block` / `cols_per_block` times
/// with bounded multiplicative noise. With `noise = 0` the blueprint
/// partition is a stable coloring of the extended matrix; with small noise it
/// is a q-stable coloring for small q.
pub fn block_lp(spec: &BlockLpSpec) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let m = spec.block_rows * spec.rows_per_block;
    let n = spec.block_cols * spec.cols_per_block;

    // Blueprint coefficients.
    let mut base = vec![0.0f64; spec.block_rows * spec.block_cols];
    for bi in 0..spec.block_rows {
        for bj in 0..spec.block_cols {
            if rng.random::<f64>() < spec.density {
                base[bi * spec.block_cols + bj] = 0.5 + 1.5 * rng.random::<f64>();
            }
        }
    }
    // Guarantee boundedness: every column block needs a positive entry.
    for bj in 0..spec.block_cols {
        if (0..spec.block_rows).all(|bi| base[bi * spec.block_cols + bj] == 0.0) {
            let bi = rng.random_range(0..spec.block_rows);
            base[bi * spec.block_cols + bj] = 1.0;
        }
    }
    let base_b: Vec<f64> = (0..spec.block_rows)
        .map(|_| (5.0 + 10.0 * rng.random::<f64>()) * spec.cols_per_block as f64)
        .collect();
    let base_c: Vec<f64> = (0..spec.block_cols)
        .map(|_| 1.0 + 4.0 * rng.random::<f64>())
        .collect();

    let mut triplets = Vec::new();
    let perturb = |rng: &mut StdRng, noise: f64| 1.0 + noise * (2.0 * rng.random::<f64>() - 1.0);
    for bi in 0..spec.block_rows {
        for r in 0..spec.rows_per_block {
            let row = (bi * spec.rows_per_block + r) as u32;
            for bj in 0..spec.block_cols {
                let v = base[bi * spec.block_cols + bj];
                if v == 0.0 {
                    continue;
                }
                for c in 0..spec.cols_per_block {
                    let col = (bj * spec.cols_per_block + c) as u32;
                    triplets.push((row, col, v * perturb(&mut rng, spec.noise)));
                }
            }
        }
    }
    let b: Vec<f64> = (0..m)
        .map(|i| base_b[i / spec.rows_per_block] * perturb(&mut rng, spec.noise))
        .collect();
    let c: Vec<f64> = (0..n)
        .map(|j| base_c[j / spec.cols_per_block] * perturb(&mut rng, spec.noise))
        .collect();

    LpProblem::new(
        spec.name.clone(),
        SparseMatrix::from_triplets(m, n, &triplets),
        b,
        c,
    )
}

/// Assignment-polytope style LP (stand-in for the QAP linearizations `qap15`
/// and `nug08-3rd`): variables `x_{ij}` for an `size × size` assignment,
/// constraints `Σ_j x_ij ≤ 1` and `Σ_i x_ij ≤ 1`, objective coefficients
/// depending smoothly on `|i − j|` plus noise. The constraint matrix consists
/// of two groups of structurally identical rows, which is exactly the
/// block-regular structure quasi-stable coloring exploits.
pub fn assignment_like(size: usize, noise: f64, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = size * size;
    let m = 2 * size;
    let var = |i: usize, j: usize| (i * size + j) as u32;
    let mut triplets = Vec::with_capacity(2 * n);
    for i in 0..size {
        for j in 0..size {
            triplets.push((i as u32, var(i, j), 1.0));
            triplets.push(((size + j) as u32, var(i, j), 1.0));
        }
    }
    let b = vec![1.0; m];
    let mut c = vec![0.0; n];
    for i in 0..size {
        for j in 0..size {
            let dist = (i as f64 - j as f64).abs();
            let value = 10.0 / (1.0 + dist) + noise * rng.random::<f64>();
            c[i * size + j] = value;
        }
    }
    LpProblem::new(
        format!("assignment-{size}"),
        SparseMatrix::from_triplets(m, n, &triplets),
        b,
        c,
    )
}

/// Covering/packing style LP with many more columns than rows (stand-in for
/// `supportcase10`, which has 1.4M columns and 10.7K rows): maximize the
/// total activity of `cols` columns subject to `rows` shared capacity
/// constraints. Columns come in a small number of repeated "types" plus
/// noise.
pub fn covering_like(
    rows: usize,
    cols: usize,
    col_types: usize,
    noise: f64,
    seed: u64,
) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let col_types = col_types.max(1);
    // Each column type touches a random subset of rows with unit-ish weight.
    let mut type_rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(col_types);
    for _ in 0..col_types {
        let touches = (rows / 4).max(1);
        let mut rows_touched: Vec<u32> = (0..rows as u32).collect();
        rows_touched.shuffle(&mut rng);
        rows_touched.truncate(touches);
        rows_touched.sort_unstable();
        type_rows.push(
            rows_touched
                .into_iter()
                .map(|r| (r, 0.5 + rng.random::<f64>()))
                .collect(),
        );
    }
    let mut triplets = Vec::new();
    let mut c = Vec::with_capacity(cols);
    let perturb = |rng: &mut StdRng| 1.0 + noise * (2.0 * rng.random::<f64>() - 1.0);
    for j in 0..cols {
        let ty = j % col_types;
        for &(r, v) in &type_rows[ty] {
            triplets.push((r, j as u32, v * perturb(&mut rng)));
        }
        c.push((1.0 + ty as f64 * 0.1) * perturb(&mut rng));
    }
    let b = vec![cols as f64 / 10.0; rows];
    LpProblem::new(
        format!("covering-{rows}x{cols}"),
        SparseMatrix::from_triplets(rows, cols, &triplets),
        b,
        c,
    )
}

/// Transportation-style LP (stand-in for `ex10`): suppliers ship to
/// consumers; supply and demand rows, shipping-cost objective. Suppliers and
/// consumers come in a few capacity classes, so rows within a class are
/// near-identical.
pub fn transport_like(suppliers: usize, consumers: usize, classes: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = classes.max(1);
    let n = suppliers * consumers;
    let m = suppliers + consumers;
    let var = |s: usize, t: usize| (s * consumers + t) as u32;
    let mut triplets = Vec::with_capacity(2 * n);
    for s in 0..suppliers {
        for t in 0..consumers {
            triplets.push((s as u32, var(s, t), 1.0));
            triplets.push(((suppliers + t) as u32, var(s, t), 1.0));
        }
    }
    let mut b = Vec::with_capacity(m);
    for s in 0..suppliers {
        let class = s % classes;
        b.push(20.0 + 10.0 * class as f64 + rng.random::<f64>());
    }
    for t in 0..consumers {
        let class = t % classes;
        b.push(15.0 + 5.0 * class as f64 + rng.random::<f64>());
    }
    let mut c = Vec::with_capacity(n);
    for s in 0..suppliers {
        for t in 0..consumers {
            let sc = s % classes;
            let tc = t % classes;
            c.push(1.0 + ((sc + tc) as f64) * 0.5 + 0.05 * rng.random::<f64>());
        }
    }
    LpProblem::new(
        format!("transport-{suppliers}x{consumers}"),
        SparseMatrix::from_triplets(m, n, &triplets),
        b,
        c,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpStatus;
    use crate::simplex;

    #[test]
    fn block_lp_dimensions_and_feasibility() {
        let lp = block_lp(&BlockLpSpec {
            name: "t".into(),
            block_rows: 3,
            block_cols: 2,
            rows_per_block: 4,
            cols_per_block: 5,
            density: 0.8,
            noise: 0.1,
            seed: 1,
        });
        assert_eq!(lp.num_rows(), 12);
        assert_eq!(lp.num_cols(), 10);
        assert!(lp.is_feasible(&[0.0; 10], 0.0));
        let sol = simplex::solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn block_lp_zero_noise_is_perfectly_compressible() {
        let lp = block_lp(&BlockLpSpec {
            name: "t0".into(),
            block_rows: 3,
            block_cols: 2,
            rows_per_block: 4,
            cols_per_block: 4,
            density: 1.0,
            noise: 0.0,
            seed: 2,
        });
        // All rows within a block are identical.
        let dense = lp.a.to_dense();
        for block in 0..3 {
            let base = block * 4;
            for r in 1..4 {
                for c in 0..lp.num_cols() {
                    assert!((dense.get(base, c) - dense.get(base + r, c)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn block_lp_deterministic_for_seed() {
        let spec = BlockLpSpec {
            name: "det".into(),
            block_rows: 2,
            block_cols: 2,
            rows_per_block: 3,
            cols_per_block: 3,
            density: 0.9,
            noise: 0.2,
            seed: 99,
        };
        let a = block_lp(&spec);
        let b = block_lp(&spec);
        assert_eq!(a.b, b.b);
        assert_eq!(a.c, b.c);
        assert_eq!(a.num_nonzeros(), b.num_nonzeros());
    }

    #[test]
    fn assignment_lp_optimum_is_perfect_matching_value() {
        // With noise 0, the optimal LP value is size * 10 (match i to i).
        let lp = assignment_like(6, 0.0, 5);
        assert_eq!(lp.num_rows(), 12);
        assert_eq!(lp.num_cols(), 36);
        let sol = simplex::solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 60.0).abs() < 1e-6, "got {}", sol.objective);
    }

    #[test]
    fn covering_lp_solves_and_is_wide() {
        let lp = covering_like(10, 200, 4, 0.05, 8);
        assert_eq!(lp.num_rows(), 10);
        assert_eq!(lp.num_cols(), 200);
        let sol = simplex::solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.objective > 0.0);
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn transport_lp_bounded() {
        let lp = transport_like(8, 6, 3, 4);
        assert_eq!(lp.num_rows(), 14);
        assert_eq!(lp.num_cols(), 48);
        let sol = simplex::solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        // Optimal shipping bounded by total demand times max unit value.
        assert!(sol.objective.is_finite() && sol.objective > 0.0);
    }
}
