//! Primal-dual interior-point method (Mehrotra predictor–corrector).
//!
//! This is the stand-in for the Tulip interior-point solver used by the
//! paper, in two roles:
//!
//! * *exact baseline* — run to a tight duality-gap tolerance;
//! * *early-stopping baseline* (Table 1, bottom) — stop as soon as the
//!   primal/dual objective ratio certifies the requested relative error,
//!   mirroring "set a relative error and solve until that bound is met".
//!
//! Internally the problem `max cᵀx, Ax ≤ b, x ≥ 0` is converted to the
//! standard min-form `min fᵀz, Āz = b, z ≥ 0` with `z = [x; w]`,
//! `Ā = [A I]`, `f = [-c; 0]`, and the usual normal-equation Newton system
//! `(Ā D Āᵀ) Δλ = r` is solved with a dense Cholesky factorization.

use crate::problem::{LpProblem, LpSolution, LpStatus};
use qsc_linalg::{vec_ops, Cholesky, DenseMatrix, SparseMatrix};

/// Configuration of the interior-point solver.
#[derive(Clone, Debug)]
pub struct InteriorPointConfig {
    /// Convergence tolerance on the relative duality gap and residuals.
    pub tolerance: f64,
    /// Maximum number of interior-point iterations.
    pub max_iterations: usize,
    /// If set, stop as soon as the primal/dual bound ratio
    /// `max(dual/primal, primal/dual)` drops below this value (the paper's
    /// early-stopping baseline). Must be `>= 1`.
    pub stop_at_relative_error: Option<f64>,
    /// Step-length damping factor (fraction of the way to the boundary).
    pub step_fraction: f64,
    /// Diagonal regularization added to the normal equations.
    pub regularization: f64,
}

impl Default for InteriorPointConfig {
    fn default() -> Self {
        InteriorPointConfig {
            tolerance: 1e-8,
            max_iterations: 200,
            stop_at_relative_error: None,
            step_fraction: 0.99,
            regularization: 1e-10,
        }
    }
}

/// Progress record of one interior-point iteration (used by the
/// early-stopping experiments to measure time-to-tolerance).
#[derive(Clone, Debug)]
pub struct IpmTrace {
    /// Iteration number.
    pub iteration: usize,
    /// Primal objective `cᵀx` of the current (interior) iterate.
    pub primal_objective: f64,
    /// Dual objective bound.
    pub dual_objective: f64,
    /// Relative duality gap.
    pub relative_gap: f64,
}

/// Solve with the default configuration.
pub fn solve(problem: &LpProblem) -> LpSolution {
    solve_with(problem, &InteriorPointConfig::default()).0
}

/// Solve with an explicit configuration, returning the per-iteration trace.
pub fn solve_with(
    problem: &LpProblem,
    config: &InteriorPointConfig,
) -> (LpSolution, Vec<IpmTrace>) {
    let m = problem.num_rows();
    let n = problem.num_cols();
    let total = n + m; // x variables + slacks

    // Standard min-form data: min f z, Abar z = b, z >= 0.
    let f: Vec<f64> = problem
        .c
        .iter()
        .map(|&cj| -cj)
        .chain(std::iter::repeat_n(0.0, m))
        .collect();
    let b = problem.b.clone();
    let abar = AbarOps {
        a: &problem.a,
        m,
        n,
    };

    // Starting point (Mehrotra-style): least-squares estimates shifted into
    // the positive orthant.
    let (mut z, mut lambda, mut s) = starting_point(&abar, &b, &f, config.regularization);

    let mut trace = Vec::new();
    let mut status = LpStatus::IterationLimit;
    let mut iterations = 0usize;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Residuals.
        let az = abar.matvec(&z);
        let r_b = vec_ops::sub(&az, &b); // A z - b
        let at_lambda = abar.matvec_transpose(&lambda);
        let r_c: Vec<f64> = (0..total).map(|i| at_lambda[i] + s[i] - f[i]).collect();
        let mu = vec_ops::dot(&z, &s) / total as f64;

        // Objective bookkeeping (original maximization problem).
        let primal_obj = problem.objective_value(&z[..n]);
        // Dual of max{cᵀx : Ax ≤ b, x ≥ 0} is min{bᵀy : Aᵀy ≥ c, y ≥ 0} with
        // y = -λ in the min-form KKT system.
        let y: Vec<f64> = lambda.iter().map(|&l| -l).collect();
        let dual_obj = vec_ops::dot(&b, &y);
        let rel_gap = (primal_obj - dual_obj).abs() / (1.0 + primal_obj.abs());
        trace.push(IpmTrace {
            iteration: iter,
            primal_objective: primal_obj,
            dual_objective: dual_obj,
            relative_gap: rel_gap,
        });

        let primal_res = vec_ops::norm_inf(&r_b) / (1.0 + vec_ops::norm_inf(&b));
        let dual_res = vec_ops::norm_inf(&r_c) / (1.0 + vec_ops::norm_inf(&f));

        if primal_res < config.tolerance
            && dual_res < config.tolerance
            && rel_gap < config.tolerance
        {
            status = LpStatus::Optimal;
            break;
        }
        if let Some(target) = config.stop_at_relative_error {
            // Certify the relative error via the primal/dual bounds once the
            // iterate is reasonably feasible.
            if primal_res < 1e-4 && dual_res < 1e-2 && primal_obj > 0.0 && dual_obj > 0.0 {
                let ratio = (dual_obj / primal_obj).max(primal_obj / dual_obj);
                if ratio <= target {
                    status = LpStatus::EarlyStopped;
                    break;
                }
            }
        }

        // Newton systems share the normal-equation matrix Abar D Abarᵀ with
        // D = diag(z ./ s).
        let d: Vec<f64> = (0..total).map(|i| z[i] / s[i]).collect();
        let normal = abar.normal_matrix(&d);
        let chol = match Cholesky::factor_regularized(&normal, config.regularization.max(1e-12)) {
            Ok(c) => c,
            Err(_) => {
                // Numerical breakdown: report the current iterate.
                status = LpStatus::IterationLimit;
                break;
            }
        };

        // Affine (predictor) step: r_xs = -z.*s.
        let r_xs_aff: Vec<f64> = (0..total).map(|i| -z[i] * s[i]).collect();
        let (dz_aff, dlam_aff, ds_aff) =
            newton_step(&abar, &chol, &d, &z, &s, &r_b, &r_c, &r_xs_aff);
        let alpha_p_aff = max_step(&z, &dz_aff);
        let alpha_d_aff = max_step(&s, &ds_aff);
        let mu_aff = {
            let mut acc = 0.0;
            for i in 0..total {
                acc += (z[i] + alpha_p_aff * dz_aff[i]) * (s[i] + alpha_d_aff * ds_aff[i]);
            }
            acc / total as f64
        };
        let sigma = if mu > 0.0 {
            (mu_aff / mu).powi(3).clamp(0.0, 1.0)
        } else {
            0.0
        };

        // Corrector step: r_xs = σμ e − z.*s − Δz_aff.*Δs_aff.
        let r_xs: Vec<f64> = (0..total)
            .map(|i| sigma * mu - z[i] * s[i] - dz_aff[i] * ds_aff[i])
            .collect();
        let (dz, dlam, ds) = newton_step(&abar, &chol, &d, &z, &s, &r_b, &r_c, &r_xs);

        let alpha_p = (config.step_fraction * max_step(&z, &dz)).min(1.0);
        let alpha_d = (config.step_fraction * max_step(&s, &ds)).min(1.0);

        for i in 0..total {
            z[i] += alpha_p * dz[i];
            s[i] += alpha_d * ds[i];
        }
        for i in 0..m {
            lambda[i] += alpha_d * dlam[i];
        }
        let _ = dlam_aff;

        // Detect unboundedness / infeasibility heuristically: the objective
        // diverges while the step sizes stay large.
        if !primal_obj.is_finite() || primal_obj.abs() > 1e30 {
            status = LpStatus::Unbounded;
            break;
        }
    }

    let x = z[..n].to_vec();
    let objective = problem.objective_value(&x);
    (
        LpSolution {
            status,
            objective,
            x,
            iterations,
        },
        trace,
    )
}

/// Sparse `[A I]` operator helpers.
struct AbarOps<'a> {
    a: &'a SparseMatrix,
    m: usize,
    n: usize,
}

impl AbarOps<'_> {
    /// `[A I] z`.
    fn matvec(&self, z: &[f64]) -> Vec<f64> {
        let mut out = self.a.matvec(&z[..self.n]);
        for i in 0..self.m {
            out[i] += z[self.n + i];
        }
        out
    }

    /// `[A I]ᵀ y = [Aᵀ y; y]`.
    fn matvec_transpose(&self, y: &[f64]) -> Vec<f64> {
        let mut out = self.a.matvec_transpose(y);
        out.extend_from_slice(y);
        out
    }

    /// Dense `Ā D Āᵀ = A D_x Aᵀ + D_w` where `D = diag(d)`.
    fn normal_matrix(&self, d: &[f64]) -> DenseMatrix {
        let m = self.m;
        let n = self.n;
        let mut out = DenseMatrix::zeros(m, m);
        // A D_x Aᵀ: accumulate column-by-column of A (i.e. over variables).
        // For each variable j, the column a_j contributes d_j * a_j a_jᵀ.
        // Iterate rows of A and accumulate outer products via row pairs:
        // cheaper formulation: out[r1][r2] += sum_j d_j A[r1][j] A[r2][j].
        // We implement it by iterating each row r1, scaling by d, and dotting
        // with each row r2 via a scatter into a dense work vector.
        let mut work = vec![0.0f64; n];
        for r1 in 0..m {
            for x in work.iter_mut() {
                *x = 0.0;
            }
            for (j, v) in self.a.row(r1) {
                work[j as usize] = v * d[j as usize];
            }
            for r2 in r1..m {
                let mut acc = 0.0;
                for (j, v) in self.a.row(r2) {
                    acc += work[j as usize] * v;
                }
                if r1 == r2 {
                    acc += d[n + r1]; // slack contribution
                }
                out.set(r1, r2, acc);
                out.set(r2, r1, acc);
            }
        }
        out
    }
}

/// Newton step from the normal equations with complementarity rhs `r_xs`.
#[allow(clippy::too_many_arguments)]
fn newton_step(
    abar: &AbarOps<'_>,
    chol: &Cholesky,
    d: &[f64],
    z: &[f64],
    s: &[f64],
    r_b: &[f64],
    r_c: &[f64],
    r_xs: &[f64],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let total = z.len();
    // rhs = -r_b - Ā S^{-1} r_xs - Ā D r_c
    let tmp: Vec<f64> = (0..total).map(|i| r_xs[i] / s[i] + d[i] * r_c[i]).collect();
    let a_tmp = abar.matvec(&tmp);
    let rhs: Vec<f64> = (0..r_b.len()).map(|i| -r_b[i] - a_tmp[i]).collect();
    let dlam = chol.solve(&rhs);
    // Δs = -r_c - Āᵀ Δλ
    let at_dlam = abar.matvec_transpose(&dlam);
    let ds: Vec<f64> = (0..total).map(|i| -r_c[i] - at_dlam[i]).collect();
    // Δz = S^{-1}(r_xs - Z Δs)
    let dz: Vec<f64> = (0..total)
        .map(|i| (r_xs[i] - z[i] * ds[i]) / s[i])
        .collect();
    (dz, dlam, ds)
}

/// Largest `alpha` in `[0, 1]` such that `v + alpha * dv >= 0`.
fn max_step(v: &[f64], dv: &[f64]) -> f64 {
    let mut alpha = 1.0f64;
    for i in 0..v.len() {
        if dv[i] < 0.0 {
            alpha = alpha.min(-v[i] / dv[i]);
        }
    }
    alpha.max(0.0)
}

/// Mehrotra's heuristic starting point.
fn starting_point(
    abar: &AbarOps<'_>,
    b: &[f64],
    f: &[f64],
    regularization: f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let total = abar.n + abar.m;
    let d = vec![1.0; total];
    let normal = abar.normal_matrix(&d);
    let chol = Cholesky::factor_regularized(&normal, regularization.max(1e-10))
        .expect("Ā Āᵀ + reg I must be positive definite");
    // z0 = Āᵀ (Ā Āᵀ)^{-1} b   (least-norm solution of Āz = b)
    let y = chol.solve(b);
    let mut z: Vec<f64> = abar.matvec_transpose(&y);
    // λ0 = (Ā Āᵀ)^{-1} Ā f,  s0 = f − Āᵀ λ0
    let af = abar.matvec(f);
    let lambda = chol.solve(&af);
    let at_lambda = abar.matvec_transpose(&lambda);
    let mut s: Vec<f64> = (0..total).map(|i| f[i] - at_lambda[i]).collect();

    // Shift into the strictly positive orthant.
    let dz = (-z.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0) + 1.0;
    let ds = (-s.iter().cloned().fold(f64::INFINITY, f64::min)).max(0.0) + 1.0;
    for zi in z.iter_mut() {
        *zi += dz;
    }
    for si in s.iter_mut() {
        *si += ds;
    }
    (z, lambda, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LpProblem;
    use crate::simplex;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn matches_simplex_on_textbook_lp() {
        let lp = LpProblem::from_dense(
            "textbook",
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            vec![4.0, 12.0, 18.0],
            vec![3.0, 5.0],
        );
        let exact = simplex::solve(&lp);
        let (ipm, trace) = solve_with(&lp, &InteriorPointConfig::default());
        assert_eq!(ipm.status, LpStatus::Optimal);
        assert_close(ipm.objective, exact.objective, 1e-4);
        assert!(!trace.is_empty());
        // The relative gap is (weakly) driven towards zero.
        assert!(trace.last().unwrap().relative_gap < 1e-4);
    }

    #[test]
    fn matches_simplex_on_fig3_lp() {
        let lp = LpProblem::from_dense(
            "fig3",
            &[
                vec![4.0, 8.0, 2.0],
                vec![6.0, 5.0, 1.0],
                vec![7.0, 4.0, 2.0],
                vec![3.0, 1.0, 22.0],
                vec![2.0, 3.0, 21.0],
            ],
            vec![20.0, 20.0, 21.0, 50.0, 51.0],
            vec![9.0, 10.0, 50.0],
        );
        let (ipm, _) = solve_with(&lp, &InteriorPointConfig::default());
        assert_eq!(ipm.status, LpStatus::Optimal);
        assert_close(ipm.objective, 128.157, 0.01);
        assert!(lp.max_violation(&ipm.x) < 1e-4);
    }

    #[test]
    fn early_stopping_stops_sooner_with_looser_target() {
        let lp = crate::generators::block_lp(&crate::generators::BlockLpSpec {
            name: "early-stop".into(),
            block_rows: 6,
            block_cols: 4,
            rows_per_block: 5,
            cols_per_block: 5,
            density: 0.6,
            noise: 0.05,
            seed: 7,
        });
        let tight = InteriorPointConfig {
            stop_at_relative_error: Some(1.001),
            ..Default::default()
        };
        let loose = InteriorPointConfig {
            stop_at_relative_error: Some(2.0),
            ..Default::default()
        };
        let (sol_tight, _) = solve_with(&lp, &tight);
        let (sol_loose, _) = solve_with(&lp, &loose);
        assert!(sol_loose.iterations <= sol_tight.iterations);
        assert!(matches!(
            sol_loose.status,
            LpStatus::EarlyStopped | LpStatus::Optimal
        ));
    }

    #[test]
    fn solution_is_near_feasible() {
        let lp = LpProblem::from_dense(
            "feas",
            &[
                vec![2.0, 1.0, 0.5],
                vec![1.0, 3.0, 1.0],
                vec![0.5, 0.5, 2.0],
            ],
            vec![10.0, 15.0, 8.0],
            vec![1.0, 2.0, 1.5],
        );
        let (sol, _) = solve_with(&lp, &InteriorPointConfig::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.max_violation(&sol.x) < 1e-5);
        let exact = simplex::solve(&lp);
        assert_close(
            sol.objective,
            exact.objective,
            1e-3 * (1.0 + exact.objective.abs()),
        );
    }
}
