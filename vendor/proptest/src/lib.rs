//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small, dependency-free property-testing harness with the subset of the
//! proptest API the integration tests use: the [`proptest!`] macro,
//! [`ProptestConfig::with_cases`], range/tuple/`any`/[`collection::vec`]
//! strategies, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs `cases`
//! deterministic seeded inputs (seeded from the test's module path and name,
//! so failures reproduce across runs) and assertion failures panic directly
//! with the standard assert message.

use std::ops::Range;

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator for one test case. The seed mixes a hash of the test
    /// name with the case index so every property gets an independent,
    /// reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of a fixed type.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategy for "any value of `T`" (proptest's `any::<T>()`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Build an [`Any`] strategy.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: either exact or a range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly between `start` (inclusive) and `end` (exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    lo + rng.below((hi - lo) as u64) as usize
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Property assertion; panics with the assert message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics with the assert message on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics with the assert message on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
///
/// Note: argument lists must end with a trailing comma (macro-parsing
/// limitation of this offline stand-in).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr,)+) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr,)+) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat,)+) $body)+
        }
    };
}

/// The commonly imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_inside(
            x in 3usize..10,
            y in 0.0f64..2.5,
            pair in (0u8..4, 0u8..4),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..2.5).contains(&y));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn vec_lengths_respected(
            exact in crate::collection::vec(0u32..5, 7),
            ranged in crate::collection::vec(0u32..5, 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
            prop_assert!((flag as u32) <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
