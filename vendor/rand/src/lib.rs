//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, dependency-free implementation of the slice of the rand 0.9 API
//! that the generators and tests use: [`rngs::StdRng`] (a xoshiro256++
//! generator seeded via SplitMix64), [`Rng::random`], [`Rng::random_range`],
//! [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! Streams are fully deterministic for a given seed, which is all the
//! reproduction needs; no claim of cryptographic quality is made.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore` (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift uniform mapping; bias is negligible for the
                // span sizes used here (all far below 2^32).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// The commonly imported prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(5u32..7);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
