//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small wall-clock benchmarking harness exposing the subset of the criterion
//! API the benches use: [`Criterion::benchmark_group`], group
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId::new`], `Bencher::iter`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Each benchmark warms up once, then runs `sample_size` timed samples and
//! prints min/mean/max per iteration. No statistics beyond that — the point
//! is relative comparison on one machine, which is what the repo's recorded
//! benchmark JSON files capture.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {} ==", name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// Identifier `function/parameter` for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(&format!("{id}"), self.sample_size, &mut f);
        self
    }

    /// Run a benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_samples(&id.label, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(self) {}
}

fn run_samples(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up run (not timed).
    let mut bencher = Bencher {
        seconds: 0.0,
        iterations: 0,
    };
    f(&mut bencher);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            seconds: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            times.push(bencher.seconds / bencher.iterations as f64);
        }
    }
    if times.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{label}: mean {} (min {}, max {}, {} samples)",
        format_seconds(mean),
        format_seconds(min),
        format_seconds(max),
        times.len()
    );
}

/// Human-readable seconds.
pub fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to benchmark closures; times the inner loop.
pub struct Bencher {
    seconds: f64,
    iterations: u64,
}

impl Bencher {
    /// Time repeated executions of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().as_secs_f64();
        // Aim for ~20ms of work per sample, capped to keep suites fast.
        let reps = if one > 0.02 {
            1
        } else {
            ((0.02 / one.max(1e-9)) as u64).clamp(1, 10_000)
        };
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.seconds += start.elapsed().as_secs_f64() + one;
        self.iterations += reps + 1;
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn seconds_formatting() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
